//! Training-set harvesting: turns Monte Carlo demand trials into
//! surrogate training rows.
//!
//! Each demand-study trial is a pure function of `(study, trial index)`,
//! so the harvest re-derives the trial's schedule, builds the
//! ground-truth [`PeakDemandGame`], featurizes every workload with
//! [`player_features_into`], and pairs the feature rows with the exact
//! solver's normalized Shapley shares. The result is one
//! [`HarvestRecord`] per trial — the `(workload features, schedule
//! features) → Shapley share` rows the surrogate ridge model trains on.
//!
//! Harvests stream through the same batched engine as the studies
//! ([`crate::engine::stream_batches`]): workers fan out over batches with
//! per-worker scratch arenas, and records are observed strictly in trial
//! order on the merge thread. The emitted JSONL is therefore
//! **byte-identical at any thread count** — the property the
//! `--dump-trials` harness and its 1/2/8-thread invariance test pin.

use std::io::{self, BufRead, Write};

use serde::{Deserialize, Serialize};

use fairco2_forecast::linalg::LinalgError;
use fairco2_shapley::exact::exact_shapley_fast_with_scratch;
use fairco2_shapley::game::{Game, PeakDemandGame};
use fairco2_shapley::surrogate::{
    player_features_into, SurrogateModel, SurrogateScratch, SurrogateTrainer, SURROGATE_FEATURES,
};

use crate::engine::{stream_batches, EngineStats};
use crate::schedules::DemandStudy;
use crate::scratch::{EngineScratch, ScratchStats, TrialScratch};

/// One trial's surrogate training rows: the schedule shape, the
/// grand-coalition value, and per-workload feature rows paired with the
/// exact solver's normalized shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarvestRecord {
    /// Trial index (== seed offset into the study).
    pub trial: usize,
    /// Time slices in the generated schedule.
    pub time_slices: usize,
    /// Workloads (players) in the generated schedule.
    pub workloads: usize,
    /// Grand-coalition value `v(N)` (the schedule's peak demand),
    /// bit-identical to evaluating the game on the grand coalition.
    pub grand_value: f64,
    /// `workloads × SURROGATE_FEATURES` row-major feature matrix from
    /// [`player_features_into`].
    pub features: Vec<f64>,
    /// Normalized ground-truth shares `φ_p / v(N)` from the exact
    /// solver, one per workload.
    pub shares: Vec<f64>,
}

impl HarvestRecord {
    /// The feature row of workload `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn feature_row(&self, p: usize) -> &[f64] {
        &self.features[p * SURROGATE_FEATURES..(p + 1) * SURROGATE_FEATURES]
    }

    /// Feeds this record's rows into a [`SurrogateTrainer`] (the replay
    /// path: harvest once, fit many models).
    pub fn record_into(&self, trainer: &mut SurrogateTrainer) {
        for p in 0..self.workloads {
            trainer.record_row(self.feature_row(p), self.shares[p]);
        }
    }
}

/// Per-worker arena for harvesting: the trial scratch (schedule
/// generation buffers + exact-solver table) plus the surrogate
/// featurization scratch.
#[derive(Debug, Default)]
pub struct HarvestScratch {
    trial: TrialScratch,
    surrogate: SurrogateScratch,
}

impl HarvestScratch {
    /// Scratch pre-grown for `study` (the exact table is sized for the
    /// study's maximum workload count up front).
    pub fn for_study(study: &DemandStudy) -> Self {
        Self {
            trial: TrialScratch::for_demand(study),
            surrogate: SurrogateScratch::new(),
        }
    }
}

impl EngineScratch for HarvestScratch {
    fn stats(&self) -> ScratchStats {
        self.trial.stats()
    }
}

/// Harvests a single trial: regenerates its schedule, featurizes every
/// workload, and solves the exact ground truth.
///
/// # Panics
///
/// Panics if the exact solver fails on a generated schedule — the
/// generator guarantees non-zero demand within the solver's player cap,
/// so a failure indicates a bug.
pub fn harvest_demand_trial(
    study: &DemandStudy,
    trial: usize,
    scratch: &mut HarvestScratch,
) -> HarvestRecord {
    let schedule = study.generate_schedule_with(trial, &mut scratch.trial);
    let game = PeakDemandGame::new(schedule.demand_matrix());
    let n = game.player_count();
    let v_n = player_features_into(&game, &mut scratch.surrogate);
    let phi = exact_shapley_fast_with_scratch(&game, &mut scratch.trial.exact)
        .expect("generated schedules are solvable");
    debug_assert!(v_n > 0.0, "generator guarantees non-zero demand");
    let shares = phi.iter().map(|&p| p / v_n).collect();
    scratch.trial.trials += 1;
    HarvestRecord {
        trial,
        time_slices: schedule.steps(),
        workloads: n,
        grand_value: v_n,
        features: scratch.surrogate.features().to_vec(),
        shares,
    }
}

/// Streams every trial of `study` through [`harvest_demand_trial`] across
/// `threads` workers and hands each record to `on_record` **in ascending
/// trial order** (the engine's in-order merge makes the observed stream
/// thread-count invariant). Returns the engine stats.
pub fn harvest_demand_study_with(
    study: &DemandStudy,
    threads: usize,
    batch_trials: usize,
    mut on_record: impl FnMut(&HarvestRecord),
) -> EngineStats {
    stream_batches(
        study.trials,
        threads,
        batch_trials,
        || HarvestScratch::for_study(study),
        |range, scratch: &mut HarvestScratch| {
            range
                .map(|t| harvest_demand_trial(study, t, scratch))
                .collect::<Vec<_>>()
        },
        |_batch, records: Vec<HarvestRecord>| {
            for r in &records {
                on_record(r);
            }
        },
    )
}

/// What a JSONL harvest did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HarvestStats {
    /// Records (trials) written.
    pub records: u64,
    /// Training rows (Σ workloads over all records) written.
    pub rows: u64,
    /// Engine stats of the underlying batched run.
    pub engine: EngineStats,
}

/// Harvests `study` to JSONL — one [`HarvestRecord`] per line, in trial
/// order. Because records are serialized and written on the merge thread
/// in merge order, the output bytes are identical at any thread count.
///
/// # Errors
///
/// Propagates the first write error; the harvest stops at that point.
pub fn harvest_demand_study_jsonl(
    study: &DemandStudy,
    threads: usize,
    batch_trials: usize,
    out: &mut dyn Write,
) -> io::Result<HarvestStats> {
    let mut records = 0u64;
    let mut rows = 0u64;
    let mut write_error: Option<io::Error> = None;
    let engine = harvest_demand_study_with(study, threads, batch_trials, |record| {
        if write_error.is_some() {
            return;
        }
        let line = serde_json::to_string(record).expect("harvest records serialize");
        if let Err(e) = out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
        {
            write_error = Some(e);
            return;
        }
        records += 1;
        rows += record.workloads as u64;
    });
    match write_error {
        Some(e) => Err(e),
        None => Ok(HarvestStats {
            records,
            rows,
            engine,
        }),
    }
}

/// Reads a JSONL harvest back (the replay path: harvest once on many
/// cores, fit models offline).
///
/// # Errors
///
/// Propagates read errors; malformed lines surface as
/// [`io::ErrorKind::InvalidData`].
pub fn read_harvest_jsonl(input: &mut dyn BufRead) -> io::Result<Vec<HarvestRecord>> {
    let mut records = Vec::new();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record: HarvestRecord = serde_json::from_str(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        records.push(record);
    }
    Ok(records)
}

/// Fits a surrogate model from harvested records (feeds every record's
/// rows into one shared-Gram trainer, then solves).
///
/// # Errors
///
/// Returns the underlying [`LinalgError`] when the Gram matrix stays
/// singular through jitter escalation (e.g. too few records).
pub fn fit_surrogate<'a>(
    records: impl IntoIterator<Item = &'a HarvestRecord>,
    lambda: f64,
) -> Result<SurrogateModel, LinalgError> {
    let mut trainer = SurrogateTrainer::new();
    for r in records {
        r.record_into(&mut trainer);
    }
    trainer.fit(lambda)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_study() -> DemandStudy {
        DemandStudy {
            trials: 23,
            max_workloads: 8,
            ..DemandStudy::default()
        }
    }

    #[test]
    fn records_arrive_in_trial_order_with_consistent_shapes() {
        let study = small_study();
        let mut seen = Vec::new();
        let stats = harvest_demand_study_with(&study, 3, 4, |r| seen.push(r.clone()));
        assert_eq!(stats.trials, study.trials as u64);
        assert_eq!(seen.len(), study.trials);
        for (k, r) in seen.iter().enumerate() {
            assert_eq!(r.trial, k);
            assert_eq!(r.features.len(), r.workloads * SURROGATE_FEATURES);
            assert_eq!(r.shares.len(), r.workloads);
            assert!(r.grand_value > 0.0);
            // Normalized shares satisfy efficiency: Σ φ_p/v(N) ≈ 1.
            let total: f64 = r.shares.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "share sum {total}");
        }
    }

    #[test]
    fn harvest_matches_ground_truth_attribution() {
        use fairco2::demand::{DemandAttributor, GroundTruthShapley};
        let study = small_study();
        let mut scratch = HarvestScratch::for_study(&study);
        let record = harvest_demand_trial(&study, 5, &mut scratch);
        // The study's own ground-truth path normalizes φ by Σφ instead of
        // v(N); the two agree to solver precision.
        let schedule = study.generate_schedule(5);
        let truth = GroundTruthShapley
            .attribute(&schedule, 1.0)
            .expect("solvable");
        for (a, b) in record.shares.iter().zip(&truth) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let study = small_study();
        let mut buf = Vec::new();
        let stats = harvest_demand_study_jsonl(&study, 2, 8, &mut buf).expect("in-memory write");
        assert_eq!(stats.records, study.trials as u64);
        assert!(stats.rows >= stats.records);
        let records = read_harvest_jsonl(&mut buf.as_slice()).expect("parse back");
        assert_eq!(records.len(), study.trials);
        let mut direct = Vec::new();
        harvest_demand_study_with(&study, 1, 8, |r| direct.push(r.clone()));
        assert_eq!(records, direct);
    }

    #[test]
    fn harvested_model_fits_and_predicts_finite_shares() {
        let study = DemandStudy {
            trials: 60,
            max_workloads: 6,
            ..DemandStudy::default()
        };
        let mut records = Vec::new();
        harvest_demand_study_with(&study, 2, 16, |r| records.push(r.clone()));
        let model = fit_surrogate(&records, 1e-6).expect("enough rows to fit");
        let mut pred = vec![0.0; 2];
        for r in &records {
            for p in 0..r.workloads {
                model.ridge().predict_into(r.feature_row(p), &mut pred);
                assert!(pred.iter().all(|v| v.is_finite()));
            }
        }
    }
}
