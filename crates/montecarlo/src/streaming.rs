//! Streaming study summaries.
//!
//! The figure bins used to materialize every `DemandTrial` /
//! `ColocationTrial` (10,000 structs with per-workload payloads) and then
//! summarize. The types here replace that with constant-memory streaming
//! accumulators: Welford moments for means/variances, a running max for
//! worst cases, and fixed-range histograms for the medians, percentile
//! bands, and CDF curves the figures plot.
//!
//! # Determinism contract
//!
//! Welford *merges* are not floating-point associative, so a summary's
//! bits depend on how trials are grouped. Every producer in this crate
//! therefore uses the same canonical grouping: trials are folded
//! sequentially into fixed-size batch accumulators (batch boundaries
//! depend only on the batch size, never on the thread count), and batch
//! accumulators are merged in batch-index order.
//! [`DemandStudySummary::from_trials`] /
//! [`ColocationStudySummary::from_trials`] implement that fold serially;
//! the parallel engine ([`crate::engine`]) reproduces it bit-for-bit at
//! any thread count by reordering batch results before merging.

use serde::{Deserialize, Serialize};

use fairco2::metrics::DeviationSummary;
use fairco2_workloads::ALL_WORKLOADS;

use crate::colocations::{ColocationStudy, ColocationTrial};
use crate::schedules::{DemandStudy, DemandTrial};

/// Canonical trials-per-batch of the streaming fold. Small enough that a
/// reduced 50-trial CI run still exercises multiple merges, large enough
/// that accumulator merging is negligible against the exact solves.
pub const DEFAULT_BATCH_TRIALS: usize = 64;

/// Histogram range for absolute percentage deviations, `[0, 1000)` at
/// 0.5 % resolution. Larger deviations land in the overflow bucket and
/// pin quantiles at the range edge; means are exact regardless (Welford).
const DEV_HIST_LO: f64 = 0.0;
const DEV_HIST_HI: f64 = 1000.0;
const DEV_HIST_BINS: usize = 2000;

/// Histogram range for *signed* percentage deviations (the per-workload
/// equity analysis), `[-500, 500)` at 0.5 % resolution.
const SIGNED_HIST_LO: f64 = -500.0;
const SIGNED_HIST_HI: f64 = 500.0;
const SIGNED_HIST_BINS: usize = 2000;

/// Welford running moments (count, mean, M2), mergeable via the Chan
/// et al. parallel update.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    /// Observations recorded.
    pub count: u64,
    /// Running mean.
    pub mean: f64,
    /// Sum of squared deviations from the mean.
    pub m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges another accumulator into this one (order-sensitive in the
    /// last bits — callers must merge in a fixed order).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let na = self.count as f64;
        let nb = other.count as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        self.mean += delta * nb / n;
        self.m2 += other.m2 + delta * delta * na * nb / n;
        self.count += other.count;
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// A fixed-range histogram with underflow/overflow buckets. Counts are
/// integers, so merges are order-independent; quantiles are linearly
/// interpolated within bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// A zeroed histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics on an empty range or zero bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins >= 1, "degenerate histogram range");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let i = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[i] += 1;
        }
    }

    /// Merges another histogram with the same configuration.
    ///
    /// # Panics
    ///
    /// Panics on mismatched range or bin count.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "histogram configurations differ"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.counts.iter().sum::<u64>()
    }

    /// The interpolated `q`-quantile (`q` in `[0, 1]`). Underflowed mass
    /// reports the range floor, overflowed mass the range ceiling; an
    /// empty histogram reports the floor.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return self.lo;
        }
        let target = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = self.underflow as f64;
        if cum >= target && self.underflow > 0 {
            return self.lo;
        }
        let bin_width = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c as f64;
            if next >= target {
                let frac = ((target - cum) / c as f64).clamp(0.0, 1.0);
                return self.lo + bin_width * (i as f64 + frac);
            }
            cum = next;
        }
        self.hi
    }

    /// `(upper_edge, cumulative_fraction)` points over the non-empty bins
    /// — the empirical CDF curve the figures plot. Includes a final point
    /// at the range ceiling when mass overflowed.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let total = self.total();
        if total == 0 {
            return Vec::new();
        }
        let bin_width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut out = Vec::new();
        let mut cum = self.underflow;
        if self.underflow > 0 {
            out.push((self.lo, cum as f64 / total as f64));
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            out.push((
                self.lo + bin_width * (i + 1) as f64,
                cum as f64 / total as f64,
            ));
        }
        if self.overflow > 0 {
            out.push((self.hi, 1.0));
        }
        out
    }
}

/// Streaming statistics of one scalar per trial: exact moments, exact
/// running max, and a histogram for quantiles/CDFs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatStream {
    /// Exact running moments.
    pub moments: Welford,
    /// Largest observation (0 when empty; deviations are non-negative,
    /// and for signed streams the histogram carries the distribution).
    pub max: f64,
    /// Distribution for medians, percentile bands, and CDF curves.
    pub hist: Histogram,
}

impl StatStream {
    /// A stream for absolute percentage deviations.
    pub fn deviations() -> Self {
        Self {
            moments: Welford::new(),
            max: 0.0,
            hist: Histogram::new(DEV_HIST_LO, DEV_HIST_HI, DEV_HIST_BINS),
        }
    }

    /// A stream for signed percentage deviations.
    pub fn signed_deviations() -> Self {
        Self {
            moments: Welford::new(),
            max: 0.0,
            hist: Histogram::new(SIGNED_HIST_LO, SIGNED_HIST_HI, SIGNED_HIST_BINS),
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        self.moments.push(x);
        self.max = self.max.max(x);
        self.hist.push(x);
    }

    /// Merges another stream (same histogram configuration; merge in a
    /// fixed order for bit-stable moments).
    pub fn merge(&mut self, other: &StatStream) {
        self.moments.merge(&other.moments);
        self.max = self.max.max(other.max);
        self.hist.merge(&other.hist);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.moments.count
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.moments.mean
    }

    /// Interpolated quantile from the histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        self.hist.quantile(q)
    }
}

/// One attribution method's average and worst-case deviation streams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodStream {
    /// Per-trial mean absolute deviation.
    pub average: StatStream,
    /// Per-trial worst single-workload deviation.
    pub worst_case: StatStream,
}

impl MethodStream {
    fn new() -> Self {
        Self {
            average: StatStream::deviations(),
            worst_case: StatStream::deviations(),
        }
    }

    /// Records one trial's deviation summary.
    pub fn push(&mut self, d: &DeviationSummary) {
        self.average.push(d.average_pct);
        self.worst_case.push(d.worst_case_pct);
    }

    /// Merges another stream pair.
    pub fn merge(&mut self, other: &MethodStream) {
        self.average.merge(&other.average);
        self.worst_case.merge(&other.worst_case);
    }
}

/// The three demand methods' streams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandMethodSet {
    /// RUP-Baseline deviations.
    pub rup: MethodStream,
    /// Demand-proportional deviations.
    pub demand_proportional: MethodStream,
    /// Fair-CO₂ (Temporal Shapley) deviations.
    pub fair_co2: MethodStream,
}

impl DemandMethodSet {
    fn new() -> Self {
        Self {
            rup: MethodStream::new(),
            demand_proportional: MethodStream::new(),
            fair_co2: MethodStream::new(),
        }
    }

    fn push(&mut self, t: &DemandTrial) {
        self.rup.push(&t.rup);
        self.demand_proportional.push(&t.demand_proportional);
        self.fair_co2.push(&t.fair_co2);
    }

    fn merge(&mut self, other: &DemandMethodSet) {
        self.rup.merge(&other.rup);
        self.demand_proportional.merge(&other.demand_proportional);
        self.fair_co2.merge(&other.fair_co2);
    }
}

/// A breakdown bucket over an integer trial property (time slices or
/// workload count), inclusive on both ends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandBucket {
    /// Human-readable bucket label.
    pub label: String,
    /// Inclusive lower bound.
    pub lo: usize,
    /// Inclusive upper bound.
    pub hi: usize,
    /// The bucket's method streams.
    pub methods: DemandMethodSet,
}

/// Streaming summary of the dynamic-demand study (Figure 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandStudySummary {
    /// Trials recorded.
    pub trials: u64,
    /// All scenarios pooled.
    pub all: DemandMethodSet,
    /// Per-schedule-length panels (one bucket per slice count).
    pub by_time_slices: Vec<DemandBucket>,
    /// Workload-count panels: thirds of `1..=max_workloads` (the paper's
    /// 1–7 / 8–14 / 15–22 split at the default 22).
    pub by_workloads: Vec<DemandBucket>,
}

impl DemandStudySummary {
    /// An empty summary with bucket boundaries derived from the study
    /// parameters.
    pub fn empty(study: &DemandStudy) -> Self {
        let by_time_slices = (study.min_time_slices..=study.max_time_slices)
            .map(|s| DemandBucket {
                label: format!("{s} time slices"),
                lo: s,
                hi: s,
                methods: DemandMethodSet::new(),
            })
            .collect();
        let third = (study.max_workloads / 3).max(1);
        let by_workloads = [
            (1, third),
            (third + 1, 2 * third),
            (2 * third + 1, study.max_workloads),
        ]
        .into_iter()
        .filter(|&(lo, hi)| lo <= hi && lo <= study.max_workloads)
        .map(|(lo, hi)| DemandBucket {
            label: format!("{lo}-{hi} workloads"),
            lo,
            hi,
            methods: DemandMethodSet::new(),
        })
        .collect();
        Self {
            trials: 0,
            all: DemandMethodSet::new(),
            by_time_slices,
            by_workloads,
        }
    }

    /// Records one trial.
    pub fn record(&mut self, t: &DemandTrial) {
        self.trials += 1;
        self.all.push(t);
        for b in &mut self.by_time_slices {
            if (b.lo..=b.hi).contains(&t.time_slices) {
                b.methods.push(t);
            }
        }
        for b in &mut self.by_workloads {
            if (b.lo..=b.hi).contains(&t.workloads) {
                b.methods.push(t);
            }
        }
    }

    /// Merges another summary built from the same study parameters. Call
    /// in batch-index order for bit-stable results.
    ///
    /// # Panics
    ///
    /// Panics when the bucket structures differ.
    pub fn merge(&mut self, other: &DemandStudySummary) {
        assert_eq!(
            self.by_time_slices.len(),
            other.by_time_slices.len(),
            "summaries from different studies"
        );
        assert_eq!(self.by_workloads.len(), other.by_workloads.len());
        self.trials += other.trials;
        self.all.merge(&other.all);
        for (a, b) in self.by_time_slices.iter_mut().zip(&other.by_time_slices) {
            a.methods.merge(&b.methods);
        }
        for (a, b) in self.by_workloads.iter_mut().zip(&other.by_workloads) {
            a.methods.merge(&b.methods);
        }
    }

    /// The canonical serial fold: trials grouped into `batch`-sized
    /// accumulators merged in order. The streaming engine is bit-identical
    /// to this at any thread count.
    pub fn from_trials(study: &DemandStudy, trials: &[DemandTrial], batch: usize) -> Self {
        let mut master = Self::empty(study);
        for chunk in trials.chunks(batch.max(1)) {
            let mut acc = Self::empty(study);
            for t in chunk {
                acc.record(t);
            }
            master.merge(&acc);
        }
        master
    }
}

/// The two colocation methods' streams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColocationMethodSet {
    /// RUP-Baseline deviations.
    pub rup: MethodStream,
    /// Fair-CO₂ deviations.
    pub fair_co2: MethodStream,
}

impl ColocationMethodSet {
    fn new() -> Self {
        Self {
            rup: MethodStream::new(),
            fair_co2: MethodStream::new(),
        }
    }

    fn push(&mut self, t: &ColocationTrial) {
        self.rup.push(&t.rup);
        self.fair_co2.push(&t.fair_co2);
    }

    fn merge(&mut self, other: &ColocationMethodSet) {
        self.rup.merge(&other.rup);
        self.fair_co2.merge(&other.fair_co2);
    }
}

/// An integer-property breakdown bucket (sampling rate or workload
/// count), inclusive on both ends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColocationBucket {
    /// Human-readable bucket label.
    pub label: String,
    /// Inclusive lower bound.
    pub lo: usize,
    /// Inclusive upper bound.
    pub hi: usize,
    /// The bucket's method streams.
    pub methods: ColocationMethodSet,
}

/// A grid-carbon-intensity breakdown bucket: `ci ∈ [lo, hi + ε)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridCiBucket {
    /// Human-readable bucket label.
    pub label: String,
    /// Lower bound (inclusive), gCO₂e/kWh.
    pub lo: f64,
    /// Upper bound (exclusive up to ε), gCO₂e/kWh.
    pub hi: f64,
    /// The bucket's method streams.
    pub methods: ColocationMethodSet,
}

/// Per-workload-kind signed equity streams (Figure 9): the distribution
/// of each workload's own deviation and of its partners' deviations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KindEquity {
    /// Workload name.
    pub workload: String,
    /// Signed deviation of the workload's own attribution, RUP.
    pub own_rup: StatStream,
    /// Signed deviation of the workload's own attribution, Fair-CO₂.
    pub own_fair: StatStream,
    /// Signed deviation of the workload's partners' attributions, RUP.
    pub partner_rup: StatStream,
    /// Signed deviation of the workload's partners' attributions,
    /// Fair-CO₂.
    pub partner_fair: StatStream,
}

/// Streaming summary of the colocation study (Figures 8 and 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColocationStudySummary {
    /// Trials recorded.
    pub trials: u64,
    /// All scenarios pooled.
    pub all: ColocationMethodSet,
    /// Breakdown by historical sampling rate (of the 14 distinct
    /// partners).
    pub by_samples: Vec<ColocationBucket>,
    /// Breakdown by scenario workload count.
    pub by_workloads: Vec<ColocationBucket>,
    /// Breakdown by grid carbon intensity (quarters of the study range).
    pub by_grid_ci: Vec<GridCiBucket>,
    /// Per-workload-kind signed equity streams, indexed by
    /// [`fairco2_workloads::WorkloadKind::index`].
    pub per_kind: Vec<KindEquity>,
}

impl ColocationStudySummary {
    /// An empty summary with the paper's breakdown buckets (sampling-rate
    /// and workload-count splits are Figure 8's; grid-CI buckets are
    /// quarters of the study's range).
    pub fn empty(study: &ColocationStudy) -> Self {
        let bucket = |label: String, lo: usize, hi: usize| ColocationBucket {
            label,
            lo,
            hi,
            methods: ColocationMethodSet::new(),
        };
        let by_samples = [(1usize, 3usize), (4, 7), (8, 11), (12, 14)]
            .into_iter()
            .map(|(lo, hi)| bucket(format!("sampling {lo}-{hi} of 14 partners"), lo, hi))
            .collect();
        let by_workloads = [(4usize, 25usize), (26, 50), (51, 75), (76, 100)]
            .into_iter()
            .map(|(lo, hi)| bucket(format!("{lo}-{hi} workloads"), lo, hi))
            .collect();
        let quarter = (study.max_grid_ci - study.min_grid_ci) / 4.0;
        let by_grid_ci = (0..4)
            .map(|k| {
                let lo = study.min_grid_ci + quarter * k as f64;
                let hi = study.min_grid_ci + quarter * (k + 1) as f64;
                GridCiBucket {
                    label: format!("grid CI {lo:.0}-{hi:.0} gCO2e/kWh"),
                    lo,
                    hi,
                    methods: ColocationMethodSet::new(),
                }
            })
            .collect();
        let per_kind = ALL_WORKLOADS
            .iter()
            .map(|w| KindEquity {
                workload: w.name().to_owned(),
                own_rup: StatStream::signed_deviations(),
                own_fair: StatStream::signed_deviations(),
                partner_rup: StatStream::signed_deviations(),
                partner_fair: StatStream::signed_deviations(),
            })
            .collect();
        Self {
            trials: 0,
            all: ColocationMethodSet::new(),
            by_samples,
            by_workloads,
            by_grid_ci,
            per_kind,
        }
    }

    /// Records one trial, including its per-workload equity records.
    pub fn record(&mut self, t: &ColocationTrial) {
        self.trials += 1;
        self.all.push(t);
        for b in &mut self.by_samples {
            if (b.lo..=b.hi).contains(&t.samples) {
                b.methods.push(t);
            }
        }
        for b in &mut self.by_workloads {
            if (b.lo..=b.hi).contains(&t.workloads) {
                b.methods.push(t);
            }
        }
        for b in &mut self.by_grid_ci {
            if t.grid_ci >= b.lo && t.grid_ci < b.hi + 1e-9 {
                b.methods.push(t);
            }
        }
        for w in &t.per_workload {
            let k = &mut self.per_kind[w.kind.index()];
            k.own_rup.push(w.rup_pct);
            k.own_fair.push(w.fair_pct);
        }
        // Pairs are adjacent in scenario order: `b` is `a`'s partner and
        // vice versa (an isolated straggler has no partner record).
        for pair in t.per_workload.chunks(2) {
            if let [a, b] = pair {
                if a.partner.is_some() {
                    self.per_kind[a.kind.index()].partner_rup.push(b.rup_pct);
                    self.per_kind[a.kind.index()].partner_fair.push(b.fair_pct);
                    self.per_kind[b.kind.index()].partner_rup.push(a.rup_pct);
                    self.per_kind[b.kind.index()].partner_fair.push(a.fair_pct);
                }
            }
        }
    }

    /// Merges another summary built from the same study parameters. Call
    /// in batch-index order for bit-stable results.
    ///
    /// # Panics
    ///
    /// Panics when the bucket structures differ.
    pub fn merge(&mut self, other: &ColocationStudySummary) {
        assert_eq!(
            self.by_samples.len(),
            other.by_samples.len(),
            "summaries from different studies"
        );
        assert_eq!(self.by_workloads.len(), other.by_workloads.len());
        assert_eq!(self.by_grid_ci.len(), other.by_grid_ci.len());
        assert_eq!(self.per_kind.len(), other.per_kind.len());
        self.trials += other.trials;
        self.all.merge(&other.all);
        for (a, b) in self.by_samples.iter_mut().zip(&other.by_samples) {
            a.methods.merge(&b.methods);
        }
        for (a, b) in self.by_workloads.iter_mut().zip(&other.by_workloads) {
            a.methods.merge(&b.methods);
        }
        for (a, b) in self.by_grid_ci.iter_mut().zip(&other.by_grid_ci) {
            a.methods.merge(&b.methods);
        }
        for (a, b) in self.per_kind.iter_mut().zip(&other.per_kind) {
            a.own_rup.merge(&b.own_rup);
            a.own_fair.merge(&b.own_fair);
            a.partner_rup.merge(&b.partner_rup);
            a.partner_fair.merge(&b.partner_fair);
        }
    }

    /// The canonical serial fold: trials grouped into `batch`-sized
    /// accumulators merged in order. The streaming engine is bit-identical
    /// to this at any thread count.
    pub fn from_trials(study: &ColocationStudy, trials: &[ColocationTrial], batch: usize) -> Self {
        let mut master = Self::empty(study);
        for chunk in trials.chunks(batch.max(1)) {
            let mut acc = Self::empty(study);
            for t in chunk {
                acc.record(t);
            }
            master.merge(&acc);
        }
        master
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_moments() {
        let xs = [3.0, 1.0, 4.0, 1.5, 9.2, 2.6];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential_counts_and_close_moments() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let mut seq = Welford::new();
        for &x in &xs {
            seq.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count, seq.count);
        assert!((a.mean - seq.mean).abs() < 1e-10);
        assert!((a.m2 - seq.m2).abs() < 1e-8);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.push(i as f64 + 0.5);
        }
        assert_eq!(h.total(), 100);
        assert!((h.quantile(0.5) - 50.0).abs() < 1.0);
        assert!((h.quantile(0.95) - 95.0).abs() < 1.0);
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn histogram_handles_out_of_range_mass() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(-5.0);
        h.push(15.0);
        h.push(5.0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.quantile(1.0), 10.0); // overflow pins the ceiling
        let cdf = h.cdf_points();
        assert_eq!(cdf.first().unwrap().0, 0.0);
        assert_eq!(cdf.last().unwrap(), &(10.0, 1.0));
    }

    #[test]
    fn histogram_merge_is_exact() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        let mut both = Histogram::new(0.0, 10.0, 10);
        for i in 0..20 {
            let x = i as f64 / 2.0;
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            both.push(x);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn demand_summary_buckets_match_the_paper_split() {
        let s = DemandStudySummary::empty(&DemandStudy::default());
        let bounds: Vec<(usize, usize)> = s.by_workloads.iter().map(|b| (b.lo, b.hi)).collect();
        assert_eq!(bounds, vec![(1, 7), (8, 14), (15, 22)]);
        assert_eq!(s.by_time_slices.len(), 6); // 4..=9
    }

    #[test]
    fn from_trials_batching_is_the_canonical_grouping() {
        let study = DemandStudy {
            trials: 10,
            max_workloads: 8,
            ..DemandStudy::default()
        };
        let trials: Vec<DemandTrial> = (0..study.trials).map(|t| study.run_trial(t)).collect();
        let a = DemandStudySummary::from_trials(&study, &trials, 4);
        let b = DemandStudySummary::from_trials(&study, &trials, 4);
        assert_eq!(a, b);
        assert_eq!(a.trials, 10);
        assert_eq!(a.all.rup.average.count(), 10);
        // A different batch size regroups the Welford merges; the counts
        // and histograms still agree exactly.
        let c = DemandStudySummary::from_trials(&study, &trials, 3);
        assert_eq!(c.all.rup.average.hist, a.all.rup.average.hist);
        assert!((c.all.rup.average.mean() - a.all.rup.average.mean()).abs() < 1e-9);
    }
}
