//! Versioned, digest-guarded study checkpoints.
//!
//! A checkpoint captures everything the streaming engine needs to
//! continue a study from its merged-prefix **frontier**: the study-config
//! fingerprint, the in-order-merged summary, any reorder-buffer batches
//! that finished ahead of the frontier, and the engine stats accumulated
//! so far. Because every trial is a pure function of `(study config,
//! trial index)` and merges happen strictly in batch order, "resume" is
//! literally "keep merging from the frontier" — the resumed summary is
//! bit-identical to an uninterrupted run.
//!
//! # On-disk format
//!
//! A single JSON object:
//!
//! ```json
//! { "version": 1, "digest": "<fnv1a-64 hex of payload text>", "payload": { … } }
//! ```
//!
//! The digest is computed over the compact serialization of `payload`.
//! The vendored serde_json writer is byte-stable under parse → re-emit
//! (floats always carry a float marker and round-trip bit-for-bit), so
//! the digest check re-serializes the parsed payload and compares.
//!
//! Writes are atomic **and durable**: the full envelope is written to a
//! `.tmp` sibling, flushed, renamed over the target, and then the parent
//! directory is fsynced — POSIX only guarantees the renamed entry
//! survives a crash once the directory itself has been synced. A failure
//! mid-write removes the temporary and leaves any previous checkpoint
//! untouched — there is no observable torn state. The same
//! [`write_durable_atomic`] helper backs the attribution service's epoch
//! persistence in `fairco2-serve`.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize, Value};

use crate::colocations::ColocationStudy;
use crate::engine::EngineStats;
use crate::schedules::DemandStudy;
use crate::streaming::{ColocationStudySummary, DemandStudySummary};

/// Current checkpoint format version. Bump on any payload shape change.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Where and how often to checkpoint a streaming study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Checkpoint file path (a `.tmp` sibling is used during writes).
    pub path: PathBuf,
    /// Write a snapshot every this many merged batches (clamped to ≥ 1).
    pub every_batches: usize,
}

impl CheckpointSpec {
    /// A spec writing to `path` every `every_batches` merged batches.
    pub fn new(path: impl Into<PathBuf>, every_batches: usize) -> Self {
        Self {
            path: path.into(),
            every_batches,
        }
    }
}

/// Why a checkpoint could not be written or restored.
///
/// Load failures are all-or-nothing: a rejected checkpoint applies no
/// state whatsoever to the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem error reading or writing the checkpoint.
    Io(String),
    /// The file is not a well-formed checkpoint envelope.
    Malformed(String),
    /// The file was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file.
        found: u64,
        /// Version this build understands.
        expected: u64,
    },
    /// The payload digest does not match — the file is corrupt.
    DigestMismatch {
        /// Digest recorded in the envelope.
        recorded: String,
        /// Digest recomputed from the payload.
        computed: String,
    },
    /// The checkpoint belongs to a different study configuration.
    ConfigMismatch {
        /// Fingerprint of the study being resumed.
        expected: String,
        /// Fingerprint recorded in the checkpoint.
        found: String,
    },
    /// A write attempt failed; the previous checkpoint (if any) is
    /// intact and no temporary file remains.
    WriteFailed(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(m) => write!(f, "checkpoint i/o error: {m}"),
            Self::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            Self::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint version {found} is not the supported version {expected}"
            ),
            Self::DigestMismatch { recorded, computed } => write!(
                f,
                "checkpoint digest mismatch: envelope says {recorded}, payload hashes to {computed}"
            ),
            Self::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint was taken for a different study: fingerprint {found}, expected {expected}"
            ),
            Self::WriteFailed(m) => write!(f, "checkpoint write failed: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Scripted failure points for the durable atomic write path, used by
/// the injected-failure tests to cover every step of the
/// write-tmp → fsync → rename → fsync-directory sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteFault {
    /// No injected failure: the real production path.
    #[default]
    None,
    /// Crash mid-write of the temporary file: only a prefix is flushed,
    /// then the write fails. The target file is never touched and no
    /// temporary is left behind.
    TornTmp,
    /// Fail the parent-directory fsync *after* the rename. The target
    /// file already holds the new contents, but their survival across a
    /// crash is not guaranteed, so the write is reported as failed.
    DirSync,
}

/// FNV-1a 64-bit over `bytes`, as a fixed-width lowercase hex string.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    format!("{h:016x}")
}

/// Fingerprint of a demand study at a given batch size. Any change to
/// the study parameters or batch boundaries produces a different
/// fingerprint, and checkpoints refuse to resume across it.
pub fn demand_fingerprint(study: &DemandStudy, batch_trials: usize) -> String {
    let cfg = serde_json::to_string(study).expect("study configs serialize");
    fnv1a_hex(format!("demand|v{CHECKPOINT_VERSION}|{cfg}|batch={batch_trials}").as_bytes())
}

/// Fingerprint of a colocation study at a given batch size; the
/// colocation counterpart of [`demand_fingerprint`].
pub fn colocation_fingerprint(study: &ColocationStudy, batch_trials: usize) -> String {
    let cfg = serde_json::to_string(study).expect("study configs serialize");
    fnv1a_hex(format!("colocation|v{CHECKPOINT_VERSION}|{cfg}|batch={batch_trials}").as_bytes())
}

/// A batch summary that finished ahead of the merge frontier (reorder
/// buffer contents) for the demand study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingDemandBatch {
    /// Batch index (strictly greater than the frontier).
    pub batch: u64,
    /// The batch's summary accumulator, ready to merge in order.
    pub summary: DemandStudySummary,
}

/// Reorder-buffer entry for the colocation study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingColocationBatch {
    /// Batch index (strictly greater than the frontier).
    pub batch: u64,
    /// The batch's summary accumulator, ready to merge in order.
    pub summary: ColocationStudySummary,
}

/// Resumable state of a demand study run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandSnapshot {
    /// [`demand_fingerprint`] of the study this snapshot belongs to.
    pub fingerprint: String,
    /// Batches merged so far; resume continues from this batch index.
    pub frontier: u64,
    /// The in-order-merged summary over batches `0..frontier`.
    pub summary: DemandStudySummary,
    /// Completed batches still waiting in the reorder buffer.
    pub pending: Vec<PendingDemandBatch>,
    /// Engine stats accumulated through the frontier. Scratch counters
    /// cover fully completed runs only (worker-local counters are not
    /// observable mid-run).
    pub stats: EngineStats,
}

/// Resumable state of a colocation study run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColocationSnapshot {
    /// [`colocation_fingerprint`] of the study this snapshot belongs to.
    pub fingerprint: String,
    /// Batches merged so far; resume continues from this batch index.
    pub frontier: u64,
    /// The in-order-merged summary over batches `0..frontier`.
    pub summary: ColocationStudySummary,
    /// Completed batches still waiting in the reorder buffer.
    pub pending: Vec<PendingColocationBatch>,
    /// Engine stats accumulated through the frontier.
    pub stats: EngineStats,
}

impl DemandSnapshot {
    /// Atomically and durably writes the snapshot to `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failures;
    /// [`CheckpointError::WriteFailed`] when `fault` injects a failure
    /// (see [`WriteFault`] for which on-disk state each variant leaves).
    pub fn save(&self, path: &Path, fault: WriteFault) -> Result<(), CheckpointError> {
        let payload = serde_json::to_string(self).expect("snapshots serialize");
        write_envelope_atomic(path, &payload, fault)
    }

    /// Loads and fully validates a snapshot.
    ///
    /// # Errors
    ///
    /// Every [`CheckpointError`] variant except `WriteFailed`; on any
    /// error no state has been applied.
    pub fn load(path: &Path, expected_fingerprint: &str) -> Result<Self, CheckpointError> {
        let payload = read_envelope(path)?;
        let snap = Self::deserialize(&payload)
            .map_err(|e| CheckpointError::Malformed(format!("payload: {}", e.0)))?;
        check_fingerprint(&snap.fingerprint, expected_fingerprint)?;
        Ok(snap)
    }
}

impl ColocationSnapshot {
    /// Atomically and durably writes the snapshot to `path`; see
    /// [`DemandSnapshot::save`].
    ///
    /// # Errors
    ///
    /// Same contract as [`DemandSnapshot::save`].
    pub fn save(&self, path: &Path, fault: WriteFault) -> Result<(), CheckpointError> {
        let payload = serde_json::to_string(self).expect("snapshots serialize");
        write_envelope_atomic(path, &payload, fault)
    }

    /// Loads and fully validates a snapshot; see
    /// [`DemandSnapshot::load`].
    ///
    /// # Errors
    ///
    /// Same contract as [`DemandSnapshot::load`].
    pub fn load(path: &Path, expected_fingerprint: &str) -> Result<Self, CheckpointError> {
        let payload = read_envelope(path)?;
        let snap = Self::deserialize(&payload)
            .map_err(|e| CheckpointError::Malformed(format!("payload: {}", e.0)))?;
        check_fingerprint(&snap.fingerprint, expected_fingerprint)?;
        Ok(snap)
    }
}

fn check_fingerprint(found: &str, expected: &str) -> Result<(), CheckpointError> {
    if found == expected {
        Ok(())
    } else {
        Err(CheckpointError::ConfigMismatch {
            expected: expected.to_owned(),
            found: found.to_owned(),
        })
    }
}

/// Wraps `payload` (compact JSON text) in the versioned envelope and
/// writes it via [`write_durable_atomic`].
///
/// Public so external snapshot types (the Azure-scale study's, in
/// `fairco2-bench`) share the exact digest-guarded envelope format of
/// the built-in snapshots.
///
/// # Errors
///
/// Propagates [`write_durable_atomic`]'s I/O errors.
pub fn write_envelope_atomic(
    path: &Path,
    payload: &str,
    fault: WriteFault,
) -> Result<(), CheckpointError> {
    let digest = fnv1a_hex(payload.as_bytes());
    let text = format!(
        "{{\"version\":{CHECKPOINT_VERSION},\"digest\":\"{digest}\",\"payload\":{payload}}}"
    );
    write_durable_atomic(path, &text, fault)
}

/// Atomically and durably replaces the file at `path` with `text`: full
/// write to a `.tmp` sibling, fsync, rename over the target, then fsync
/// of the parent directory (without which the renamed entry itself may
/// not survive a crash). Shared by study checkpoints and the
/// `fairco2-serve` epoch persistence.
///
/// # Errors
///
/// [`CheckpointError::Io`] on filesystem failures;
/// [`CheckpointError::WriteFailed`] when `fault` injects a failure. On a
/// pre-rename failure the target is untouched and no temporary remains;
/// on a directory-fsync failure the target already holds `text` but its
/// durability is not guaranteed, so callers must treat the write as
/// failed (e.g. retry it) rather than record it as persisted.
pub fn write_durable_atomic(
    path: &Path,
    text: &str,
    fault: WriteFault,
) -> Result<(), CheckpointError> {
    let tmp = tmp_path(path);
    let result = write_tmp(&tmp, text, fault == WriteFault::TornTmp);
    if result.is_err() {
        // Leave no torn file behind: the target was never touched and
        // the partial temporary is removed.
        let _ = fs::remove_file(&tmp);
        return result;
    }
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        CheckpointError::Io(format!(
            "rename {} -> {}: {e}",
            tmp.display(),
            path.display()
        ))
    })?;
    sync_parent_dir(path, fault == WriteFault::DirSync)
}

/// Fsyncs the directory containing `path`, making a just-renamed entry
/// durable; a relative bare filename syncs the current directory.
fn sync_parent_dir(path: &Path, inject_failure: bool) -> Result<(), CheckpointError> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let dir = fs::File::open(parent)
        .map_err(|e| CheckpointError::Io(format!("open dir {}: {e}", parent.display())))?;
    if inject_failure {
        return Err(CheckpointError::WriteFailed(
            "injected directory fsync failure after rename".to_owned(),
        ));
    }
    dir.sync_all()
        .map_err(|e| CheckpointError::Io(format!("fsync dir {}: {e}", parent.display())))
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_owned()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

fn write_tmp(tmp: &Path, text: &str, inject_failure: bool) -> Result<(), CheckpointError> {
    let mut file = fs::File::create(tmp)
        .map_err(|e| CheckpointError::Io(format!("{}: {e}", tmp.display())))?;
    if inject_failure {
        // Simulate a crash mid-write: flush only a prefix, then fail.
        let half = text.len() / 2;
        let _ = file.write_all(&text.as_bytes()[..half]);
        let _ = file.sync_all();
        return Err(CheckpointError::WriteFailed(
            "injected checkpoint write failure".to_owned(),
        ));
    }
    file.write_all(text.as_bytes())
        .map_err(|e| CheckpointError::Io(format!("{}: {e}", tmp.display())))?;
    file.sync_all()
        .map_err(|e| CheckpointError::Io(format!("{}: {e}", tmp.display())))?;
    Ok(())
}

/// Reads the envelope at `path`, validating version and digest, and
/// returns the payload value.
///
/// # Errors
///
/// [`CheckpointError::Io`] / [`CheckpointError::Malformed`] on unreadable
/// or unparseable files, [`CheckpointError::VersionMismatch`] and
/// [`CheckpointError::DigestMismatch`] when the envelope fails
/// validation.
pub fn read_envelope(path: &Path) -> Result<Value, CheckpointError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
    let envelope: Value =
        serde_json::from_str(&text).map_err(|e| CheckpointError::Malformed(e.0))?;
    let version = envelope
        .get("version")
        .and_then(|v| match v {
            Value::Number(n) => n.as_u64(),
            _ => None,
        })
        .ok_or_else(|| CheckpointError::Malformed("missing `version`".to_owned()))?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: version,
            expected: CHECKPOINT_VERSION,
        });
    }
    let recorded = envelope
        .get("digest")
        .and_then(Value::as_str)
        .ok_or_else(|| CheckpointError::Malformed("missing `digest`".to_owned()))?
        .to_owned();
    let payload = envelope
        .get("payload")
        .ok_or_else(|| CheckpointError::Malformed("missing `payload`".to_owned()))?;
    // The writer is byte-stable under parse → re-emit, so recomputing
    // the digest from the re-serialized payload detects any corruption.
    let payload_text = serde_json::to_string(payload).expect("values serialize");
    let computed = fnv1a_hex(payload_text.as_bytes());
    if computed != recorded {
        return Err(CheckpointError::DigestMismatch { recorded, computed });
    }
    Ok(payload.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_separate_studies_and_batch_sizes() {
        let a = DemandStudy::default();
        let b = DemandStudy {
            trials: 99,
            ..DemandStudy::default()
        };
        assert_ne!(demand_fingerprint(&a, 64), demand_fingerprint(&b, 64));
        assert_ne!(demand_fingerprint(&a, 64), demand_fingerprint(&a, 32));
        assert_eq!(demand_fingerprint(&a, 64), demand_fingerprint(&a, 64));
        // Demand and colocation fingerprints never collide by prefix.
        let c = ColocationStudy::default();
        assert_ne!(demand_fingerprint(&a, 64), colocation_fingerprint(&c, 64));
    }

    #[test]
    fn fnv_matches_the_reference_vector() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex(b"a"), "af63dc4c8601ec8c");
    }
}
