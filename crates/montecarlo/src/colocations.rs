//! Random colocation scenarios and the interference fairness study.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use fairco2::colocation::{
    ColocationAttributor, ColocationScenario, FairCo2Colocation, GroundTruthMatching, RupColocation,
};
use fairco2::metrics::{summarize, DeviationSummary};
use fairco2_carbon::units::CarbonIntensity;
use fairco2_workloads::history::sampled_profile_from_population;
use fairco2_workloads::{NodeAccounting, WorkloadKind, ALL_WORKLOADS};

use crate::scratch::TrialScratch;

/// Configuration of the colocation Monte Carlo study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColocationStudy {
    /// Number of random scenarios.
    pub trials: usize,
    /// Minimum workloads per scenario (paper: 4).
    pub min_workloads: usize,
    /// Maximum workloads per scenario (paper: 100).
    pub max_workloads: usize,
    /// Grid carbon intensity range in gCO₂e/kWh (paper: 0–1000).
    pub min_grid_ci: f64,
    /// Upper end of the grid CI range.
    pub max_grid_ci: f64,
    /// Minimum historical samples per workload (paper: 1).
    pub min_samples: usize,
    /// Maximum historical samples per workload (paper: 15, i.e. full
    /// history — the generator clamps to the 14 distinct partners).
    pub max_samples: usize,
    /// Base RNG seed; trial `k` uses `base_seed + k`.
    pub base_seed: u64,
}

impl Default for ColocationStudy {
    fn default() -> Self {
        Self {
            trials: 10_000,
            min_workloads: 4,
            max_workloads: 100,
            min_grid_ci: 0.0,
            max_grid_ci: 1000.0,
            min_samples: 1,
            max_samples: 15,
            base_seed: 0xC0_10C0,
        }
    }
}

/// Outcome of one colocation trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColocationTrial {
    /// Trial index (== seed offset).
    pub trial: usize,
    /// Workloads in the scenario.
    pub workloads: usize,
    /// Grid carbon intensity drawn for the scenario (gCO₂e/kWh).
    pub grid_ci: f64,
    /// Historical sampling count drawn for the scenario.
    pub samples: usize,
    /// Deviation of the RUP-Baseline from ground truth.
    pub rup: DeviationSummary,
    /// Deviation of Fair-CO₂'s interference-aware method.
    pub fair_co2: DeviationSummary,
    /// Per-workload ground-truth-relative deviations, used by the
    /// per-workload equity analysis (Figure 9): `(kind, rup_pct,
    /// fair_pct, partner)`.
    pub per_workload: Vec<PerWorkloadDeviation>,
}

/// One workload's deviation record within a trial.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PerWorkloadDeviation {
    /// The workload.
    pub kind: WorkloadKind,
    /// Its partner (`None` = isolated).
    pub partner: Option<WorkloadKind>,
    /// RUP-Baseline deviation from ground truth, in percent (signed).
    pub rup_pct: f64,
    /// Fair-CO₂ deviation from ground truth, in percent (signed).
    pub fair_pct: f64,
}

impl ColocationStudy {
    /// Generates the trial's random scenario and context parameters.
    pub fn generate(&self, trial: usize) -> (ColocationScenario, f64, usize) {
        self.generate_with(trial, &mut TrialScratch::new())
    }

    /// [`generate`](Self::generate) using the scratch's kind buffer. The
    /// RNG draw order is unchanged, so the scenario is identical; the
    /// drawn kinds remain in `scratch` (in scenario-workload order) for
    /// the profile-sampling stage.
    pub fn generate_with(
        &self,
        trial: usize,
        scratch: &mut TrialScratch,
    ) -> (ColocationScenario, f64, usize) {
        let mut rng = StdRng::seed_from_u64(self.base_seed.wrapping_add(trial as u64));
        let n = rng.gen_range(self.min_workloads..=self.max_workloads);
        scratch.kinds.clear();
        scratch
            .kinds
            .extend((0..n).map(|_| ALL_WORKLOADS[rng.gen_range(0..ALL_WORKLOADS.len())]));
        let grid_ci = rng.gen_range(self.min_grid_ci..=self.max_grid_ci);
        let samples = rng
            .gen_range(self.min_samples..=self.max_samples)
            .min(ALL_WORKLOADS.len() - 1);
        (
            ColocationScenario::pair_in_order(&scratch.kinds).expect("n ≥ min_workloads ≥ 1"),
            grid_ci,
            samples,
        )
    }

    /// Runs one trial end-to-end.
    ///
    /// # Panics
    ///
    /// Panics if an attribution method fails on a generated scenario,
    /// which would indicate a harness bug.
    pub fn run_trial(&self, trial: usize) -> ColocationTrial {
        self.run_trial_with_scratch(trial, &mut TrialScratch::new())
    }

    /// [`run_trial`](Self::run_trial) through a per-worker arena: share
    /// vectors, the profile buffer, and the per-draw sampling pool are all
    /// reused across calls. Bit-identical to
    /// [`run_trial`](Self::run_trial).
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_trial`](Self::run_trial).
    pub fn run_trial_with_scratch(
        &self,
        trial: usize,
        scratch: &mut TrialScratch,
    ) -> ColocationTrial {
        let (scenario, grid_ci, samples) = self.generate_with(trial, scratch);
        let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(grid_ci));
        GroundTruthMatching
            .attribute_into(&scenario, &ctx, &mut scratch.truth)
            .expect("scenario is non-empty");
        RupColocation
            .attribute_into(&scenario, &ctx, &mut scratch.shares)
            .expect("scenario is non-empty");

        // Sparse historical profiles: each workload instance samples its
        // own historical partners from the cluster's tenant population
        // (the scenario's other members), seeded per trial for
        // reproducibility. `scratch.kinds` still holds the drawn kinds in
        // scenario-workload order ([`ColocationScenario::pair_in_order`]
        // flattens back to list order); the per-draw population is built
        // in the reusable pool buffer instead of cloning the kind list.
        let mut profile_rng =
            StdRng::seed_from_u64(self.base_seed.wrapping_add(trial as u64) ^ 0x5A5A_5A5A);
        let placed = scenario.workloads();
        scratch.profiles.clear();
        for (i, w) in placed.iter().enumerate() {
            scratch.pool.clear();
            scratch.pool.extend_from_slice(&scratch.kinds);
            scratch.pool.swap_remove(i);
            scratch.profiles.push(sampled_profile_from_population(
                ctx.interference(),
                w.kind,
                &scratch.pool,
                samples,
                &mut profile_rng,
            ));
        }
        FairCo2Colocation::with_full_history()
            .attribute_profiles_into(&scenario, &ctx, &scratch.profiles, &mut scratch.fair)
            .expect("profiles are aligned");

        let per_workload = placed
            .iter()
            .zip(
                scratch
                    .truth
                    .iter()
                    .zip(scratch.shares.iter().zip(&scratch.fair)),
            )
            .map(|(w, (&t, (&r, &f)))| PerWorkloadDeviation {
                kind: w.kind,
                partner: w.partner,
                rup_pct: 100.0 * (r - t) / t,
                fair_pct: 100.0 * (f - t) / t,
            })
            .collect();

        scratch.trials += 1;
        ColocationTrial {
            trial,
            workloads: placed.len(),
            grid_ci,
            samples,
            rup: summarize(&scratch.shares, &scratch.truth).expect("non-zero truth shares"),
            fair_co2: summarize(&scratch.fair, &scratch.truth).expect("non-zero truth shares"),
            per_workload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_respects_parameter_ranges() {
        let study = ColocationStudy::default();
        for t in 0..30 {
            let (scenario, ci, samples) = study.generate(t);
            let n = scenario.workloads().len();
            assert!((4..=100).contains(&n));
            assert!((0.0..=1000.0).contains(&ci));
            assert!((1..=14).contains(&samples));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let study = ColocationStudy::default();
        let (a, ci_a, s_a) = study.generate(3);
        let (b, ci_b, s_b) = study.generate(3);
        assert_eq!(a, b);
        assert_eq!(ci_a, ci_b);
        assert_eq!(s_a, s_b);
    }

    #[test]
    fn fair_co2_beats_rup_on_average() {
        // The Figure 8(a) ordering, on a reduced batch.
        let study = ColocationStudy {
            trials: 40,
            max_workloads: 40,
            ..ColocationStudy::default()
        };
        let mut rup = 0.0;
        let mut fair = 0.0;
        for t in 0..study.trials {
            let r = study.run_trial(t);
            rup += r.rup.average_pct;
            fair += r.fair_co2.average_pct;
        }
        let n = study.trials as f64;
        assert!(
            fair / n < rup / n,
            "fair {:.2}% rup {:.2}%",
            fair / n,
            rup / n
        );
    }

    #[test]
    fn per_workload_records_cover_the_scenario() {
        let study = ColocationStudy {
            max_workloads: 12,
            ..ColocationStudy::default()
        };
        let r = study.run_trial(1);
        assert_eq!(r.per_workload.len(), r.workloads);
        // Signed deviations must be consistent with the summary.
        let worst = r
            .per_workload
            .iter()
            .map(|d| d.rup_pct.abs())
            .fold(0.0, f64::max);
        assert!((worst - r.rup.worst_case_pct).abs() < 1e-9);
    }
}
