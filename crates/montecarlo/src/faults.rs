//! Deterministic failpoints for the study engine.
//!
//! A [`FaultPlan`] scripts exactly where a run misbehaves: panic or fail
//! at trial `N`, at batch `K`, or at checkpoint write `M`, a fixed number
//! of times. The engine itself contains no injection logic — plans are
//! consulted by the study wrappers (which know trial and batch indices)
//! and by the checkpoint writer — so production runs pay nothing and
//! tests can drive every retry/requeue/abandon path on demand.

use crate::engine::BatchFailure;

/// How an injected fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The batch closure panics (as a real bug in trial code would).
    Panic,
    /// The batch closure returns a [`BatchFailure`] error.
    Error,
}

/// Fail a whole batch the first `times` times it is attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchFault {
    /// Batch index the fault fires in.
    pub batch: usize,
    /// Panic or typed error.
    pub kind: FaultKind,
    /// Number of attempts that fail before the batch succeeds.
    pub times: u32,
}

/// Fail the attempt that reaches trial `trial` the first `times` times.
///
/// Unlike [`BatchFault`] this fires mid-batch, after earlier trials in
/// the batch have already run — exercising the fresh-scratch-arena
/// requeue path with a partially used arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialFault {
    /// Trial index the fault fires at.
    pub trial: usize,
    /// Panic or typed error.
    pub kind: FaultKind,
    /// Number of attempts that fail before the trial succeeds.
    pub times: u32,
}

/// A deterministic script of injected failures.
///
/// The default plan is empty: nothing fires, every query returns `None`
/// or `false`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Whole-batch failures.
    pub batches: Vec<BatchFault>,
    /// Mid-batch (per-trial) failures.
    pub trials: Vec<TrialFault>,
    /// Zero-based indices of checkpoint-write *attempts* that fail after
    /// partially writing the temporary file (the torn-write scenario the
    /// atomic rename must contain).
    pub checkpoint_writes: Vec<usize>,
    /// Abort the run (simulating SIGKILL) right after this many
    /// checkpoint writes have succeeded.
    pub kill_after_writes: Option<usize>,
}

impl FaultPlan {
    /// A plan with no injected faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// True if the plan injects nothing anywhere.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
            && self.trials.is_empty()
            && self.checkpoint_writes.is_empty()
            && self.kill_after_writes.is_none()
    }

    /// The fault to fire for `batch` on its `attempt`-th execution
    /// (0-based), if any.
    pub fn batch_fault(&self, batch: usize, attempt: u32) -> Option<FaultKind> {
        self.batches
            .iter()
            .find(|f| f.batch == batch && attempt < f.times)
            .map(|f| f.kind)
    }

    /// The fault to fire when `trial` runs on its batch's `attempt`-th
    /// execution (0-based), if any.
    pub fn trial_fault(&self, trial: usize, attempt: u32) -> Option<FaultKind> {
        self.trials
            .iter()
            .find(|f| f.trial == trial && attempt < f.times)
            .map(|f| f.kind)
    }

    /// Whether checkpoint-write attempt `write` (0-based) should fail.
    pub fn fail_checkpoint_write(&self, write: usize) -> bool {
        self.checkpoint_writes.contains(&write)
    }

    /// Whether the run should simulate a kill after `successful_writes`
    /// checkpoint writes have landed.
    pub fn should_kill(&self, successful_writes: usize) -> bool {
        self.kill_after_writes == Some(successful_writes)
    }

    /// Fires `kind` at `site`: panics for [`FaultKind::Panic`], returns a
    /// [`BatchFailure`] for [`FaultKind::Error`].
    ///
    /// # Panics
    ///
    /// By design, when `kind` is [`FaultKind::Panic`].
    pub fn fire(kind: FaultKind, site: &str) -> Result<(), BatchFailure> {
        match kind {
            FaultKind::Panic => panic!("injected fault: {site}"),
            FaultKind::Error => Err(BatchFailure::new(format!("injected fault: {site}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_only_below_their_times_budget() {
        let plan = FaultPlan {
            batches: vec![BatchFault {
                batch: 3,
                kind: FaultKind::Error,
                times: 2,
            }],
            trials: vec![TrialFault {
                trial: 17,
                kind: FaultKind::Panic,
                times: 1,
            }],
            checkpoint_writes: vec![1],
            kill_after_writes: Some(4),
        };
        assert_eq!(plan.batch_fault(3, 0), Some(FaultKind::Error));
        assert_eq!(plan.batch_fault(3, 1), Some(FaultKind::Error));
        assert_eq!(plan.batch_fault(3, 2), None);
        assert_eq!(plan.batch_fault(2, 0), None);
        assert_eq!(plan.trial_fault(17, 0), Some(FaultKind::Panic));
        assert_eq!(plan.trial_fault(17, 1), None);
        assert!(!plan.fail_checkpoint_write(0));
        assert!(plan.fail_checkpoint_write(1));
        assert!(plan.should_kill(4));
        assert!(!plan.should_kill(3));
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn error_faults_carry_their_site() {
        let err = FaultPlan::fire(FaultKind::Error, "batch 7").unwrap_err();
        assert!(err.message().contains("batch 7"));
    }

    #[test]
    #[should_panic(expected = "injected fault: trial 9")]
    fn panic_faults_panic() {
        let _ = FaultPlan::fire(FaultKind::Panic, "trial 9");
    }
}
