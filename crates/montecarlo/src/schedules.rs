//! Random demand schedules and the dynamic-demand fairness study.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use fairco2::demand::{
    DemandAttributor, DemandProportional, GroundTruthShapley, RupBaseline, TemporalFairCo2,
};
use fairco2::metrics::{summarize, DeviationSummary};
use fairco2::schedule::{Schedule, ScheduledWorkload};

use crate::scratch::TrialScratch;

/// Core allocations the paper's generator draws from.
pub const CORE_CHOICES: [f64; 7] = [8.0, 16.0, 32.0, 48.0, 64.0, 80.0, 96.0];

/// Configuration of the dynamic-demand Monte Carlo study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandStudy {
    /// Number of random schedules to evaluate.
    pub trials: usize,
    /// Maximum workloads per schedule (paper: 22, capped by the exact
    /// solver).
    pub max_workloads: usize,
    /// Minimum time slices per schedule (paper: 4).
    pub min_time_slices: usize,
    /// Maximum time slices per schedule (paper: 9).
    pub max_time_slices: usize,
    /// Base RNG seed; trial `k` uses `base_seed + k`.
    pub base_seed: u64,
}

impl Default for DemandStudy {
    fn default() -> Self {
        Self {
            trials: 10_000,
            max_workloads: 22,
            min_time_slices: 4,
            max_time_slices: 9,
            base_seed: 0xC0_2FA1,
        }
    }
}

/// Outcome of one schedule trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DemandTrial {
    /// Trial index (== seed offset).
    pub trial: usize,
    /// Time slices in the generated schedule.
    pub time_slices: usize,
    /// Workloads in the generated schedule.
    pub workloads: usize,
    /// Deviation of the RUP-Baseline from ground truth.
    pub rup: DeviationSummary,
    /// Deviation of the demand-proportional baseline.
    pub demand_proportional: DeviationSummary,
    /// Deviation of Fair-CO₂'s Temporal Shapley.
    pub fair_co2: DeviationSummary,
}

impl DemandStudy {
    /// Generates the trial's random schedule (deterministic per trial).
    pub fn generate_schedule(&self, trial: usize) -> Schedule {
        self.generate_schedule_with(trial, &mut TrialScratch::new())
    }

    /// [`generate_schedule`](Self::generate_schedule) using the scratch's
    /// generation buffers. Draw-for-draw identical RNG stream, so the
    /// generated schedule is exactly the same.
    pub fn generate_schedule_with(&self, trial: usize, scratch: &mut TrialScratch) -> Schedule {
        let mut rng = StdRng::seed_from_u64(self.base_seed.wrapping_add(trial as u64));
        random_schedule_with(
            &mut rng,
            self.min_time_slices,
            self.max_time_slices,
            self.max_workloads,
            scratch,
        )
    }

    /// Runs a single trial: generates the schedule, computes ground truth
    /// and all method attributions, and summarizes deviations.
    ///
    /// # Panics
    ///
    /// Panics if any attribution method fails on a generated schedule —
    /// the generator guarantees non-zero demand, so a failure indicates a
    /// bug rather than a recoverable input condition.
    pub fn run_trial(&self, trial: usize) -> DemandTrial {
        self.run_trial_with_scratch(trial, &mut TrialScratch::new())
    }

    /// [`run_trial`](Self::run_trial) through a per-worker arena: the
    /// exact-solver coalition table, the share vectors, and the generation
    /// buffers all live in `scratch` and are reused across calls.
    /// Bit-identical to [`run_trial`](Self::run_trial).
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_trial`](Self::run_trial).
    pub fn run_trial_with_scratch(&self, trial: usize, scratch: &mut TrialScratch) -> DemandTrial {
        let schedule = self.generate_schedule_with(trial, scratch);
        // The pool size cancels in percentage deviations; use 1 kg.
        let pool = 1000.0;
        GroundTruthShapley
            .attribute_with_scratch(&schedule, pool, &mut scratch.exact, &mut scratch.truth)
            .expect("generated schedules are solvable");
        let mut summary = |method: &dyn DemandAttributor| {
            method
                .attribute_into(&schedule, pool, &mut scratch.shares)
                .expect("generated schedules are attributable");
            summarize(&scratch.shares, &scratch.truth).expect("ground truth has non-zero shares")
        };
        let rup = summary(&RupBaseline);
        let demand_proportional = summary(&DemandProportional);
        let fair_co2 = summary(&TemporalFairCo2::per_step());
        scratch.trials += 1;
        DemandTrial {
            trial,
            time_slices: schedule.steps(),
            workloads: schedule.workloads().len(),
            rup,
            demand_proportional,
            fair_co2,
        }
    }
}

/// Generates one random schedule with the paper's parameters.
///
/// Steps are one hour; each slice targets 1–5 concurrent workloads; each
/// workload draws its allocation from [`CORE_CHOICES`] and runs 1–3
/// slices. Generation stops at `max_workloads`.
pub fn random_schedule(
    rng: &mut impl Rng,
    min_slices: usize,
    max_slices: usize,
    max_workloads: usize,
) -> Schedule {
    random_schedule_with(
        rng,
        min_slices,
        max_slices,
        max_workloads,
        &mut TrialScratch::new(),
    )
}

/// [`random_schedule`] with the per-slice target and concurrency buffers
/// hoisted into the caller's [`TrialScratch`], so a trial loop allocates
/// them once instead of per call. The RNG draw order is unchanged, so the
/// schedule is identical to [`random_schedule`]'s.
pub fn random_schedule_with(
    rng: &mut impl Rng,
    min_slices: usize,
    max_slices: usize,
    max_workloads: usize,
    scratch: &mut TrialScratch,
) -> Schedule {
    assert!(min_slices >= 1 && min_slices <= max_slices);
    assert!(max_workloads >= 1);
    let slices = rng.gen_range(min_slices..=max_slices);
    scratch.targets.clear();
    scratch
        .targets
        .extend((0..slices).map(|_| rng.gen_range(1..=5)));
    let targets = &scratch.targets;
    scratch.concurrency.clear();
    scratch.concurrency.resize(slices, 0);
    let concurrency = &mut scratch.concurrency;
    let mut workloads: Vec<ScheduledWorkload> = Vec::new();
    for t in 0..slices {
        while concurrency[t] < targets[t] && workloads.len() < max_workloads {
            let duration = rng.gen_range(1..=3).min(slices - t);
            let cores = CORE_CHOICES[rng.gen_range(0..CORE_CHOICES.len())];
            let w = ScheduledWorkload::new(cores, t, t + duration)
                .expect("duration ≥ 1 by construction");
            for c in concurrency.iter_mut().skip(t).take(duration) {
                *c += 1;
            }
            workloads.push(w);
        }
        if workloads.len() >= max_workloads {
            break;
        }
    }
    if workloads.is_empty() {
        // Degenerate corner (max_workloads reached immediately): keep the
        // schedule valid with a single workload.
        workloads.push(ScheduledWorkload::new(CORE_CHOICES[0], 0, 1).expect("valid window"));
    }
    Schedule::new(3600, slices, workloads).expect("generator respects the horizon")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_schedules_respect_the_paper_parameters() {
        let study = DemandStudy::default();
        for trial in 0..50 {
            let s = study.generate_schedule(trial);
            assert!((4..=9).contains(&s.steps()), "slices {}", s.steps());
            assert!(s.workloads().len() <= 22);
            assert!(!s.workloads().is_empty());
            for w in s.workloads() {
                assert!(CORE_CHOICES.contains(&w.cores()));
                assert!((1..=3).contains(&w.duration_steps()));
            }
            // Concurrency never exceeds 5 at workload start times by
            // construction; demand is always positive somewhere.
            assert!(s.peak_demand() > 0.0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_trial() {
        let study = DemandStudy::default();
        assert_eq!(study.generate_schedule(7), study.generate_schedule(7));
        assert_ne!(study.generate_schedule(7), study.generate_schedule(8));
    }

    #[test]
    fn trial_summaries_rank_methods_as_the_paper_reports() {
        // Aggregate over a small batch: Fair-CO₂ < demand-proportional <
        // RUP in average deviation (the Figure 7(a) ordering).
        let study = DemandStudy {
            trials: 60,
            ..DemandStudy::default()
        };
        let mut rup = 0.0;
        let mut dp = 0.0;
        let mut fair = 0.0;
        for t in 0..study.trials {
            let r = study.run_trial(t);
            rup += r.rup.average_pct;
            dp += r.demand_proportional.average_pct;
            fair += r.fair_co2.average_pct;
        }
        let n = study.trials as f64;
        let (rup, dp, fair) = (rup / n, dp / n, fair / n);
        assert!(fair < dp, "fair {fair:.1}% dp {dp:.1}%");
        assert!(dp < rup, "dp {dp:.1}% rup {rup:.1}%");
    }

    #[test]
    fn worst_case_exceeds_average_in_every_trial() {
        let study = DemandStudy::default();
        for t in 0..20 {
            let r = study.run_trial(t);
            assert!(r.rup.worst_case_pct >= r.rup.average_pct);
            assert!(r.fair_co2.worst_case_pct >= r.fair_co2.average_pct);
        }
    }
}
