//! Deterministic parallel trial execution.
//!
//! Trials are embarrassingly parallel and individually seeded, so the
//! runner simply partitions trial indices across threads and reassembles
//! results in trial order — output is bit-identical at any thread count.

use crossbeam::thread;

/// Runs `trials` independent trials across `threads` worker threads,
/// returning results in trial order.
///
/// `run` must be pure with respect to the trial index (each trial seeds
/// its own RNG), which every study in this crate guarantees.
///
/// # Panics
///
/// Panics if `threads == 0` or a worker thread panics.
pub fn run_parallel<T, F>(trials: usize, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "at least one worker thread is required");
    if trials == 0 {
        return Vec::new();
    }
    let threads = threads.min(trials);
    let mut slots: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    thread::scope(|scope| {
        for (worker, chunk) in slots.chunks_mut(trials.div_ceil(threads)).enumerate() {
            let run = &run;
            let base = worker * trials.div_ceil(threads);
            scope.spawn(move |_| {
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(run(base + offset));
                }
            });
        }
    })
    .expect("worker thread panicked");
    slots
        .into_iter()
        .map(|s| s.expect("every trial slot is filled"))
        .collect()
}

/// A sensible default worker count: the available parallelism, capped so
/// laptop-scale machines stay responsive.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_trial_order_at_any_parallelism() {
        let serial = run_parallel(37, 1, |t| t * t);
        for threads in [2, 3, 8, 64] {
            let parallel = run_parallel(37, threads, |t| t * t);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn zero_trials_yield_empty_results() {
        let out: Vec<usize> = run_parallel(0, 4, |t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = run_parallel(1, 0, |t| t);
    }
}
