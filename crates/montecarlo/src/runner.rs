//! Deterministic parallel trial execution.
//!
//! Trials are embarrassingly parallel and individually seeded, so the
//! runner simply partitions trial indices across threads and reassembles
//! results in trial order — output is bit-identical at any thread count.
//!
//! The partitioner itself lives in [`fairco2_shapley::parallel`] (the
//! Shapley engine batches permutations through the same primitive); this
//! module re-exports it and adds the merge helpers studies use to fold
//! per-batch sampling moments and work counters into run-level totals.

pub use fairco2_shapley::parallel::{default_threads, run_parallel};
pub use fairco2_shapley::{EvalCounters, Moments};

/// Merges per-batch sampling moments in batch order, returning `None`
/// for an empty batch set. Order-preserving, so folding the output of
/// [`run_parallel`] reproduces the serial single-pass statistics.
pub fn merge_moments<I>(batches: I) -> Option<Moments>
where
    I: IntoIterator<Item = Moments>,
{
    let mut iter = batches.into_iter();
    let mut merged = iter.next()?;
    for batch in iter {
        merged.merge(&batch);
    }
    Some(merged)
}

/// Sums per-batch work counters into a run-level total.
pub fn merge_counters<I>(batches: I) -> EvalCounters
where
    I: IntoIterator<Item = EvalCounters>,
{
    let mut total = EvalCounters::default();
    for batch in batches {
        total.merge(&batch);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_trial_order_at_any_parallelism() {
        let serial = run_parallel(37, 1, |t| t * t);
        for threads in [2, 3, 8, 64] {
            let parallel = run_parallel(37, threads, |t| t * t);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn zero_trials_yield_empty_results() {
        let out: Vec<usize> = run_parallel(0, 4, |t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn zero_threads_clamps_to_one_worker() {
        let zero = run_parallel(4, 0, |t| t + 10);
        assert_eq!(zero, run_parallel(4, 1, |t| t + 10));
        assert_eq!(zero, vec![10, 11, 12, 13]);
    }

    #[test]
    fn merge_moments_folds_batches_in_order() {
        let mut a = Moments::zero(2);
        a.record_single(&[1.0, 2.0]);
        let mut b = Moments::zero(2);
        b.record_single(&[3.0, 4.0]);
        let merged = merge_moments([a, b]).unwrap();
        assert_eq!(merged.permutations(), 2);
        let values = merged.values();
        assert!((values[0] - 2.0).abs() < 1e-12);
        assert!((values[1] - 3.0).abs() < 1e-12);
        assert!(merge_moments(std::iter::empty()).is_none());
    }

    #[test]
    fn merge_counters_sums_all_fields() {
        let batches = (0..3).map(|i| EvalCounters {
            coalition_evals: i + 1,
            marginal_updates: 2 * (i + 1),
            batches: 1,
            wall_time_secs: 0.25,
            cache_hits: 5 * (i + 1),
            cache_misses: i + 1,
        });
        let total = merge_counters(batches);
        assert_eq!(total.coalition_evals, 6);
        assert_eq!(total.marginal_updates, 12);
        assert_eq!(total.batches, 3);
        assert!((total.wall_time_secs - 0.75).abs() < 1e-12);
        assert_eq!(total.cache_hits, 30);
        assert_eq!(total.cache_misses, 6);
    }
}
