//! Quick study-level throughput probe: the collect-based trial loop
//! (`run_trial`, fresh allocations) vs the scratch-arena loop
//! (`run_trial_with_scratch`); `perf_report --mc-trials N` is the
//! committed, baseline-calibrated version of this measurement.
use std::time::Instant;

use fairco2_montecarlo::{DemandStudy, TrialScratch};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let study = DemandStudy {
        trials,
        max_workloads: 22,
        ..Default::default()
    };
    let _ = study.run_trial(0); // warm up
    let t0 = Instant::now();
    for t in 0..study.trials {
        std::hint::black_box(study.run_trial(t));
    }
    let collect = t0.elapsed().as_secs_f64();
    let mut scratch = TrialScratch::for_demand(&study);
    let t0 = Instant::now();
    for t in 0..study.trials {
        std::hint::black_box(study.run_trial_with_scratch(t, &mut scratch));
    }
    let reuse = t0.elapsed().as_secs_f64();
    println!(
        "trials {}  collect {collect:.3}s ({:.1}/s)  scratch {reuse:.3}s ({:.1}/s)  speedup {:.2}x",
        study.trials,
        study.trials as f64 / collect,
        study.trials as f64 / reuse,
        collect / reuse
    );
}
