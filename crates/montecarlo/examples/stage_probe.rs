//! Per-trial stage breakdown of the demand study: how much of a trial is
//! schedule generation, game construction, the exact ground-truth solve,
//! and the attribution methods. Guides where engine optimization pays.

use std::time::Instant;

use fairco2::demand::GroundTruthShapley;
use fairco2_montecarlo::schedules::DemandStudy;
use fairco2_montecarlo::TrialScratch;
use fairco2_shapley::game::PeakDemandGame;

fn main() {
    let trials = 1000usize;
    let study = DemandStudy {
        trials,
        ..DemandStudy::default()
    };
    let mut scratch = TrialScratch::new();

    let start = Instant::now();
    for t in 0..trials {
        std::hint::black_box(study.generate_schedule_with(t, &mut scratch));
    }
    let gen = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for t in 0..trials {
        let s = study.generate_schedule_with(t, &mut scratch);
        std::hint::black_box(PeakDemandGame::new(s.demand_matrix()));
    }
    let game = start.elapsed().as_secs_f64();

    let mut exact = fairco2_shapley::exact::ExactScratch::new();
    let mut out = Vec::new();
    let start = Instant::now();
    for t in 0..trials {
        let s = study.generate_schedule_with(t, &mut scratch);
        GroundTruthShapley
            .attribute_with_scratch(&s, 1000.0, &mut exact, &mut out)
            .unwrap();
        std::hint::black_box(&out);
    }
    let truth = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for t in 0..trials {
        std::hint::black_box(study.run_trial_with_scratch(t, &mut scratch));
    }
    let full = start.elapsed().as_secs_f64();

    println!("stage breakdown over {trials} trials (cumulative):");
    println!("  generate            {gen:.3}s");
    println!(
        "  + game build        {game:.3}s  (build {:.3}s)",
        game - gen
    );
    println!(
        "  + ground truth      {truth:.3}s  (solve {:.3}s)",
        truth - game
    );
    println!(
        "  + methods/summaries {full:.3}s  (methods {:.3}s)",
        full - truth
    );
}
