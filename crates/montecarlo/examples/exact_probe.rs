//! Measurement probe behind the solver-level numbers in DESIGN.md §8:
//! one exact solve at fixed `n = 22`, fresh-alloc vs warm scratch arena,
//! plus fill-free (`TableGame`) and dense-rescan (`ScanPeak`) bounds and
//! the workload-count histogram of the default demand study.
use std::time::Instant;

use fairco2_montecarlo::DemandStudy;
use fairco2_shapley::exact::{exact_shapley_fast, exact_shapley_fast_with_scratch, ExactScratch};
use fairco2_shapley::game::PeakDemandGame;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 22usize;
    let mut rng = StdRng::seed_from_u64(7);
    let demand: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..8).map(|_| rng.gen_range(0.0..96.0)).collect())
        .collect();
    let game = PeakDemandGame::new(demand);
    let reps = 5;
    let _ = exact_shapley_fast(&game).unwrap();
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(exact_shapley_fast(&game).unwrap());
    }
    let fresh = t0.elapsed().as_secs_f64() / reps as f64;
    let mut scratch = ExactScratch::for_players(n);
    let _ = exact_shapley_fast_with_scratch(&game, &mut scratch).unwrap();
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(exact_shapley_fast_with_scratch(&game, &mut scratch).unwrap());
    }
    let reused = t0.elapsed().as_secs_f64() / reps as f64;
    println!(
        "n={n}: fresh {fresh:.4}s  scratch {reused:.4}s  speedup {:.2}x",
        fresh / reused
    );

    // TableGame toggle is ~free, so this isolates the accumulation cost;
    // the peak-demand gap above it is the Gray-code fill.
    let values: Vec<f64> = (0..1usize << n).map(|m| (m % 97) as f64).collect();
    let tg = fairco2_shapley::game::TableGame::new(n, values);
    let _ = exact_shapley_fast_with_scratch(&tg, &mut scratch).unwrap();
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(exact_shapley_fast_with_scratch(&tg, &mut scratch).unwrap());
    }
    let acc = t0.elapsed().as_secs_f64() / reps as f64;
    println!("n={n}: table-game scratch {acc:.4}s (≈ fill-free accumulation bound)");

    let scan = fairco2_shapley::game::ScanPeak(game);
    let _ = exact_shapley_fast_with_scratch(&scan, &mut scratch).unwrap();
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(exact_shapley_fast_with_scratch(&scan, &mut scratch).unwrap());
    }
    let flat = t0.elapsed().as_secs_f64() / reps as f64;
    println!("n={n}: scan-peak scratch {flat:.4}s (flat rescan fill)");

    // Workload-count histogram of the default study's first 1000 trials.
    let study = DemandStudy::default();
    let mut hist = [0usize; 23];
    for t in 0..1000 {
        hist[study.generate_schedule(t).workloads().len()] += 1;
    }
    for (n, c) in hist.iter().enumerate() {
        if *c > 0 {
            println!("n={n:>2}: {c}");
        }
    }
}
