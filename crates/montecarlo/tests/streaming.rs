//! Integration tests for the streaming study engine: the deterministic
//! trial stream is pinned by digest, summaries match the collect-then-
//! summarize path, and results are bit-identical at 1/2/8 threads.

use proptest::prelude::*;

use fairco2::metrics::DeviationSummary;
use fairco2_montecarlo::engine::{stream_colocation_study, stream_demand_study, EngineConfig};
use fairco2_montecarlo::streaming::DemandStudySummary;
use fairco2_montecarlo::{ColocationStudy, DemandStudy, DemandTrial};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn mix(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(FNV_PRIME);
}

/// FNV-1a digest of the first `count` generated demand schedules.
fn demand_stream_digest(study: &DemandStudy, count: usize) -> u64 {
    let mut h = FNV_OFFSET;
    for trial in 0..count {
        let s = study.generate_schedule(trial);
        mix(&mut h, s.steps() as u64);
        mix(&mut h, s.workloads().len() as u64);
        for w in s.workloads() {
            mix(&mut h, w.cores().to_bits());
            mix(&mut h, w.start() as u64);
            mix(&mut h, w.end() as u64);
        }
    }
    h
}

/// FNV-1a digest of the first `count` generated colocation scenarios.
fn colocation_stream_digest(study: &ColocationStudy, count: usize) -> u64 {
    let mut h = FNV_OFFSET;
    for trial in 0..count {
        let (scenario, grid_ci, samples) = study.generate(trial);
        let workloads = scenario.workloads();
        mix(&mut h, workloads.len() as u64);
        for w in &workloads {
            mix(&mut h, w.kind.index() as u64);
        }
        mix(&mut h, grid_ci.to_bits());
        mix(&mut h, samples as u64);
    }
    h
}

/// Pin the deterministic trial streams: a scratch-reuse refactor that
/// perturbs any RNG draw (order or count) changes these digests. The
/// constants were recorded from the seed implementation; regenerate them
/// deliberately (printing the new digest) only when the generator itself
/// is intentionally changed.
#[test]
fn first_32_demand_schedules_are_pinned() {
    let digest = demand_stream_digest(&DemandStudy::default(), 32);
    assert_eq!(
        digest, 0x32af_0728_c290_652b,
        "demand trial stream changed: digest {digest:#018x}"
    );
}

#[test]
fn first_32_colocation_scenarios_are_pinned() {
    let digest = colocation_stream_digest(&ColocationStudy::default(), 32);
    assert_eq!(
        digest, 0x2107_4407_f012_b1b1,
        "colocation trial stream changed: digest {digest:#018x}"
    );
}

/// The scratch path must reproduce the allocating path bit-for-bit.
#[test]
fn scratch_trials_are_bit_identical_to_allocating_trials() {
    let study = DemandStudy {
        trials: 12,
        max_workloads: 10,
        ..DemandStudy::default()
    };
    let mut scratch = fairco2_montecarlo::TrialScratch::for_demand(&study);
    for t in 0..study.trials {
        let a = study.run_trial(t);
        let b = study.run_trial_with_scratch(t, &mut scratch);
        assert_eq!(a.rup.average_pct.to_bits(), b.rup.average_pct.to_bits());
        assert_eq!(
            a.fair_co2.worst_case_pct.to_bits(),
            b.fair_co2.worst_case_pct.to_bits()
        );
        assert_eq!(a.time_slices, b.time_slices);
        assert_eq!(a.workloads, b.workloads);
    }

    let coloc = ColocationStudy {
        trials: 6,
        max_workloads: 14,
        ..ColocationStudy::default()
    };
    let mut scratch = fairco2_montecarlo::TrialScratch::new();
    for t in 0..coloc.trials {
        let a = coloc.run_trial(t);
        let b = coloc.run_trial_with_scratch(t, &mut scratch);
        assert_eq!(a.rup.average_pct.to_bits(), b.rup.average_pct.to_bits());
        assert_eq!(
            a.fair_co2.average_pct.to_bits(),
            b.fair_co2.average_pct.to_bits()
        );
        assert_eq!(a.per_workload.len(), b.per_workload.len());
        for (x, y) in a.per_workload.iter().zip(&b.per_workload) {
            assert_eq!(x.rup_pct.to_bits(), y.rup_pct.to_bits());
            assert_eq!(x.fair_pct.to_bits(), y.fair_pct.to_bits());
        }
    }
}

/// Streaming summaries are bit-identical across thread counts.
#[test]
fn demand_summary_is_thread_count_invariant() {
    let study = DemandStudy {
        trials: 40,
        max_workloads: 10,
        ..DemandStudy::default()
    };
    let cfg = |threads| EngineConfig {
        threads,
        batch_trials: 8,
        collect_trials: false,
    };
    let (one, _, _) = stream_demand_study(&study, cfg(1));
    for threads in [2, 8] {
        let (many, _, _) = stream_demand_study(&study, cfg(threads));
        assert_eq!(one, many, "threads = {threads}");
    }
}

#[test]
fn colocation_summary_is_thread_count_invariant() {
    let study = ColocationStudy {
        trials: 24,
        max_workloads: 20,
        ..ColocationStudy::default()
    };
    let cfg = |threads| EngineConfig {
        threads,
        batch_trials: 5,
        collect_trials: false,
    };
    let (one, _, _) = stream_colocation_study(&study, cfg(1));
    for threads in [2, 8] {
        let (many, _, _) = stream_colocation_study(&study, cfg(threads));
        assert_eq!(one, many, "threads = {threads}");
    }
}

fn deviation_strategy() -> impl Strategy<Value = DeviationSummary> {
    (0.0f64..300.0, 1.0f64..2.5).prop_map(|(avg, stretch)| DeviationSummary {
        average_pct: avg,
        worst_case_pct: avg * stretch,
    })
}

fn trial_strategy() -> impl Strategy<Value = DemandTrial> {
    (
        4usize..=9,
        1usize..=22,
        deviation_strategy(),
        deviation_strategy(),
        deviation_strategy(),
    )
        .prop_map(
            |(time_slices, workloads, rup, demand_proportional, fair_co2)| DemandTrial {
                trial: 0,
                time_slices,
                workloads,
                rup,
                demand_proportional,
                fair_co2,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The streaming summary reproduces the collect-then-summarize
    /// statistics on arbitrary trial batches: counts and maxima exactly,
    /// means to floating-point accumulation accuracy, and bucket
    /// memberships exactly.
    #[test]
    fn summary_matches_collected_statistics(
        trials in prop::collection::vec(trial_strategy(), 1..200),
        batch in 1usize..64,
    ) {
        let study = DemandStudy::default();
        let summary = DemandStudySummary::from_trials(&study, &trials, batch);

        prop_assert_eq!(summary.trials, trials.len() as u64);
        prop_assert_eq!(summary.all.rup.average.count(), trials.len() as u64);

        let naive_mean =
            trials.iter().map(|t| t.rup.average_pct).sum::<f64>() / trials.len() as f64;
        let tolerance = 1e-9 * naive_mean.abs().max(1.0);
        prop_assert!((summary.all.rup.average.mean() - naive_mean).abs() < tolerance);

        let naive_max = trials
            .iter()
            .map(|t| t.fair_co2.worst_case_pct)
            .fold(0.0f64, f64::max);
        prop_assert_eq!(summary.all.fair_co2.worst_case.max.to_bits(), naive_max.to_bits());

        for b in &summary.by_workloads {
            let naive = trials
                .iter()
                .filter(|t| (b.lo..=b.hi).contains(&t.workloads))
                .count() as u64;
            prop_assert_eq!(b.methods.rup.average.count(), naive);
        }
        for b in &summary.by_time_slices {
            let naive = trials
                .iter()
                .filter(|t| (b.lo..=b.hi).contains(&t.time_slices))
                .count() as u64;
            prop_assert_eq!(b.methods.fair_co2.worst_case.count(), naive);
        }

        // Histograms are integer-count and therefore invariant to the
        // batch grouping entirely.
        let other = DemandStudySummary::from_trials(&study, &trials, batch + 7);
        prop_assert_eq!(&summary.all.rup.average.hist, &other.all.rup.average.hist);
        prop_assert_eq!(summary.all.rup.average.hist.total(), trials.len() as u64);
    }

    /// The same trials at the same batch size always produce the same
    /// bits, regardless of how many summaries were merged on the way.
    #[test]
    fn same_batching_is_bit_stable(
        trials in prop::collection::vec(trial_strategy(), 1..100),
        batch in 1usize..32,
    ) {
        let study = DemandStudy::default();
        let a = DemandStudySummary::from_trials(&study, &trials, batch);
        let b = DemandStudySummary::from_trials(&study, &trials, batch);
        prop_assert_eq!(a, b);
    }
}
