//! Reproducibility guarantees of the Monte Carlo harness: results must be
//! bit-identical across thread counts and runs, and different seeds must
//! actually change the scenarios.

use fairco2_montecarlo::colocations::ColocationStudy;
use fairco2_montecarlo::runner::run_parallel;
use fairco2_montecarlo::schedules::DemandStudy;

#[test]
fn demand_study_is_bit_identical_across_thread_counts() {
    let study = DemandStudy {
        trials: 24,
        ..DemandStudy::default()
    };
    let single: Vec<f64> = run_parallel(study.trials, 1, |t| study.run_trial(t))
        .iter()
        .map(|r| r.rup.average_pct)
        .collect();
    for threads in [2usize, 5, 16] {
        let multi: Vec<f64> = run_parallel(study.trials, threads, |t| study.run_trial(t))
            .iter()
            .map(|r| r.rup.average_pct)
            .collect();
        assert_eq!(single, multi, "threads = {threads}");
    }
}

#[test]
fn colocation_study_is_bit_identical_across_runs() {
    let study = ColocationStudy {
        trials: 12,
        max_workloads: 30,
        ..ColocationStudy::default()
    };
    let a: Vec<f64> = (0..study.trials)
        .map(|t| study.run_trial(t).fair_co2.average_pct)
        .collect();
    let b: Vec<f64> = (0..study.trials)
        .map(|t| study.run_trial(t).fair_co2.average_pct)
        .collect();
    assert_eq!(a, b);
}

#[test]
fn different_base_seeds_change_the_scenarios() {
    let a = DemandStudy {
        trials: 5,
        base_seed: 1,
        ..DemandStudy::default()
    };
    let b = DemandStudy {
        trials: 5,
        base_seed: 2,
        ..DemandStudy::default()
    };
    let differing = (0..5)
        .filter(|&t| a.generate_schedule(t) != b.generate_schedule(t))
        .count();
    assert!(differing >= 4, "only {differing} of 5 schedules differ");
}

#[test]
fn trial_indices_are_independent_of_execution_order() {
    // Trial 7 run alone equals trial 7 run within a batch.
    let study = ColocationStudy {
        trials: 10,
        max_workloads: 20,
        ..ColocationStudy::default()
    };
    let alone = study.run_trial(7);
    let batch = run_parallel(10, 3, |t| study.run_trial(t));
    assert_eq!(alone.rup.average_pct, batch[7].rup.average_pct);
    assert_eq!(alone.workloads, batch[7].workloads);
}
