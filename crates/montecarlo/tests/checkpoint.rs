//! Kill-and-resume and checkpoint-format hardening tests.
//!
//! The contract under test: a study interrupted at *any* checkpoint
//! boundary — including with batches parked in the reorder buffer — and
//! then resumed produces a summary **bit-for-bit** identical to an
//! uninterrupted run, at any thread count; and a checkpoint file that is
//! stale, torn, corrupted, or from another study is rejected with a
//! typed error before any state is applied.

use std::path::PathBuf;
use std::sync::OnceLock;

use fairco2_montecarlo::checkpoint::demand_fingerprint;
use fairco2_montecarlo::checkpoint::PendingDemandBatch;
use fairco2_montecarlo::streaming::{ColocationStudySummary, DemandStudySummary};
use fairco2_montecarlo::{
    stream_colocation_study_resumable, stream_demand_study_resumable, CheckpointError,
    CheckpointSpec, ColocationStudy, DemandSnapshot, DemandStudy, EngineConfig, EngineError,
    EngineStats, FaultPlan, StudyOptions, WriteFault,
};
use proptest::prelude::*;

const BATCH: usize = 4;
const THREAD_CHOICES: [usize; 3] = [1, 2, 8];

fn small_demand() -> DemandStudy {
    DemandStudy {
        trials: 33,
        max_workloads: 8,
        ..DemandStudy::default()
    }
}

fn small_colocation() -> ColocationStudy {
    ColocationStudy {
        trials: 21,
        max_workloads: 12,
        ..ColocationStudy::default()
    }
}

fn cfg(threads: usize, batch_trials: usize) -> EngineConfig {
    EngineConfig {
        threads,
        batch_trials,
        collect_trials: false,
    }
}

/// A per-test scratch file under the system temp dir; unique per process
/// so parallel test binaries never collide.
fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fairco2-checkpoint-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{}-{name}.ckpt", std::process::id()))
}

/// The summary's exact bits, via the byte-stable JSON writer: equal
/// strings ⇔ equal `f64::to_bits` everywhere (signed zeros included).
fn demand_bits(s: &DemandStudySummary) -> String {
    serde_json::to_string(s).expect("summaries serialize")
}

fn colocation_bits(s: &ColocationStudySummary) -> String {
    serde_json::to_string(s).expect("summaries serialize")
}

/// Uninterrupted single-thread reference for [`small_demand`], computed
/// once (thread-count invariance of the engine is pinned elsewhere).
fn demand_reference() -> &'static DemandStudySummary {
    static REF: OnceLock<DemandStudySummary> = OnceLock::new();
    REF.get_or_init(|| {
        let (summary, _, _) = stream_demand_study_resumable(
            &small_demand(),
            cfg(1, BATCH),
            &StudyOptions::default(),
            |_, _| {},
        )
        .expect("fault-free run");
        summary
    })
}

fn colocation_reference() -> &'static ColocationStudySummary {
    static REF: OnceLock<ColocationStudySummary> = OnceLock::new();
    REF.get_or_init(|| {
        let (summary, _, _) = stream_colocation_study_resumable(
            &small_colocation(),
            cfg(1, 5),
            &StudyOptions::default(),
            |_, _| {},
        )
        .expect("fault-free run");
        summary
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Kill the demand study right after its `kill`-th checkpoint write
    /// (checkpointing every batch ⇒ every batch boundary is a kill
    /// point; at 2/8 threads the reorder buffer is routinely non-empty
    /// when the snapshot is cut), resume, and require the final summary
    /// to match the uninterrupted run bit-for-bit.
    #[test]
    fn demand_kill_and_resume_is_bit_identical(
        kill in 1usize..=8,
        threads_sel in 0usize..3,
    ) {
        let study = small_demand();
        let threads = THREAD_CHOICES[threads_sel];
        let path = tmp(&format!("demand-kill-{kill}-t{threads}"));
        let _ = std::fs::remove_file(&path);

        let killed = stream_demand_study_resumable(
            &study,
            cfg(threads, BATCH),
            &StudyOptions {
                checkpoint: Some(CheckpointSpec::new(&path, 1)),
                faults: FaultPlan {
                    kill_after_writes: Some(kill),
                    ..FaultPlan::default()
                },
                ..StudyOptions::default()
            },
            |_, _| {},
        );
        prop_assert!(
            matches!(killed, Err(EngineError::Killed { writes }) if writes == kill),
            "kill failpoint did not fire: {killed:?}"
        );

        let (resumed, _, stats) = stream_demand_study_resumable(
            &study,
            cfg(threads, BATCH),
            &StudyOptions {
                checkpoint: Some(CheckpointSpec::new(&path, 1)),
                resume: true,
                ..StudyOptions::default()
            },
            |_, _| {},
        )
        .expect("resume completes");
        prop_assert_eq!(stats.trials, study.trials as u64);
        prop_assert_eq!(stats.batches, 9);
        prop_assert_eq!(&resumed, demand_reference());
        prop_assert_eq!(demand_bits(&resumed), demand_bits(demand_reference()));
        let _ = std::fs::remove_file(&path);
    }

    /// The colocation twin of the kill-and-resume identity.
    #[test]
    fn colocation_kill_and_resume_is_bit_identical(
        kill in 1usize..=4,
        threads_sel in 0usize..3,
    ) {
        let study = small_colocation();
        let threads = THREAD_CHOICES[threads_sel];
        let path = tmp(&format!("colocation-kill-{kill}-t{threads}"));
        let _ = std::fs::remove_file(&path);

        let killed = stream_colocation_study_resumable(
            &study,
            cfg(threads, 5),
            &StudyOptions {
                checkpoint: Some(CheckpointSpec::new(&path, 1)),
                faults: FaultPlan {
                    kill_after_writes: Some(kill),
                    ..FaultPlan::default()
                },
                ..StudyOptions::default()
            },
            |_, _| {},
        );
        prop_assert!(matches!(killed, Err(EngineError::Killed { .. })));

        let (resumed, _, stats) = stream_colocation_study_resumable(
            &study,
            cfg(threads, 5),
            &StudyOptions {
                checkpoint: Some(CheckpointSpec::new(&path, 1)),
                resume: true,
                ..StudyOptions::default()
            },
            |_, _| {},
        )
        .expect("resume completes");
        prop_assert_eq!(stats.trials, study.trials as u64);
        prop_assert_eq!(&resumed, colocation_reference());
        prop_assert_eq!(
            colocation_bits(&resumed),
            colocation_bits(colocation_reference())
        );
        let _ = std::fs::remove_file(&path);
    }
}

/// A deterministic mid-reorder-buffer kill point: the snapshot carries a
/// batch that completed ahead of the frontier. Resume must merge it from
/// the checkpoint without re-executing it and still match the reference.
#[test]
fn resume_consumes_reorder_buffer_batches_without_reexecution() {
    let study = small_demand();
    let trials: Vec<_> = (0..study.trials).map(|t| study.run_trial(t)).collect();
    // Frontier after batches {0, 1}; batch 3 finished early and sits in
    // the reorder buffer; batch 2 was in flight when the run died.
    let snap = DemandSnapshot {
        fingerprint: demand_fingerprint(&study, BATCH),
        frontier: 2,
        summary: DemandStudySummary::from_trials(&study, &trials[0..8], BATCH),
        pending: vec![PendingDemandBatch {
            batch: 3,
            summary: DemandStudySummary::from_trials(&study, &trials[12..16], BATCH),
        }],
        stats: EngineStats {
            trials: 8,
            batches: 2,
            threads: 1,
            ..EngineStats::default()
        },
    };
    let path = tmp("demand-reorder-buffer");
    snap.save(&path, WriteFault::None).expect("save");

    for threads in THREAD_CHOICES {
        let (resumed, _, stats) = stream_demand_study_resumable(
            &study,
            cfg(threads, BATCH),
            &StudyOptions {
                checkpoint: Some(CheckpointSpec::new(&path, 1)),
                resume: true,
                ..StudyOptions::default()
            },
            |_, _| {},
        )
        .expect("resume completes");
        assert_eq!(demand_bits(&resumed), demand_bits(demand_reference()));
        assert_eq!(stats.trials, study.trials as u64);
        // Re-save for the next thread count (the resumed run overwrote
        // the checkpoint as it progressed).
        snap.save(&path, WriteFault::None).expect("save");
    }
    let _ = std::fs::remove_file(&path);
}

/// Resuming with no checkpoint file on disk starts a fresh run (the CI
/// kill/resume smoke may kill the study before its first write).
#[test]
fn resume_with_missing_file_starts_fresh() {
    let study = small_demand();
    let path = tmp("demand-missing");
    let _ = std::fs::remove_file(&path);
    let (summary, _, _) = stream_demand_study_resumable(
        &study,
        cfg(2, BATCH),
        &StudyOptions {
            checkpoint: Some(CheckpointSpec::new(&path, 4)),
            resume: true,
            ..StudyOptions::default()
        },
        |_, _| {},
    )
    .expect("fresh run");
    assert_eq!(demand_bits(&summary), demand_bits(demand_reference()));
    let _ = std::fs::remove_file(&path);
}

fn saved_snapshot(name: &str) -> (PathBuf, DemandStudy) {
    let study = small_demand();
    let trials: Vec<_> = (0..8).map(|t| study.run_trial(t)).collect();
    let snap = DemandSnapshot {
        fingerprint: demand_fingerprint(&study, BATCH),
        frontier: 2,
        summary: DemandStudySummary::from_trials(&study, &trials, BATCH),
        pending: Vec::new(),
        stats: EngineStats {
            trials: 8,
            batches: 2,
            threads: 1,
            ..EngineStats::default()
        },
    };
    let path = tmp(name);
    snap.save(&path, WriteFault::None).expect("save");
    (path, study)
}

#[test]
fn version_mismatch_is_rejected() {
    let (path, study) = saved_snapshot("version-mismatch");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.starts_with("{\"version\":1,"),
        "envelope changed shape"
    );
    std::fs::write(
        &path,
        text.replacen("{\"version\":1,", "{\"version\":2,", 1),
    )
    .unwrap();
    let err = DemandSnapshot::load(&path, &demand_fingerprint(&study, BATCH)).unwrap_err();
    assert_eq!(
        err,
        CheckpointError::VersionMismatch {
            found: 2,
            expected: 1
        }
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn flipped_digest_is_rejected() {
    let (path, study) = saved_snapshot("flipped-digest");
    let text = std::fs::read_to_string(&path).unwrap();
    let marker = "\"digest\":\"";
    let at = text.find(marker).expect("digest field") + marker.len();
    let original = text.as_bytes()[at] as char;
    let flipped = if original == 'a' { 'b' } else { 'a' };
    let mut tampered = text.clone();
    tampered.replace_range(at..at + 1, &flipped.to_string());
    std::fs::write(&path, tampered).unwrap();
    let err = DemandSnapshot::load(&path, &demand_fingerprint(&study, BATCH)).unwrap_err();
    assert!(
        matches!(err, CheckpointError::DigestMismatch { .. }),
        "{err:?}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_payload_is_rejected_by_the_digest() {
    let (path, study) = saved_snapshot("corrupt-payload");
    let text = std::fs::read_to_string(&path).unwrap();
    // Flip one digit inside the payload; the envelope stays well-formed
    // JSON, so only the digest can catch it.
    let marker = "\"frontier\":2";
    let tampered = text.replacen(marker, "\"frontier\":3", 1);
    assert_ne!(tampered, text, "tamper point not found");
    std::fs::write(&path, tampered).unwrap();
    let err = DemandSnapshot::load(&path, &demand_fingerprint(&study, BATCH)).unwrap_err();
    assert!(
        matches!(err, CheckpointError::DigestMismatch { .. }),
        "{err:?}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_file_is_rejected() {
    let (path, study) = saved_snapshot("truncated");
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();
    let err = DemandSnapshot::load(&path, &demand_fingerprint(&study, BATCH)).unwrap_err();
    assert!(matches!(err, CheckpointError::Malformed(_)), "{err:?}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn config_fingerprint_mismatch_is_rejected() {
    let (path, study) = saved_snapshot("config-mismatch");
    // Same file, different study → typed rejection, both at the
    // snapshot layer and through the resume path.
    let other = DemandStudy {
        trials: 99,
        ..study
    };
    let err = DemandSnapshot::load(&path, &demand_fingerprint(&other, BATCH)).unwrap_err();
    assert!(
        matches!(err, CheckpointError::ConfigMismatch { .. }),
        "{err:?}"
    );

    let resumed = stream_demand_study_resumable(
        &other,
        cfg(1, BATCH),
        &StudyOptions {
            checkpoint: Some(CheckpointSpec::new(&path, 1)),
            resume: true,
            ..StudyOptions::default()
        },
        |_, _| {},
    );
    assert!(
        matches!(
            resumed,
            Err(EngineError::Checkpoint(
                CheckpointError::ConfigMismatch { .. }
            ))
        ),
        "{resumed:?}"
    );
    // Batch-size changes move batch boundaries, so they refuse too.
    let err = DemandSnapshot::load(&path, &demand_fingerprint(&study, BATCH * 2)).unwrap_err();
    assert!(
        matches!(err, CheckpointError::ConfigMismatch { .. }),
        "{err:?}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn failed_write_leaves_no_torn_file() {
    let (path, study) = saved_snapshot("atomic-write");
    let fingerprint = demand_fingerprint(&study, BATCH);
    let before = DemandSnapshot::load(&path, &fingerprint).expect("intact");

    // An injected mid-write crash on the *next* snapshot must leave the
    // previous checkpoint byte-for-byte intact and no .tmp behind.
    let newer = DemandSnapshot {
        frontier: 4,
        ..before.clone()
    };
    let err = newer.save(&path, WriteFault::TornTmp).unwrap_err();
    assert!(matches!(err, CheckpointError::WriteFailed(_)), "{err:?}");
    let mut tmp_name = path.file_name().unwrap().to_owned();
    tmp_name.push(".tmp");
    assert!(
        !path.with_file_name(tmp_name).exists(),
        "torn temporary left behind"
    );
    let after = DemandSnapshot::load(&path, &fingerprint).expect("still intact");
    assert_eq!(after, before);
    assert_eq!(after.frontier, 2);
    let _ = std::fs::remove_file(&path);
}

/// The durability step after the rename: an injected parent-directory
/// fsync failure surfaces as `WriteFailed` even though the rename
/// already happened — the file holds the new snapshot (and still parses
/// cleanly), but the caller must not record the write as persisted.
#[test]
fn failed_directory_sync_surfaces_after_rename() {
    let (path, study) = saved_snapshot("dir-sync-failure");
    let fingerprint = demand_fingerprint(&study, BATCH);
    let before = DemandSnapshot::load(&path, &fingerprint).expect("intact");

    let newer = DemandSnapshot {
        frontier: 4,
        ..before.clone()
    };
    let err = newer.save(&path, WriteFault::DirSync).unwrap_err();
    assert!(matches!(err, CheckpointError::WriteFailed(_)), "{err:?}");
    assert!(
        err.to_string().contains("directory fsync"),
        "error names the failed step: {err}"
    );
    let mut tmp_name = path.file_name().unwrap().to_owned();
    tmp_name.push(".tmp");
    assert!(
        !path.with_file_name(tmp_name).exists(),
        "temporary left behind"
    );
    // The rename preceded the failed fsync, so the file content is the
    // *new* snapshot — intact, just not guaranteed durable.
    let after = DemandSnapshot::load(&path, &fingerprint).expect("well-formed");
    assert_eq!(after.frontier, 4);
    // A retried save with no fault succeeds and is then durable.
    newer.save(&path, WriteFault::None).expect("retry");
    assert_eq!(
        DemandSnapshot::load(&path, &fingerprint)
            .expect("durable")
            .frontier,
        4
    );
    let _ = std::fs::remove_file(&path);
}

/// The same torn-write scenario driven end-to-end through the engine's
/// checkpoint-write failpoint: the run surfaces the typed error, the
/// last good checkpoint survives, and resuming from it still converges
/// to the bit-identical summary.
#[test]
fn engine_survives_injected_checkpoint_write_failure() {
    let study = small_demand();
    let path = tmp("engine-write-failure");
    let _ = std::fs::remove_file(&path);
    let spec = CheckpointSpec::new(&path, 1);
    let failed = stream_demand_study_resumable(
        &study,
        cfg(2, BATCH),
        &StudyOptions {
            checkpoint: Some(spec.clone()),
            faults: FaultPlan {
                checkpoint_writes: vec![1], // second write attempt tears
                ..FaultPlan::default()
            },
            ..StudyOptions::default()
        },
        |_, _| {},
    );
    assert!(
        matches!(
            failed,
            Err(EngineError::Checkpoint(CheckpointError::WriteFailed(_)))
        ),
        "{failed:?}"
    );
    // The first write landed and is loadable: frontier 1.
    let snap = DemandSnapshot::load(&path, &demand_fingerprint(&study, BATCH)).expect("good");
    assert_eq!(snap.frontier, 1);

    let (resumed, _, _) = stream_demand_study_resumable(
        &study,
        cfg(2, BATCH),
        &StudyOptions {
            checkpoint: Some(spec),
            resume: true,
            ..StudyOptions::default()
        },
        |_, _| {},
    )
    .expect("resume completes");
    assert_eq!(demand_bits(&resumed), demand_bits(demand_reference()));
    let _ = std::fs::remove_file(&path);
}
