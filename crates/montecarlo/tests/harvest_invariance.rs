//! Thread-invariance pins for the streaming harvest and trial-sink paths:
//! the JSONL byte stream and the observed trial order must be identical
//! at 1, 2, and 8 worker threads.

use fairco2_montecarlo::engine::{EngineConfig, StudyOptions};
use fairco2_montecarlo::harvest::harvest_demand_study_jsonl;
use fairco2_montecarlo::schedules::DemandStudy;
use fairco2_montecarlo::ColocationStudy;
use fairco2_montecarlo::{stream_colocation_study_with_sink, stream_demand_study_with_sink};

fn small_demand() -> DemandStudy {
    DemandStudy {
        trials: 41,
        max_workloads: 8,
        ..DemandStudy::default()
    }
}

#[test]
fn harvest_jsonl_bytes_are_thread_invariant() {
    let study = small_demand();
    let mut baseline = Vec::new();
    harvest_demand_study_jsonl(&study, 1, 8, &mut baseline).expect("in-memory write");
    assert_eq!(
        baseline.iter().filter(|&&b| b == b'\n').count(),
        study.trials,
        "one JSONL line per trial"
    );
    for threads in [2usize, 8] {
        let mut buf = Vec::new();
        harvest_demand_study_jsonl(&study, threads, 8, &mut buf).expect("in-memory write");
        assert_eq!(buf, baseline, "harvest bytes differ at {threads} threads");
    }
}

#[test]
fn demand_sink_observes_trials_in_order_at_any_thread_count() {
    let study = small_demand();
    let observe = |threads: usize| {
        let mut seen: Vec<(usize, u64)> = Vec::new();
        let cfg = EngineConfig {
            threads,
            batch_trials: 8,
            collect_trials: false,
        };
        let (summary, _) = stream_demand_study_with_sink(
            &study,
            cfg,
            &StudyOptions::default(),
            |_, _| {},
            |trial| seen.push((trial.trial, trial.rup.average_pct.to_bits())),
        )
        .expect("clean run");
        (summary, seen)
    };
    let (base_summary, base_seen) = observe(1);
    assert_eq!(base_seen.len(), study.trials);
    assert!(base_seen.windows(2).all(|w| w[0].0 + 1 == w[1].0));
    for threads in [2usize, 8] {
        let (summary, seen) = observe(threads);
        assert_eq!(
            summary, base_summary,
            "summary differs at {threads} threads"
        );
        assert_eq!(seen, base_seen, "trial stream differs at {threads} threads");
    }
}

#[test]
fn colocation_sink_observes_trials_in_order_at_any_thread_count() {
    let study = ColocationStudy {
        trials: 17,
        max_workloads: 12,
        ..ColocationStudy::default()
    };
    let observe = |threads: usize| {
        let mut seen: Vec<usize> = Vec::new();
        let cfg = EngineConfig {
            threads,
            batch_trials: 4,
            collect_trials: false,
        };
        stream_colocation_study_with_sink(
            &study,
            cfg,
            &StudyOptions::default(),
            |_, _| {},
            |trial| seen.push(trial.trial),
        )
        .expect("clean run");
        seen
    };
    let base = observe(1);
    assert_eq!(base, (0..study.trials).collect::<Vec<_>>());
    for threads in [2usize, 8] {
        assert_eq!(observe(threads), base, "order differs at {threads} threads");
    }
}
