//! Fault-plan proptests for the study engine's containment layer.
//!
//! The contract: any [`FaultPlan`] whose failures stay within the retry
//! budget yields a summary bit-identical to a fault-free run, with the
//! retry/requeue counters accounting for every injected failure; a plan
//! that exceeds the budget surfaces [`EngineError::BatchAbandoned`] —
//! the run always terminates, never silently short.

use std::sync::OnceLock;

use fairco2_montecarlo::streaming::{ColocationStudySummary, DemandStudySummary};
use fairco2_montecarlo::{
    stream_colocation_study_resumable, stream_demand_study_resumable, BatchFault, ColocationStudy,
    DemandStudy, EngineConfig, EngineError, FaultKind, FaultPlan, StudyOptions, TrialFault,
};
use fairco2_shapley::parallel::panic_message;
use proptest::prelude::*;

const BATCH: usize = 4;
const THREAD_CHOICES: [usize; 3] = [1, 2, 8];
const KINDS: [FaultKind; 2] = [FaultKind::Panic, FaultKind::Error];

fn small_demand() -> DemandStudy {
    DemandStudy {
        trials: 33,
        max_workloads: 8,
        ..DemandStudy::default()
    }
}

fn cfg(threads: usize, batch_trials: usize) -> EngineConfig {
    EngineConfig {
        threads,
        batch_trials,
        collect_trials: false,
    }
}

/// Silences the default panic hook for the panics this suite injects on
/// purpose (the engine catches them; the hook would still print).
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !panic_message(info.payload()).contains("injected") {
                default(info);
            }
        }));
    });
}

fn demand_reference() -> &'static DemandStudySummary {
    static REF: OnceLock<DemandStudySummary> = OnceLock::new();
    REF.get_or_init(|| {
        let (summary, _, _) = stream_demand_study_resumable(
            &small_demand(),
            cfg(1, BATCH),
            &StudyOptions::default(),
            |_, _| {},
        )
        .expect("fault-free run");
        summary
    })
}

fn bits(s: &DemandStudySummary) -> String {
    serde_json::to_string(s).expect("summaries serialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A batch fault plus a trial fault (panic or error, possibly in the
    /// same batch), each firing up to twice under a retry budget of two:
    /// the study completes, the summary is bit-identical to the
    /// fault-free run, and the counters account for every failure.
    #[test]
    fn faults_under_budget_preserve_summary_bits(
        fault_batch in 0usize..9,
        batch_times in 1u32..=2,
        fault_trial in 0usize..33,
        trial_times in 1u32..=2,
        batch_kind in 0usize..2,
        trial_kind in 0usize..2,
        threads_sel in 0usize..3,
    ) {
        quiet_injected_panics();
        let study = small_demand();
        let threads = THREAD_CHOICES[threads_sel];
        let plan = FaultPlan {
            batches: vec![BatchFault {
                batch: fault_batch,
                kind: KINDS[batch_kind],
                times: batch_times,
            }],
            trials: vec![TrialFault {
                trial: fault_trial,
                kind: KINDS[trial_kind],
                times: trial_times,
            }],
            ..FaultPlan::default()
        };
        let opts = StudyOptions {
            retry_budget: 2,
            faults: plan,
            ..StudyOptions::default()
        };
        let (summary, _, stats) =
            stream_demand_study_resumable(&study, cfg(threads, BATCH), &opts, |_, _| {})
                .expect("faults stay under the retry budget");

        prop_assert_eq!(&summary, demand_reference());
        prop_assert_eq!(bits(&summary), bits(demand_reference()));

        // Both faults key off the batch's attempt number, so two faults
        // in the same batch overlap (an attempt fails if either fires)
        // while faults in different batches fail independently.
        let same_batch = fault_trial / BATCH == fault_batch;
        let expected_retries = if same_batch {
            batch_times.max(trial_times)
        } else {
            batch_times + trial_times
        } as u64;
        let expected_requeues = if same_batch { 1 } else { 2 };
        prop_assert_eq!(stats.retries, expected_retries);
        prop_assert_eq!(stats.requeued_batches, expected_requeues);
        prop_assert!(stats.retries > 0, "plan must exercise the retry path");
        prop_assert_eq!(stats.trials, study.trials as u64);
    }

    /// A fault that outlives the budget abandons its batch with the
    /// documented typed error — deterministically naming the batch and
    /// the attempt count — instead of hanging or under-reporting trials.
    #[test]
    fn faults_over_budget_abandon_the_batch(
        fault_batch in 0usize..9,
        kind in 0usize..2,
        threads_sel in 0usize..3,
    ) {
        quiet_injected_panics();
        let study = small_demand();
        let threads = THREAD_CHOICES[threads_sel];
        let opts = StudyOptions {
            retry_budget: 1,
            faults: FaultPlan {
                batches: vec![BatchFault {
                    batch: fault_batch,
                    kind: KINDS[kind],
                    times: 2, // budget + 1 failures
                }],
                ..FaultPlan::default()
            },
            ..StudyOptions::default()
        };
        let err = stream_demand_study_resumable(&study, cfg(threads, BATCH), &opts, |_, _| {})
            .expect_err("budget must be exceeded");
        match err {
            EngineError::BatchAbandoned {
                batch,
                attempts,
                last_error,
            } => {
                prop_assert_eq!(batch, fault_batch);
                prop_assert_eq!(attempts, 2);
                prop_assert!(last_error.contains("injected fault"), "{}", last_error);
            }
            other => prop_assert!(false, "unexpected error {other:?}"),
        }
    }
}

/// The colocation engine shares the containment path; one end-to-end
/// check that a panicking batch recovers bit-identically there too.
#[test]
fn colocation_faults_under_budget_preserve_summary_bits() {
    quiet_injected_panics();
    let study = ColocationStudy {
        trials: 21,
        max_workloads: 12,
        ..ColocationStudy::default()
    };
    let reference: ColocationStudySummary =
        stream_colocation_study_resumable(&study, cfg(1, 5), &StudyOptions::default(), |_, _| {})
            .expect("fault-free run")
            .0;
    for threads in THREAD_CHOICES {
        let opts = StudyOptions {
            retry_budget: 1,
            faults: FaultPlan {
                batches: vec![BatchFault {
                    batch: 1,
                    kind: FaultKind::Panic,
                    times: 1,
                }],
                ..FaultPlan::default()
            },
            ..StudyOptions::default()
        };
        let (summary, _, stats) =
            stream_colocation_study_resumable(&study, cfg(threads, 5), &opts, |_, _| {})
                .expect("within budget");
        assert_eq!(summary, reference, "threads = {threads}");
        assert_eq!(
            serde_json::to_string(&summary).unwrap(),
            serde_json::to_string(&reference).unwrap(),
            "threads = {threads}"
        );
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.requeued_batches, 1);
    }
}

/// Faults composed with checkpointing: a run that panics (within
/// budget), checkpoints, and is then killed still resumes to the
/// bit-identical summary, and the resumed totals keep the pre-kill
/// retry counts.
#[test]
fn faults_and_kill_compose_with_resume() {
    quiet_injected_panics();
    let study = small_demand();
    let dir = std::env::temp_dir().join("fairco2-checkpoint-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{}-faults-kill.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let spec = fairco2_montecarlo::CheckpointSpec::new(&path, 1);

    let killed = stream_demand_study_resumable(
        &study,
        cfg(2, BATCH),
        &StudyOptions {
            checkpoint: Some(spec.clone()),
            retry_budget: 2,
            faults: FaultPlan {
                batches: vec![BatchFault {
                    batch: 0,
                    kind: FaultKind::Panic,
                    times: 2,
                }],
                kill_after_writes: Some(3),
                ..FaultPlan::default()
            },
            ..StudyOptions::default()
        },
        |_, _| {},
    );
    assert!(
        matches!(killed, Err(EngineError::Killed { writes: 3 })),
        "{killed:?}"
    );

    let (resumed, _, stats) = stream_demand_study_resumable(
        &study,
        cfg(2, BATCH),
        &StudyOptions {
            checkpoint: Some(spec),
            resume: true,
            ..StudyOptions::default()
        },
        |_, _| {},
    )
    .expect("resume completes");
    assert_eq!(bits(&resumed), bits(demand_reference()));
    // Batch 0 merges first, so its two pre-kill retries are always in
    // the checkpointed stats the resumed run carries forward.
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.requeued_batches, 1);
    let _ = std::fs::remove_file(&path);
}
