//! Fault injection for LP-valued coalition work under
//! [`run_parallel_retrying`] — the coverage gap called out in PR 10.
//!
//! Earlier fault suites only exercised the study engines' containment
//! layer with cheap synthetic trial bodies. Here the work inside each
//! retried item is a batch of **real network-LP coalition solves**
//! ([`NetworkCarbonGame`]), and the contract under test is:
//!
//! * an LP solve that panics (or errors) mid-batch is caught, the batch
//!   is requeued, and the completed run's per-coalition values are
//!   **bit-identical** to a fault-free run at 1, 2, and 8 threads;
//! * the retry counters account for exactly the injected failures;
//! * a fault that outlives the retry budget surfaces the typed
//!   [`ItemAbandoned`] — never a hang, never a silently short lattice.
//!
//! Fault choreography reuses the [`FaultPlan`] machinery from the study
//! engines so the same plans drive both containment layers.

use std::sync::OnceLock;

use fairco2_montecarlo::{BatchFault, FaultKind, FaultPlan};
use fairco2_shapley::coalition::Coalition;
use fairco2_shapley::netgame::{Link, Network, NetworkCarbonGame};
use fairco2_shapley::parallel::{panic_message, run_parallel_retrying};
use proptest::prelude::*;

/// Tenants in the fixture game; the lattice has `1 << TENANTS` masks.
const TENANTS: usize = 8;
/// Coalition masks solved per retryable item.
const MASKS_PER_BATCH: usize = 16;
const BATCHES: usize = (1 << TENANTS) / MASKS_PER_BATCH;
const THREAD_CHOICES: [usize; 3] = [1, 2, 8];
const KINDS: [FaultKind; 2] = [FaultKind::Panic, FaultKind::Error];

/// A 5-node network (egress = 4) with contended bottleneck links and
/// integer capacities/prices — the exact-arithmetic regime in which
/// warm and cold LP solves are bit-identical.
fn fixture_game() -> &'static NetworkCarbonGame {
    static GAME: OnceLock<NetworkCarbonGame> = OnceLock::new();
    GAME.get_or_init(|| {
        let network = Network::new(
            5,
            4,
            vec![
                Link {
                    from: 0,
                    to: 2,
                    capacity: 9.0,
                    carbon_per_unit: 1.0,
                },
                Link {
                    from: 1,
                    to: 2,
                    capacity: 7.0,
                    carbon_per_unit: 2.0,
                },
                Link {
                    from: 0,
                    to: 3,
                    capacity: 5.0,
                    carbon_per_unit: 3.0,
                },
                Link {
                    from: 1,
                    to: 3,
                    capacity: 6.0,
                    carbon_per_unit: 1.0,
                },
                Link {
                    from: 2,
                    to: 4,
                    capacity: 11.0,
                    carbon_per_unit: 2.0,
                },
                Link {
                    from: 3,
                    to: 4,
                    capacity: 8.0,
                    carbon_per_unit: 1.0,
                },
                Link {
                    from: 2,
                    to: 3,
                    capacity: 4.0,
                    carbon_per_unit: 1.0,
                },
            ],
        );
        let demands = (0..TENANTS)
            .map(|t| {
                let at0 = ((t * 7 + 3) % 4) as f64;
                let at1 = ((t * 5 + 1) % 3) as f64;
                vec![at0, at1, 0.0, 0.0, 0.0]
            })
            .collect();
        NetworkCarbonGame::new(network, demands)
    })
}

/// Cold-solves one batch's slice of the coalition lattice.
fn solve_batch(game: &NetworkCarbonGame, batch: usize) -> Vec<f64> {
    let start = batch * MASKS_PER_BATCH;
    (start..start + MASKS_PER_BATCH)
        .map(|mask| {
            game.evaluate(&Coalition::from_mask(TENANTS, mask as u64))
                .carbon()
        })
        .collect()
}

/// Runs the whole lattice through [`run_parallel_retrying`] under
/// `plan`, firing faults *between LP solves inside* the designated
/// batch — after the first solve, so a failed attempt has already done
/// (and discards) real solver work.
fn run_lattice(
    plan: &FaultPlan,
    threads: usize,
    retry_budget: u32,
) -> Result<
    (Vec<f64>, fairco2_shapley::parallel::RetryCounters),
    fairco2_shapley::parallel::ItemAbandoned,
> {
    let game = fixture_game();
    let (batches, counters) =
        run_parallel_retrying(BATCHES, threads, retry_budget, |batch, attempt| {
            let start = batch * MASKS_PER_BATCH;
            let mut values = Vec::with_capacity(MASKS_PER_BATCH);
            for (k, mask) in (start..start + MASKS_PER_BATCH).enumerate() {
                if k == 1 {
                    if let Some(kind) = plan.batch_fault(batch, attempt) {
                        FaultPlan::fire(kind, &format!("lp solve in coalition batch {batch}"))
                            .map_err(|e| e.message().to_string())?;
                    }
                }
                values.push(
                    game.evaluate(&Coalition::from_mask(TENANTS, mask as u64))
                        .carbon(),
                );
            }
            Ok(values)
        })?;
    Ok((batches.into_iter().flatten().collect(), counters))
}

/// The fault-free lattice, solved serially once.
fn reference_lattice() -> &'static Vec<f64> {
    static REF: OnceLock<Vec<f64>> = OnceLock::new();
    REF.get_or_init(|| {
        let game = fixture_game();
        (0..BATCHES).flat_map(|b| solve_batch(game, b)).collect()
    })
}

/// Silences the default panic hook for the panics this suite injects on
/// purpose (the retry harness catches them; the hook would still print).
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !panic_message(info.payload()).contains("injected") {
                default(info);
            }
        }));
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// An LP solve that panics (or errors) inside a coalition batch, up
    /// to twice under a budget of two retries: the run completes, every
    /// coalition value is bit-identical to the fault-free lattice, and
    /// the counters account for exactly the injected failures.
    #[test]
    fn lp_batch_faults_under_budget_stay_bit_identical(
        fault_batch in 0usize..BATCHES,
        times in 1u32..=2,
        kind in 0usize..2,
        threads_sel in 0usize..3,
    ) {
        quiet_injected_panics();
        let plan = FaultPlan {
            batches: vec![BatchFault {
                batch: fault_batch,
                kind: KINDS[kind],
                times,
            }],
            ..FaultPlan::default()
        };
        let (values, counters) = run_lattice(&plan, THREAD_CHOICES[threads_sel], 2)
            .expect("faults stay under the retry budget");
        let want = reference_lattice();
        prop_assert_eq!(values.len(), want.len());
        for (mask, (got, expect)) in values.iter().zip(want).enumerate() {
            prop_assert_eq!(
                got.to_bits(),
                expect.to_bits(),
                "mask {:#b}: {} vs fault-free {}",
                mask,
                got,
                expect
            );
        }
        prop_assert_eq!(counters.retries, times as u64);
        prop_assert_eq!(counters.requeued_items, 1);
    }

    /// A fault that outlives the budget abandons its batch with the
    /// typed error naming the batch, the attempt count, and the
    /// injected message — instead of hanging or returning a short
    /// lattice.
    #[test]
    fn lp_batch_faults_over_budget_are_typed_abandonment(
        fault_batch in 0usize..BATCHES,
        kind in 0usize..2,
        threads_sel in 0usize..3,
    ) {
        quiet_injected_panics();
        let plan = FaultPlan {
            batches: vec![BatchFault {
                batch: fault_batch,
                kind: KINDS[kind],
                times: 3, // budget + 1 failures
            }],
            ..FaultPlan::default()
        };
        let err = run_lattice(&plan, THREAD_CHOICES[threads_sel], 2)
            .expect_err("budget must be exceeded");
        prop_assert_eq!(err.item, fault_batch);
        prop_assert_eq!(err.attempts, 3);
        prop_assert!(
            err.message.contains("injected fault"),
            "unexpected abandonment message: {}",
            err.message
        );
    }
}

/// Fault-free sanity at every thread count: the parallel harness itself
/// (chunked work stealing, no faults) must not perturb LP values.
#[test]
fn fault_free_lattice_is_bit_identical_across_thread_counts() {
    for threads in THREAD_CHOICES {
        let (values, counters) =
            run_lattice(&FaultPlan::default(), threads, 0).expect("fault-free run");
        assert_eq!(counters.retries, 0);
        assert_eq!(counters.requeued_items, 0);
        for (mask, (got, expect)) in values.iter().zip(reference_lattice()).enumerate() {
            assert_eq!(
                got.to_bits(),
                expect.to_bits(),
                "threads {threads}, mask {mask:#b}"
            );
        }
    }
}
