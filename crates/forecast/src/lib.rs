//! Demand forecasting: the Prophet substitute (paper Section 5.3).
//!
//! The paper uses Meta's Prophet to forecast aggregate data-center demand
//! from 21 days of history, then feeds the forecast into Temporal Shapley
//! to produce *live* embodied-carbon-intensity signals. Prophet is a
//! Python/Stan tool; on strongly periodic traces its essence is a linear
//! trend plus Fourier seasonality, which is exactly what
//! [`SeasonalForecaster`] fits — by ridge regression over
//! `[1, t, sin/cos(k·2πt/day), sin/cos(k·2πt/week)]` features, solved with
//! an in-repo Cholesky factorization ([`linalg`]).
//!
//! # Example
//!
//! ```
//! use fairco2_trace::AzureLikeTrace;
//! use fairco2_forecast::SeasonalForecaster;
//!
//! let trace = AzureLikeTrace::builder().days(30).seed(3).build();
//! let (train, test) = fairco2_forecast::split_at_day(trace.series(), 21)?;
//! let model = SeasonalForecaster::default_daily_weekly().fit(&train)?;
//! let forecast = model.predict(test.len());
//! let mape = fairco2_trace::stats::mape(test.values(), forecast.values()).unwrap();
//! assert!(mape < 10.0, "MAPE {mape}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linalg;
pub mod model;
pub mod ridge;

pub use model::{FittedForecaster, ForecastError, PredictScratch, SeasonalForecaster};
pub use ridge::{MultiRidge, RidgeTrainer};

use fairco2_trace::series::{SeriesError, TimeSeries};

/// Splits a series at the given day boundary into (history, holdout) —
/// the paper's 21-day-train / 9-day-test protocol.
///
/// # Errors
///
/// Returns a [`SeriesError`] if either side would be empty.
pub fn split_at_day(
    series: &TimeSeries,
    day: u32,
) -> Result<(TimeSeries, TimeSeries), SeriesError> {
    let boundary = series.start() + i64::from(day) * 86_400;
    let train = series.window(series.start(), boundary)?;
    let test = series.window(boundary, series.end())?;
    Ok((train, test))
}
