//! General-purpose multi-target ridge regression on arbitrary feature
//! vectors.
//!
//! This generalizes the normal-equations machinery the seasonal
//! forecaster uses for time-series features: a [`RidgeTrainer`]
//! accumulates the Gram matrix `XᵀX` and one right-hand side `Xᵀy` per
//! target as rows stream in, then [`RidgeTrainer::fit`] factors the
//! (shared, ridge-shifted) Gram **once** via Cholesky and back-solves all
//! targets against the same factor. Prediction through
//! [`MultiRidge::predict_into`] is a plain dot product per target with no
//! per-call allocation.
//!
//! Rank-deficient feature sets (duplicated or constant-zero columns) are
//! handled by the jitter escalation in
//! [`SymMatrix::cholesky_ridged`](crate::linalg::SymMatrix::cholesky_ridged):
//! fitting either succeeds with a minimally jittered Gram or fails with a
//! typed [`LinalgError`] — never a panic or NaN coefficients.

use serde::{Deserialize, Serialize};

use crate::linalg::{LinalgError, SymMatrix};

/// Streaming accumulator for multi-target ridge regression.
///
/// Feature index 0 is treated as the intercept when
/// [`RidgeTrainer::fit`] is called with `penalize_intercept = false`
/// (the usual case: callers push `1.0` as the first feature).
#[derive(Debug, Clone)]
pub struct RidgeTrainer {
    features: usize,
    targets: usize,
    xtx: SymMatrix,
    /// `targets × features`, row-major: `xty[t * features + i]`.
    xty: Vec<f64>,
    rows: usize,
}

impl RidgeTrainer {
    /// Empty accumulator for `features` inputs and `targets` outputs.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(features: usize, targets: usize) -> Self {
        assert!(features > 0, "at least one feature");
        assert!(targets > 0, "at least one target");
        Self {
            features,
            targets,
            xtx: SymMatrix::zeros(features),
            xty: vec![0.0; targets * features],
            rows: 0,
        }
    }

    /// Number of feature columns.
    pub fn feature_count(&self) -> usize {
        self.features
    }

    /// Number of targets fitted jointly.
    pub fn target_count(&self) -> usize {
        self.targets
    }

    /// Rows recorded so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Accumulates one training row.
    ///
    /// # Panics
    ///
    /// Panics if `features` or `targets` have the wrong length.
    pub fn record(&mut self, features: &[f64], targets: &[f64]) {
        assert_eq!(features.len(), self.features, "feature row length");
        assert_eq!(targets.len(), self.targets, "target row length");
        for i in 0..self.features {
            for (t, &y) in targets.iter().enumerate() {
                self.xty[t * self.features + i] += features[i] * y;
            }
            for j in 0..=i {
                self.xtx.add(i, j, features[i] * features[j]);
            }
        }
        self.rows += 1;
    }

    /// Solves the accumulated normal equations with ridge penalty
    /// `lambda` (scaled by the row count, matching the seasonal
    /// forecaster's convention), sharing one Cholesky factor across all
    /// targets.
    ///
    /// When `penalize_intercept` is false, feature 0 is exempt from the
    /// ridge shift.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::SingularDespiteJitter`] when the Gram
    /// matrix stays singular through every jitter escalation (e.g. more
    /// features than rows with `lambda = 0`).
    pub fn fit(&self, lambda: f64, penalize_intercept: bool) -> Result<MultiRidge, LinalgError> {
        let p = self.features;
        let mut gram = self.xtx.clone();
        let start = usize::from(!penalize_intercept);
        for i in start..p {
            gram.add(i, i, lambda * self.rows as f64);
        }
        let factor = gram.cholesky_ridged()?;
        let mut coef = vec![0.0; self.targets * p];
        for t in 0..self.targets {
            factor.solve_into(&self.xty[t * p..(t + 1) * p], &mut coef[t * p..(t + 1) * p])?;
        }
        Ok(MultiRidge {
            features: p,
            targets: self.targets,
            coef,
            jitter: factor.jitter(),
            rows: self.rows,
        })
    }
}

/// A fitted multi-target ridge model: one coefficient vector per target
/// over a shared feature basis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiRidge {
    features: usize,
    targets: usize,
    /// `targets × features`, row-major.
    coef: Vec<f64>,
    jitter: f64,
    rows: usize,
}

impl MultiRidge {
    /// Number of feature columns.
    pub fn feature_count(&self) -> usize {
        self.features
    }

    /// Number of targets.
    pub fn target_count(&self) -> usize {
        self.targets
    }

    /// Rows the model was fitted on.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Diagonal jitter the fit needed (0.0 for a well-conditioned Gram).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Coefficient vector for one target.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn coefficients(&self, target: usize) -> &[f64] {
        assert!(target < self.targets, "target index");
        &self.coef[target * self.features..(target + 1) * self.features]
    }

    /// Predicts all targets for one feature row into `out`, without
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if `features` or `out` have the wrong length.
    pub fn predict_into(&self, features: &[f64], out: &mut [f64]) {
        assert_eq!(features.len(), self.features, "feature row length");
        assert_eq!(out.len(), self.targets, "output length");
        for (t, slot) in out.iter_mut().enumerate() {
            let coef = &self.coef[t * self.features..(t + 1) * self.features];
            let mut acc = 0.0;
            for (x, c) in features.iter().zip(coef) {
                acc += x * c;
            }
            *slot = acc;
        }
    }

    /// Predicts a single target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong length or `target` is out of
    /// range.
    pub fn predict_one(&self, features: &[f64], target: usize) -> f64 {
        assert_eq!(features.len(), self.features, "feature row length");
        let coef = self.coefficients(target);
        features.iter().zip(coef).map(|(x, c)| x * c).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feature_row(i: usize) -> [f64; 3] {
        let x = i as f64 / 7.0;
        [1.0, x, (x * 1.7 - 0.3).sin()]
    }

    #[test]
    fn recovers_known_linear_maps_per_target() {
        // Two targets, each an exact linear function of the features.
        let mut trainer = RidgeTrainer::new(3, 2);
        for i in 0..40 {
            let f = feature_row(i);
            let y0 = 2.0 * f[0] - 1.0 * f[1] + 0.5 * f[2];
            let y1 = -3.0 * f[0] + 4.0 * f[1] + 0.0 * f[2];
            trainer.record(&f, &[y0, y1]);
        }
        let model = trainer.fit(0.0, false).unwrap();
        let want = [[2.0, -1.0, 0.5], [-3.0, 4.0, 0.0]];
        for (t, row) in want.iter().enumerate() {
            for (c, w) in model.coefficients(t).iter().zip(row) {
                assert!((c - w).abs() < 1e-8, "target {t}: {c} vs {w}");
            }
        }
        let mut out = [0.0; 2];
        let probe = feature_row(100);
        model.predict_into(&probe, &mut out);
        assert!((out[0] - (2.0 * probe[0] - probe[1] + 0.5 * probe[2])).abs() < 1e-8);
        assert_eq!(out[1], model.predict_one(&probe, 1));
    }

    #[test]
    fn multi_target_fit_matches_independent_single_target_fits() {
        let mut joint = RidgeTrainer::new(3, 2);
        let mut solo0 = RidgeTrainer::new(3, 1);
        let mut solo1 = RidgeTrainer::new(3, 1);
        for i in 0..25 {
            let f = feature_row(i);
            let y = [f[1] * 3.0 + 1.0, f[2] * f[2]];
            joint.record(&f, &y);
            solo0.record(&f, &y[..1]);
            solo1.record(&f, &y[1..]);
        }
        let joint = joint.fit(1e-4, false).unwrap();
        let solo0 = solo0.fit(1e-4, false).unwrap();
        let solo1 = solo1.fit(1e-4, false).unwrap();
        for (a, b) in joint.coefficients(0).iter().zip(solo0.coefficients(0)) {
            assert_eq!(a.to_bits(), b.to_bits(), "target 0 shared-Gram solve");
        }
        for (a, b) in joint.coefficients(1).iter().zip(solo1.coefficients(0)) {
            assert_eq!(a.to_bits(), b.to_bits(), "target 1 shared-Gram solve");
        }
    }

    #[test]
    fn duplicated_column_is_rescued_or_typed_error() {
        // Feature 2 duplicates feature 1 → Gram is exactly singular at
        // lambda = 0; the ridged factorization must rescue it (or report
        // a typed error), never panic or emit NaN.
        let mut trainer = RidgeTrainer::new(3, 1);
        for i in 0..20 {
            let x = i as f64;
            trainer.record(&[1.0, x, x], &[2.0 * x + 1.0]);
        }
        match trainer.fit(0.0, false) {
            Ok(model) => {
                assert!(model.jitter() > 0.0, "singular Gram must need jitter");
                assert!(model.coefficients(0).iter().all(|c| c.is_finite()));
                // The duplicated columns must still jointly predict y.
                let got = model.predict_one(&[1.0, 5.0, 5.0], 0);
                assert!((got - 11.0).abs() < 1e-3, "prediction {got}");
            }
            Err(e) => assert!(matches!(e, LinalgError::SingularDespiteJitter { .. })),
        }
    }

    #[test]
    fn intercept_exemption_changes_only_the_intercept_penalty() {
        let mut trainer = RidgeTrainer::new(2, 1);
        for i in 0..10 {
            trainer.record(&[1.0, i as f64], &[100.0 + i as f64]);
        }
        let free = trainer.fit(10.0, false).unwrap();
        let penalized = trainer.fit(10.0, true).unwrap();
        // A penalized intercept shrinks toward zero.
        assert!(penalized.coefficients(0)[0].abs() < free.coefficients(0)[0].abs());
    }
}
