//! Minimal dense linear algebra: symmetric positive-definite solves via
//! Cholesky factorization, enough for ridge-regression normal equations.

use std::fmt;

/// Error from a linear solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix was not positive definite (or numerically singular).
    NotPositiveDefinite {
        /// Pivot index where factorization failed.
        pivot: usize,
    },
    /// Dimensions of the inputs disagree.
    DimensionMismatch,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense symmetric matrix stored as the lower triangle, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>, // lower triangle: row i holds i+1 entries
}

impl SymMatrix {
    /// Zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * (n + 1) / 2],
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(j <= i && i < self.n);
        i * (i + 1) / 2 + j
    }

    /// Entry `(i, j)`; symmetric access.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        self.data[self.idx(i, j)]
    }

    /// Adds `v` to entry `(i, j)` (and by symmetry `(j, i)`).
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        let k = self.idx(i, j);
        self.data[k] += v;
    }

    /// Solves `A·x = b` in place via Cholesky (`A = L·Lᵀ`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if a pivot is not
    /// strictly positive, or [`LinalgError::DimensionMismatch`] if `b` has
    /// the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = self.n;
        // Factor into L (lower triangle).
        let mut l = vec![0.0f64; self.data.len()];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l[i * (i + 1) / 2 + k] * l[j * (j + 1) / 2 + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[i * (i + 1) / 2 + j] = sum.sqrt();
                } else {
                    l[i * (i + 1) / 2 + j] = sum / l[j * (j + 1) / 2 + j];
                }
            }
        }
        // Forward substitution: L·y = b.
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[i * (i + 1) / 2 + k] * y[k];
            }
            y[i] = sum / l[i * (i + 1) / 2 + i];
        }
        // Back substitution: Lᵀ·x = y.
        let mut x = vec![0.0f64; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[k * (k + 1) / 2 + i] * x[k];
            }
            x[i] = sum / l[i * (i + 1) / 2 + i];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_a_known_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 8] → x = [1.75, 1.5].
        let mut a = SymMatrix::zeros(2);
        a.add(0, 0, 4.0);
        a.add(1, 0, 2.0);
        a.add(1, 1, 3.0);
        let x = a.solve(&[10.0, 8.0]).unwrap();
        assert!((x[0] - 1.75).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn symmetric_access() {
        let mut a = SymMatrix::zeros(3);
        a.add(2, 0, 5.0);
        assert_eq!(a.get(0, 2), 5.0);
        assert_eq!(a.get(2, 0), 5.0);
        assert_eq!(a.dim(), 3);
    }

    #[test]
    fn rejects_indefinite_matrices() {
        let mut a = SymMatrix::zeros(2);
        a.add(0, 0, 1.0);
        a.add(1, 0, 2.0);
        a.add(1, 1, 1.0); // eigenvalues −1 and 3
        assert_eq!(
            a.solve(&[1.0, 1.0]),
            Err(LinalgError::NotPositiveDefinite { pivot: 1 })
        );
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let a = SymMatrix::zeros(2);
        assert_eq!(a.solve(&[1.0]), Err(LinalgError::DimensionMismatch));
    }

    #[test]
    fn random_spd_round_trip() {
        // Build A = Bᵀ·B + I for a fixed B and verify A·x ≈ b.
        let n = 6;
        let b_mat: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| ((i * 7 + j * 13) % 11) as f64 / 11.0)
                    .collect()
            })
            .collect();
        let mut a = SymMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut dot = if i == j { 1.0 } else { 0.0 };
                for row in &b_mat {
                    dot += row[i] * row[j];
                }
                a.add(i, j, dot);
            }
        }
        let rhs: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = a.solve(&rhs).unwrap();
        for (i, want) in rhs.iter().enumerate() {
            let ax: f64 = x.iter().enumerate().map(|(j, xj)| a.get(i, j) * xj).sum();
            assert!((ax - want).abs() < 1e-9, "row {i}: {ax} vs {want}");
        }
    }
}
