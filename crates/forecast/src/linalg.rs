//! Minimal dense linear algebra: symmetric positive-definite solves via
//! Cholesky factorization, enough for ridge-regression normal equations.
//!
//! The factorization is split from the substitution so callers solving
//! many right-hand sides against one Gram matrix (multi-target ridge)
//! factor once and reuse the triangle: [`SymMatrix::cholesky`] produces a
//! [`CholeskyFactor`] whose [`CholeskyFactor::solve_into`] is
//! allocation-free. Near-singular Gram matrices (rank-deficient feature
//! sets) are handled by [`SymMatrix::cholesky_ridged`], which escalates a
//! diagonal jitter geometrically and returns a typed
//! [`LinalgError::SingularDespiteJitter`] instead of panicking or
//! producing NaN when even the largest jitter fails.

use std::fmt;

/// Error from a linear solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The matrix was not positive definite (or numerically singular).
    NotPositiveDefinite {
        /// Pivot index where factorization failed.
        pivot: usize,
    },
    /// Dimensions of the inputs disagree.
    DimensionMismatch,
    /// The matrix stayed numerically singular through every jitter
    /// escalation attempt (see [`SymMatrix::cholesky_ridged`]).
    SingularDespiteJitter {
        /// Pivot index where the final attempt failed.
        pivot: usize,
        /// Number of factorization attempts made (including the
        /// unjittered one).
        attempts: usize,
        /// Largest diagonal jitter tried.
        max_jitter: f64,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
            LinalgError::SingularDespiteJitter {
                pivot,
                attempts,
                max_jitter,
            } => write!(
                f,
                "matrix stayed singular after {attempts} jitter attempts \
                 (pivot {pivot}, max jitter {max_jitter:e})"
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Number of geometric jitter escalations tried by
/// [`SymMatrix::cholesky_ridged`] after the unjittered attempt.
pub const JITTER_ATTEMPTS: usize = 8;

/// A dense symmetric matrix stored as the lower triangle, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>, // lower triangle: row i holds i+1 entries
}

impl SymMatrix {
    /// Zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * (n + 1) / 2],
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(j <= i && i < self.n);
        i * (i + 1) / 2 + j
    }

    /// Entry `(i, j)`; symmetric access.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        self.data[self.idx(i, j)]
    }

    /// Adds `v` to entry `(i, j)` (and by symmetry `(j, i)`).
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        let k = self.idx(i, j);
        self.data[k] += v;
    }

    /// Mean of the diagonal; the natural scale for diagonal jitter.
    fn diagonal_mean(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..self.n {
            sum += self.data[self.idx(i, i)];
        }
        sum / self.n as f64
    }

    /// Cholesky factorization `A = L·Lᵀ` with an extra `jitter` added to
    /// each diagonal entry during factorization (the matrix itself is not
    /// modified).
    fn cholesky_with_jitter(&self, jitter: f64) -> Result<CholeskyFactor, LinalgError> {
        let n = self.n;
        let mut l = vec![0.0f64; self.data.len()];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[i * (i + 1) / 2 + k] * l[j * (j + 1) / 2 + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[i * (i + 1) / 2 + j] = sum.sqrt();
                } else {
                    l[i * (i + 1) / 2 + j] = sum / l[j * (j + 1) / 2 + j];
                }
            }
        }
        Ok(CholeskyFactor { n, l, jitter })
    }

    /// Cholesky factorization `A = L·Lᵀ`.
    ///
    /// Factor once, then solve any number of right-hand sides with
    /// [`CholeskyFactor::solve_into`] — the factorization is `O(n³)`, each
    /// solve `O(n²)` and allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if a pivot is not
    /// strictly positive.
    pub fn cholesky(&self) -> Result<CholeskyFactor, LinalgError> {
        self.cholesky_with_jitter(0.0)
    }

    /// Cholesky factorization hardened for near-singular Gram matrices.
    ///
    /// Tries the plain factorization first; on failure, retries with a
    /// diagonal jitter starting at `diag_mean · 1e-12` and escalating
    /// ×100 per attempt ([`JITTER_ATTEMPTS`] escalations, up to
    /// `diag_mean · 10⁴`). Rank-deficient feature sets (duplicated or
    /// constant-zero columns) factor on an early attempt with a jitter far
    /// below the data scale; a matrix that survives every escalation is
    /// reported as [`LinalgError::SingularDespiteJitter`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::SingularDespiteJitter`] when every attempt
    /// fails.
    pub fn cholesky_ridged(&self) -> Result<CholeskyFactor, LinalgError> {
        match self.cholesky_with_jitter(0.0) {
            Ok(f) => return Ok(f),
            Err(LinalgError::NotPositiveDefinite { .. }) => {}
            Err(e) => return Err(e),
        }
        // Scale jitter to the matrix: a Gram matrix built from k rows of
        // O(1) features has O(k) diagonal entries, so an absolute epsilon
        // would be meaningless.
        let scale = self.diagonal_mean().abs().max(f64::MIN_POSITIVE);
        let mut jitter = scale * 1e-12;
        let mut last_pivot = 0;
        for attempt in 0..JITTER_ATTEMPTS {
            match self.cholesky_with_jitter(jitter) {
                Ok(f) => return Ok(f),
                Err(LinalgError::NotPositiveDefinite { pivot }) => last_pivot = pivot,
                Err(e) => return Err(e),
            }
            if attempt + 1 < JITTER_ATTEMPTS {
                jitter *= 100.0;
            }
        }
        Err(LinalgError::SingularDespiteJitter {
            pivot: last_pivot,
            attempts: 1 + JITTER_ATTEMPTS,
            max_jitter: jitter,
        })
    }

    /// Solves `A·x = b` via Cholesky (`A = L·Lᵀ`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if a pivot is not
    /// strictly positive, or [`LinalgError::DimensionMismatch`] if `b` has
    /// the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch);
        }
        let factor = self.cholesky()?;
        let mut x = vec![0.0f64; self.n];
        factor.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// [`SymMatrix::solve`] hardened via [`SymMatrix::cholesky_ridged`]:
    /// never panics and never returns NaN on rank-deficient inputs —
    /// either a finite solution of the (minimally jittered) system or a
    /// typed error.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::SingularDespiteJitter`] when the matrix
    /// stays singular through every jitter escalation, or
    /// [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve_ridged(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch);
        }
        let factor = self.cholesky_ridged()?;
        let mut x = vec![0.0f64; self.n];
        factor.solve_into(b, &mut x)?;
        Ok(x)
    }
}

/// A Cholesky factor `L` of a symmetric positive-definite matrix,
/// produced by [`SymMatrix::cholesky`] / [`SymMatrix::cholesky_ridged`].
#[derive(Debug, Clone, PartialEq)]
pub struct CholeskyFactor {
    n: usize,
    l: Vec<f64>, // lower triangle, same layout as SymMatrix
    jitter: f64,
}

impl CholeskyFactor {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Diagonal jitter that was added to make the factorization succeed
    /// (0.0 for a plain [`SymMatrix::cholesky`]).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Solves `L·Lᵀ·x = b` into `out` without allocating; the forward
    /// substitution reuses `out` as its scratch, so no intermediate
    /// buffer is needed.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` or `out` has the
    /// wrong length.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        if b.len() != self.n || out.len() != self.n {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = self.n;
        let l = &self.l;
        // Forward substitution: L·y = b, y written into `out`.
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[i * (i + 1) / 2 + k] * out[k];
            }
            out[i] = sum / l[i * (i + 1) / 2 + i];
        }
        // Back substitution in place: Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut sum = out[i];
            for k in (i + 1)..n {
                sum -= l[k * (k + 1) / 2 + i] * out[k];
            }
            out[i] = sum / l[i * (i + 1) / 2 + i];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_a_known_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 8] → x = [1.75, 1.5].
        let mut a = SymMatrix::zeros(2);
        a.add(0, 0, 4.0);
        a.add(1, 0, 2.0);
        a.add(1, 1, 3.0);
        let x = a.solve(&[10.0, 8.0]).unwrap();
        assert!((x[0] - 1.75).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn symmetric_access() {
        let mut a = SymMatrix::zeros(3);
        a.add(2, 0, 5.0);
        assert_eq!(a.get(0, 2), 5.0);
        assert_eq!(a.get(2, 0), 5.0);
        assert_eq!(a.dim(), 3);
    }

    #[test]
    fn rejects_indefinite_matrices() {
        let mut a = SymMatrix::zeros(2);
        a.add(0, 0, 1.0);
        a.add(1, 0, 2.0);
        a.add(1, 1, 1.0); // eigenvalues −1 and 3
        assert_eq!(
            a.solve(&[1.0, 1.0]),
            Err(LinalgError::NotPositiveDefinite { pivot: 1 })
        );
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let a = SymMatrix::zeros(2);
        assert_eq!(a.solve(&[1.0]), Err(LinalgError::DimensionMismatch));
    }

    #[test]
    fn random_spd_round_trip() {
        // Build A = Bᵀ·B + I for a fixed B and verify A·x ≈ b.
        let n = 6;
        let b_mat: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| ((i * 7 + j * 13) % 11) as f64 / 11.0)
                    .collect()
            })
            .collect();
        let mut a = SymMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut dot = if i == j { 1.0 } else { 0.0 };
                for row in &b_mat {
                    dot += row[i] * row[j];
                }
                a.add(i, j, dot);
            }
        }
        let rhs: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = a.solve(&rhs).unwrap();
        for (i, want) in rhs.iter().enumerate() {
            let ax: f64 = x.iter().enumerate().map(|(j, xj)| a.get(i, j) * xj).sum();
            assert!((ax - want).abs() < 1e-9, "row {i}: {ax} vs {want}");
        }
    }

    #[test]
    fn factor_once_solve_many_matches_solve() {
        let mut a = SymMatrix::zeros(3);
        a.add(0, 0, 4.0);
        a.add(1, 0, 1.0);
        a.add(1, 1, 5.0);
        a.add(2, 0, 0.5);
        a.add(2, 1, 2.0);
        a.add(2, 2, 6.0);
        let factor = a.cholesky().unwrap();
        let mut out = vec![0.0; 3];
        for rhs in [[1.0, 2.0, 3.0], [0.0, -4.0, 9.0], [7.0, 7.0, 7.0]] {
            factor.solve_into(&rhs, &mut out).unwrap();
            let direct = a.solve(&rhs).unwrap();
            for (x, y) in out.iter().zip(&direct) {
                assert_eq!(x.to_bits(), y.to_bits(), "factored vs direct solve");
            }
        }
    }

    #[test]
    fn rank_deficient_gram_is_rescued_by_jitter() {
        // Gram of a design whose second feature duplicates the intercept
        // column: the pivot cancels exactly, so the plain factorization
        // must fail and the ridged one must rescue it.
        // Four rows make the cancellation exact in floating point:
        // the leading pivot is sqrt(4) = 2, so 4 − (4/2)² = 0 exactly.
        let rows = [
            [1.0, 1.0, 2.0],
            [1.0, 1.0, 3.0],
            [1.0, 1.0, 5.0],
            [1.0, 1.0, 6.0],
        ];
        let mut a = SymMatrix::zeros(3);
        for row in &rows {
            for i in 0..3 {
                for j in 0..=i {
                    a.add(i, j, row[i] * row[j]);
                }
            }
        }
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let factor = a.cholesky_ridged().unwrap();
        assert!(factor.jitter() > 0.0);
        let x = a.solve_ridged(&[1.0, 2.0, 3.0]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn hopeless_matrix_reports_singular_despite_jitter() {
        // Off-diagonal dominance far beyond the diagonal scale: making
        // this positive definite would need a jitter ~1e6, but the
        // escalation is capped relative to the (tiny) mean diagonal.
        let mut a = SymMatrix::zeros(2);
        a.add(0, 0, 1.0);
        a.add(1, 0, 1e6);
        a.add(1, 1, 1.0);
        match a.cholesky_ridged() {
            Err(LinalgError::SingularDespiteJitter {
                pivot, attempts, ..
            }) => {
                assert_eq!(pivot, 1);
                assert_eq!(attempts, 1 + JITTER_ATTEMPTS);
            }
            other => panic!("expected SingularDespiteJitter, got {other:?}"),
        }
    }
}
