//! The trend + Fourier-seasonality forecaster.

use std::fmt;

use serde::{Deserialize, Serialize};

use fairco2_trace::series::TimeSeries;

use crate::linalg::LinalgError;
use crate::ridge::RidgeTrainer;

const SECS_PER_DAY: f64 = 86_400.0;
const SECS_PER_WEEK: f64 = 7.0 * 86_400.0;

/// Error from fitting a forecaster.
#[derive(Debug, Clone, PartialEq)]
pub enum ForecastError {
    /// The training series has fewer samples than model features.
    TooFewSamples {
        /// Training samples available.
        samples: usize,
        /// Features the model needs.
        features: usize,
    },
    /// The normal equations could not be solved.
    Solve(LinalgError),
}

impl fmt::Display for ForecastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForecastError::TooFewSamples { samples, features } => write!(
                f,
                "{samples} training samples cannot identify {features} features"
            ),
            ForecastError::Solve(e) => write!(f, "normal equations failed: {e}"),
        }
    }
}

impl std::error::Error for ForecastError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ForecastError::Solve(e) => Some(e),
            ForecastError::TooFewSamples { .. } => None,
        }
    }
}

impl From<LinalgError> for ForecastError {
    fn from(e: LinalgError) -> Self {
        ForecastError::Solve(e)
    }
}

/// Forecaster configuration: harmonics per seasonal period and ridge
/// regularization strength (Prophet's `seasonality` hyper-parameters,
/// reduced to their linear-model core).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeasonalForecaster {
    /// Number of daily Fourier harmonics.
    pub daily_harmonics: usize,
    /// Number of weekly Fourier harmonics.
    pub weekly_harmonics: usize,
    /// Ridge penalty λ (on all non-intercept coefficients).
    pub ridge_lambda: f64,
    /// Whether to include a linear trend term.
    pub with_trend: bool,
    /// Whether to fit in log space (multiplicative seasonality, as in
    /// Prophet's `seasonality_mode="multiplicative"`). Data-center demand
    /// is a product of diurnal, weekly, and trend factors, so this is the
    /// right default; requires strictly positive samples.
    pub multiplicative: bool,
}

impl SeasonalForecaster {
    /// The configuration used throughout the reproduction: 6 daily and 5
    /// weekly harmonics, multiplicative seasonality, light
    /// regularization — enough to capture the diurnal shape and
    /// square-wave weekend dips of the Azure-like trace.
    pub fn default_daily_weekly() -> Self {
        Self {
            daily_harmonics: 6,
            weekly_harmonics: 5,
            ridge_lambda: 1e-6,
            with_trend: true,
            multiplicative: true,
        }
    }

    /// Number of regression features.
    pub fn feature_count(&self) -> usize {
        1 + usize::from(self.with_trend) + 2 * (self.daily_harmonics + self.weekly_harmonics)
    }

    fn features(&self, t_seconds: f64, t_norm: f64, out: &mut Vec<f64>) {
        out.clear();
        out.push(1.0);
        if self.with_trend {
            out.push(t_norm);
        }
        for k in 1..=self.daily_harmonics {
            let w = 2.0 * std::f64::consts::PI * k as f64 * t_seconds / SECS_PER_DAY;
            out.push(w.sin());
            out.push(w.cos());
        }
        for k in 1..=self.weekly_harmonics {
            let w = 2.0 * std::f64::consts::PI * k as f64 * t_seconds / SECS_PER_WEEK;
            out.push(w.sin());
            out.push(w.cos());
        }
    }

    /// Fits the model to a demand series by ridge-regularized least
    /// squares.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::TooFewSamples`] when the series is shorter
    /// than the feature count, or [`ForecastError::Solve`] when the normal
    /// equations are singular (e.g. a zero-variance series with trend and
    /// λ = 0).
    pub fn fit(&self, series: &TimeSeries) -> Result<FittedForecaster, ForecastError> {
        let p = self.feature_count();
        if series.len() < p {
            return Err(ForecastError::TooFewSamples {
                samples: series.len(),
                features: p,
            });
        }
        let t_scale = series.duration();
        // Multiplicative mode fits ln(y); floor keeps occasional zero
        // samples finite without distorting the fit.
        let floor = (series.mean() * 1e-6).max(f64::MIN_POSITIVE);
        let target = |y: f64| {
            if self.multiplicative {
                y.max(floor).ln()
            } else {
                y
            }
        };
        let mut trainer = RidgeTrainer::new(p, 1);
        let mut row = Vec::with_capacity(p);
        for (t, y) in series.iter() {
            let rel = (t - series.start()) as f64;
            self.features(rel, rel / t_scale, &mut row);
            trainer.record(&row, &[target(y)]);
        }
        // Ridge on everything but the intercept; the trainer's jitter
        // escalation keeps pathological inputs (e.g. zero-variance
        // series at λ = 0) solvable without an ad-hoc intercept epsilon.
        let model = trainer.fit(self.ridge_lambda, false)?;
        let coefficients = model.coefficients(0).to_vec();
        Ok(FittedForecaster {
            config: *self,
            coefficients,
            train_start: series.start(),
            train_t_scale: t_scale,
            step: series.step(),
            train_end: series.end(),
        })
    }
}

/// A fitted forecaster, ready to extrapolate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FittedForecaster {
    config: SeasonalForecaster,
    coefficients: Vec<f64>,
    train_start: i64,
    train_t_scale: f64,
    step: u32,
    train_end: i64,
}

/// Reusable feature-row scratch for [`FittedForecaster::predict_at_with`]
/// and the batched [`FittedForecaster::predict_into`]: one allocation
/// serves an entire forecast instead of one per predicted sample.
#[derive(Debug, Default, Clone)]
pub struct PredictScratch {
    row: Vec<f64>,
}

impl PredictScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FittedForecaster {
    /// The fitted regression coefficients (intercept first).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Model prediction at an arbitrary timestamp.
    pub fn predict_at(&self, t: i64) -> f64 {
        let mut scratch = PredictScratch::new();
        self.predict_at_with(t, &mut scratch)
    }

    /// [`FittedForecaster::predict_at`] with a caller-owned scratch:
    /// bit-identical output, no per-call allocation once the scratch has
    /// warmed up.
    pub fn predict_at_with(&self, t: i64, scratch: &mut PredictScratch) -> f64 {
        let rel = (t - self.train_start) as f64;
        self.config
            .features(rel, rel / self.train_t_scale, &mut scratch.row);
        let raw: f64 = scratch
            .row
            .iter()
            .zip(&self.coefficients)
            .map(|(x, c)| x * c)
            .sum();
        if self.config.multiplicative {
            raw.exp()
        } else {
            raw.max(0.0) // demand cannot go negative
        }
    }

    /// Batched prediction on the training grid: `count` samples starting
    /// at timestamp `start`, appended to `out` (which is cleared first).
    /// Feature computation reuses one scratch row across the whole batch.
    pub fn predict_into(&self, start: i64, count: usize, out: &mut Vec<f64>) {
        let mut scratch = PredictScratch::new();
        out.clear();
        out.reserve(count);
        for k in 0..count {
            let t = start + k as i64 * i64::from(self.step);
            out.push(self.predict_at_with(t, &mut scratch));
        }
    }

    /// Forecasts `horizon` samples beyond the end of the training window,
    /// on the training grid.
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0` — there is nothing to forecast.
    pub fn predict(&self, horizon: usize) -> TimeSeries {
        assert!(horizon > 0, "forecast horizon must be positive");
        let mut scratch = PredictScratch::new();
        TimeSeries::from_fn(self.train_end, self.step, horizon, |t| {
            self.predict_at_with(t, &mut scratch)
        })
        .expect("horizon > 0")
    }

    /// In-sample fitted values over the training window.
    pub fn fitted(&self) -> TimeSeries {
        let len = ((self.train_end - self.train_start) / i64::from(self.step)) as usize;
        let mut scratch = PredictScratch::new();
        TimeSeries::from_fn(self.train_start, self.step, len, |t| {
            self.predict_at_with(t, &mut scratch)
        })
        .expect("training window is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairco2_trace::stats::mape;
    use fairco2_trace::AzureLikeTrace;

    #[test]
    fn recovers_a_pure_seasonal_signal() {
        let series = TimeSeries::from_fn(0, 3600, 24 * 21, |t| {
            100.0 + 20.0 * (2.0 * std::f64::consts::PI * t as f64 / SECS_PER_DAY).sin()
        })
        .unwrap();
        let model = SeasonalForecaster {
            daily_harmonics: 2,
            weekly_harmonics: 0,
            ridge_lambda: 0.0,
            with_trend: false,
            multiplicative: false,
        }
        .fit(&series)
        .unwrap();
        let forecast = model.predict(48);
        for (t, v) in forecast.iter() {
            let truth = 100.0 + 20.0 * (2.0 * std::f64::consts::PI * t as f64 / SECS_PER_DAY).sin();
            assert!((v - truth).abs() < 1e-6, "t={t}: {v} vs {truth}");
        }
    }

    #[test]
    fn recovers_trend_plus_seasonality() {
        let series = TimeSeries::from_fn(0, 3600, 24 * 21, |t| {
            100.0 + t as f64 / 86_400.0 // +1 per day
                + 10.0 * (2.0 * std::f64::consts::PI * t as f64 / SECS_PER_DAY).cos()
        })
        .unwrap();
        let model = SeasonalForecaster::default_daily_weekly()
            .fit(&series)
            .unwrap();
        let forecast = model.predict(24 * 2);
        let truth: Vec<f64> = forecast
            .iter()
            .map(|(t, _)| {
                100.0
                    + t as f64 / 86_400.0
                    + 10.0 * (2.0 * std::f64::consts::PI * t as f64 / SECS_PER_DAY).cos()
            })
            .collect();
        let err = mape(&truth, forecast.values()).unwrap();
        assert!(err < 2.0, "MAPE {err}");
    }

    #[test]
    fn azure_like_21_train_9_test_is_accurate() {
        // The paper's protocol: 21 days history, 9 days forecast.
        let trace = AzureLikeTrace::builder().days(30).seed(17).build();
        let (train, test) = crate::split_at_day(trace.series(), 21).unwrap();
        let model = SeasonalForecaster::default_daily_weekly()
            .fit(&train)
            .unwrap();
        let forecast = model.predict(test.len());
        let err = mape(test.values(), forecast.values()).unwrap();
        assert!(err < 8.0, "MAPE {err}%");
        assert_eq!(forecast.start(), test.start());
        assert_eq!(forecast.len(), test.len());
    }

    #[test]
    fn too_short_series_is_rejected() {
        let series = TimeSeries::constant(0, 3600, 5, 1.0).unwrap();
        let err = SeasonalForecaster::default_daily_weekly().fit(&series);
        assert!(matches!(err, Err(ForecastError::TooFewSamples { .. })));
    }

    #[test]
    fn predictions_are_clamped_non_negative() {
        // Steeply falling trend would extrapolate below zero.
        let series =
            TimeSeries::from_fn(0, 3600, 24 * 14, |t| (1000.0 - t as f64 / 1800.0).max(0.0))
                .unwrap();
        let model = SeasonalForecaster {
            daily_harmonics: 0,
            weekly_harmonics: 0,
            ridge_lambda: 0.0,
            with_trend: true,
            multiplicative: false,
        }
        .fit(&series)
        .unwrap();
        let forecast = model.predict(24 * 30);
        assert!(forecast.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn fitted_values_cover_training_window() {
        let trace = AzureLikeTrace::builder().days(7).seed(2).build();
        let model = SeasonalForecaster::default_daily_weekly()
            .fit(trace.series())
            .unwrap();
        let fitted = model.fitted();
        assert_eq!(fitted.len(), trace.series().len());
        let err = mape(trace.series().values(), fitted.values()).unwrap();
        assert!(err < 6.0, "in-sample MAPE {err}%");
    }
}
