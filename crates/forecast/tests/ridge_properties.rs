//! Property tests for the generalized ridge machinery: rank-deficient
//! feature sets must never panic or produce NaN, and the scratch/batched
//! prediction paths must be bit-identical to the per-call path.

use proptest::prelude::*;

use fairco2_forecast::linalg::LinalgError;
use fairco2_forecast::{PredictScratch, RidgeTrainer, SeasonalForecaster};
use fairco2_trace::series::TimeSeries;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rank-deficient designs (a duplicated column, plus optionally a
    /// constant-zero column) fit to finite coefficients via jitter
    /// escalation or fail with the typed singularity error — no panics,
    /// no NaN.
    #[test]
    fn rank_deficient_fits_are_finite_or_typed(
        rows in prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, 3),
            1..40,
        ),
        lambda in (0usize..3).prop_map(|i| [0.0, 1e-8, 1e-3][i]),
        zero_col in (0usize..2).prop_map(|b| b == 1),
    ) {
        // 5 features: intercept, x0, x1, duplicate of x0, and either x2
        // or a constant-zero column.
        let mut trainer = RidgeTrainer::new(5, 2);
        for r in &rows {
            let last = if zero_col { 0.0 } else { r[2] };
            let feats = [1.0, r[0], r[1], r[0], last];
            let y = [r[0] + 0.5 * r[1], r[1] * r[1]];
            trainer.record(&feats, &y);
        }
        match trainer.fit(lambda, false) {
            Ok(model) => {
                for t in 0..2 {
                    prop_assert!(
                        model.coefficients(t).iter().all(|c| c.is_finite()),
                        "non-finite coefficients for target {}", t
                    );
                }
                let mut out = [0.0f64; 2];
                model.predict_into(&[1.0, 1.0, 2.0, 1.0, 3.0], &mut out);
                prop_assert!(out.iter().all(|v| v.is_finite()));
            }
            Err(e) => prop_assert!(
                matches!(e, LinalgError::SingularDespiteJitter { .. }),
                "unexpected error {:?}", e
            ),
        }
    }

    /// The reusable-scratch and batched prediction paths are bit-identical
    /// to the allocating per-call path.
    #[test]
    fn scratch_and_batched_predictions_match_per_call(
        seed_offsets in prop::collection::vec(0i64..86_400 * 40, 1..12),
        horizon in 1usize..50,
    ) {
        let series = TimeSeries::from_fn(0, 3600, 24 * 21, |t| {
            80.0 + 15.0 * (2.0 * std::f64::consts::PI * t as f64 / 86_400.0).sin()
        })
        .unwrap();
        let model = SeasonalForecaster::default_daily_weekly()
            .fit(&series)
            .unwrap();
        let mut scratch = PredictScratch::new();
        for &t in &seed_offsets {
            let per_call = model.predict_at(t);
            let with_scratch = model.predict_at_with(t, &mut scratch);
            prop_assert_eq!(per_call.to_bits(), with_scratch.to_bits());
        }
        let start = seed_offsets[0];
        let mut batched = Vec::new();
        model.predict_into(start, horizon, &mut batched);
        prop_assert_eq!(batched.len(), horizon);
        for (k, v) in batched.iter().enumerate() {
            let t = start + k as i64 * 3600;
            prop_assert_eq!(v.to_bits(), model.predict_at(t).to_bits());
        }
    }
}
