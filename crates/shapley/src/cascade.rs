//! The flat, zero-copy Temporal Shapley cascade.
//!
//! [`TemporalShapley::attribute`](crate::temporal::TemporalShapley::attribute)
//! originally materialized every hierarchy period as an owned
//! [`TimeSeries`](fairco2_trace::TimeSeries): each level cloned the whole
//! demand buffer into per-period series, rescanned every period for its
//! peak and its integral, and allocated a fresh per-sample intensity
//! vector — `O(samples · levels)` copies and ~`Σ periods` heap
//! allocations per call. This module replaces that pipeline with a flat
//! engine in which a *period is an index range* over the one shared
//! demand slice:
//!
//! * **Period bounds** are plain `usize` offsets, derived level by level
//!   with the same remainder rule as
//!   [`TimeSeries::split`](fairco2_trace::TimeSeries::split) — no sample
//!   is ever copied.
//! * **Peaks** come from a MaxTree: the fused sweep computes every
//!   *leaf* period's peak, and — because hierarchy bounds are nested,
//!   so every period at every level is an exact union of its children —
//!   one bottom-up pass folds child peaks into parent peaks,
//!   `O(periods)` maxes total instead of a rescan of the samples per
//!   level. `f64::max` over finite samples is associative and selects
//!   one of its operands bit-for-bit, so folding peaks of contiguous
//!   child groups equals the old left-to-right
//!   `fold(NEG_INFINITY, f64::max)` scan over the raw samples exactly
//!   (the one exception — a tie between `+0.0` and `-0.0` — cannot
//!   arise for non-negative demand). A [`RangeMax`] sparse table over
//!   the leaf peaks is exported alongside for `O(1)` *arbitrary*-window
//!   peak queries.
//! * **Integrals** come from one fused sweep over the demand slice that
//!   accumulates every level's per-period sums simultaneously. Two
//!   kernels implement the sweep, selected by [`KernelMode`]:
//!   - [`KernelMode::Scalar`] keeps the original left-to-right fold
//!     over exactly each period's samples from `0.0` — bit-identical
//!     to [`TimeSeries::integral`] on the period's series, retained as
//!     the equality/closeness pin for the lane path.
//!   - [`KernelMode::Lane`] (the default) uses the documented
//!     *canonical lane reduction*: within every leaf period, lane
//!     `j ∈ 0..CANONICAL_LANES` sums the samples at within-leaf offsets
//!     `≡ j (mod CANONICAL_LANES)`; each leaf's lane vector collapses
//!     to one leaf sum through the fixed adjacent-pair tree of
//!     [`combine_lanes`], and every level's period sum is the
//!     left-to-right sum of its leaves' sums. The lane count, the
//!     combine order, and the leaf-sum order are all constants of the
//!     hierarchy shape — independent of the demand values — so the
//!     reduction is deterministic and reproducible by the streaming
//!     engine ([`crate::incremental`]) bit-for-bit. It *reassociates*
//!     addition relative to the scalar fold, so lane sums match the
//!     scalar ones only to a documented ulp bound (see DESIGN.md §8).
//!     Peaks are unaffected: `f64::max` is associative and
//!     operand-selecting, so lane-split peaks stay bit-identical.
//! * **Scratch reuse**: all bounds, sums, carbon, intensity, and solver
//!   buffers live in a [`CascadeScratch`]; a repeated
//!   [`attribute_with_scratch`](crate::temporal::TemporalShapley::attribute_with_scratch)
//!   call on same-shaped inputs performs no heap allocation.
//! * **Parallel levels**: with `threads > 1` each level fans its parent
//!   periods out over [`run_parallel`](crate::parallel::run_parallel)
//!   and merges the per-parent child shares in strict parent order, so
//!   the result is bit-identical to the serial path — and to the old
//!   per-period path — at any thread count.
//!
//! The billing-query side lives here too: [`IntensityIndex`] wraps the
//! leaf carbon prefix sums and answers `(t0, t1, allocation)` queries in
//! a handful of integer operations, and
//! [`IntensityIndex::carbon_batch_into`] streams millions of queries per
//! second into a reusable output buffer.

use fairco2_trace::series::{SeriesError, TimeSeries};

use crate::parallel::run_parallel;
use crate::temporal::peak_shapley_into;

/// A sparse table answering `max(values[lo..hi])` in `O(1)` after an
/// `O(n log n)` build.
///
/// Internal nodes combine with [`f64::max`], the operator the original
/// per-period peak scan used; since `max` over finite floats is
/// associative and always returns one of its operands, every query is
/// bit-identical to a left-to-right fold over the same range. The table
/// owns its buffers and [`RangeMax::build`] reuses them, so rebuilding
/// over a same-length slice allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct RangeMax {
    len: usize,
    /// `levels[k][i] = max(values[i .. i + 2^k])`; `levels[0]` mirrors
    /// the input.
    levels: Vec<Vec<f64>>,
}

impl RangeMax {
    /// An empty table; call [`RangeMax::build`] before querying.
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)builds the table over `values`, reusing prior allocations.
    pub fn build(&mut self, values: &[f64]) {
        let n = values.len();
        self.len = n;
        let height = if n <= 1 { 1 } else { n.ilog2() as usize + 1 };
        self.levels.truncate(height);
        while self.levels.len() < height {
            self.levels.push(Vec::new());
        }
        self.levels[0].clear();
        self.levels[0].extend_from_slice(values);
        for k in 1..height {
            let half = 1usize << (k - 1);
            let entries = n - (1usize << k) + 1;
            let (below, level) = {
                let (a, b) = self.levels.split_at_mut(k);
                (&a[k - 1], &mut b[0])
            };
            level.clear();
            level.extend((0..entries).map(|i| f64::max(below[i], below[i + half])));
        }
    }

    /// Number of values the table was built over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty (never built, or built over nothing).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The values the table was built over (row 0, unchanged).
    pub fn leaves(&self) -> &[f64] {
        self.levels.first().map_or(&[], Vec::as_slice)
    }

    /// `max(values[lo..hi])`, bit-identical to folding that range
    /// left-to-right with `f64::max` from `NEG_INFINITY`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `hi > len` — a peak over an empty range
    /// is undefined.
    #[inline]
    pub fn query(&self, lo: usize, hi: usize) -> f64 {
        assert!(
            lo < hi && hi <= self.len,
            "range [{lo}, {hi}) out of bounds"
        );
        let k = (hi - lo).ilog2() as usize;
        let level = &self.levels[k];
        f64::max(level[lo], level[hi - (1usize << k)])
    }
}

/// Reusable state for the flat cascade: period bounds, per-period sums
/// and carbon, per-level intensity buffers, the MaxTree of per-level
/// period peaks, the leaf carbon prefix, and the small per-parent
/// solver buffers.
///
/// A scratch is built by
/// [`TemporalShapley::attribute_with_scratch`](crate::temporal::TemporalShapley::attribute_with_scratch)
/// and can be read directly (for allocation-free pipelines) or
/// materialized into a
/// [`TemporalAttribution`](crate::temporal::TemporalAttribution) with
/// [`CascadeScratch::to_attribution`]. Buffers grow to the largest
/// `(series length, hierarchy)` seen and are then reused; a repeated
/// serial attribution performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct CascadeScratch {
    /// Grid of the last attributed series.
    start: i64,
    step: u32,
    samples: usize,
    /// Splits of the last *successful* bounds derivation; together with
    /// `samples` this keys the cached `bounds`, which only depend on
    /// the shape, not the demand values.
    splits_cache: Vec<usize>,
    /// `bounds[l]` holds `periods(l) + 1` sample offsets; period `p` of
    /// level `l` covers `bounds[l][p] .. bounds[l][p + 1]`.
    bounds: Vec<Vec<usize>>,
    /// `q[l][p]`: integral (`Σ value · step`) of period `p` at level `l`.
    q: Vec<Vec<f64>>,
    /// `carbon[l][p]`: carbon assigned to period `p` at level `l`.
    carbon: Vec<Vec<f64>>,
    /// Per-level per-sample intensity signals on the input grid.
    intensity: Vec<Vec<f64>>,
    /// Leaf `intensity · step` prefix sums (`samples + 1` entries).
    prefix: Vec<f64>,
    /// Per-leaf-period peaks, filled by the fused sweep.
    leaf_peaks: Vec<f64>,
    /// MaxTree: `level_peaks[l][p]` is the peak of period `p` at the
    /// intermediate level `l` (`1 <= l < levels - 1`), folded bottom-up
    /// from the leaf peaks; the leaf level reads `leaf_peaks` directly
    /// and the root's peak is never consulted, so those slots stay
    /// empty.
    level_peaks: Vec<Vec<f64>>,
    /// Per-parent φ / weight buffers (≤ max split ratio).
    phi: Vec<f64>,
    order: Vec<usize>,
    weights: Vec<f64>,
    /// Per-level running accumulators of the fused integral sweep.
    level_acc: Vec<f64>,
    level_next: Vec<usize>,
    stranded: f64,
    naive: f64,
    ops: u64,
}

/// Per-parent output of a parallel level step: the children's carbon
/// shares, in child order. Sums are recomputed identically on merge, so
/// only the shares cross the thread boundary.
type ParentShares = Vec<f64>;

impl CascadeScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of hierarchy levels of the last attribution, including the
    /// root (so `splits.len() + 1`).
    pub fn levels(&self) -> usize {
        self.intensity.len()
    }

    /// Per-sample intensity at `level` (0 = coarsest) on the input grid.
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.levels()`.
    pub fn level_intensity(&self, level: usize) -> &[f64] {
        &self.intensity[level]
    }

    /// The finest-granularity intensity signal.
    ///
    /// # Panics
    ///
    /// Panics if no attribution has been run yet.
    pub fn leaf_intensity(&self) -> &[f64] {
        self.intensity.last().expect("attribution has been run")
    }

    /// Carbon stranded on zero-demand leaf periods.
    pub fn stranded_carbon(&self) -> f64 {
        self.stranded
    }

    /// Leaf `intensity · step` prefix sums (`samples + 1` entries).
    pub fn carbon_prefix(&self) -> &[f64] {
        &self.prefix
    }

    /// Materializes the scratch into an owned
    /// [`TemporalAttribution`](crate::temporal::TemporalAttribution)
    /// (this clones the per-level signals; keep reading the scratch
    /// directly when allocation-freedom matters).
    ///
    /// # Panics
    ///
    /// Panics if no attribution has been run yet.
    pub fn to_attribution(&self) -> crate::temporal::TemporalAttribution {
        assert!(!self.intensity.is_empty(), "attribution has been run");
        let level_intensity: Vec<TimeSeries> = self
            .intensity
            .iter()
            .map(|values| {
                TimeSeries::from_values(self.start, self.step, values.clone())
                    .expect("cascade levels cover a non-empty series")
            })
            .collect();
        crate::temporal::TemporalAttribution::from_parts(
            level_intensity,
            self.prefix.clone(),
            self.stranded,
            self.naive,
            self.ops,
        )
    }

    /// Consumes the scratch into an owned
    /// [`TemporalAttribution`](crate::temporal::TemporalAttribution),
    /// moving every level buffer and the carbon prefix instead of
    /// cloning them. This is the fresh-attribution fast path used by
    /// [`TemporalShapley::attribute`](crate::temporal::TemporalShapley::attribute);
    /// callers that keep the scratch for reuse want
    /// [`CascadeScratch::to_attribution`] instead.
    ///
    /// # Panics
    ///
    /// Panics if no attribution has been run yet.
    pub fn into_attribution(mut self) -> crate::temporal::TemporalAttribution {
        assert!(!self.intensity.is_empty(), "attribution has been run");
        let level_intensity: Vec<TimeSeries> = self
            .intensity
            .drain(..)
            .map(|values| {
                TimeSeries::from_values(self.start, self.step, values)
                    .expect("cascade levels cover a non-empty series")
            })
            .collect();
        crate::temporal::TemporalAttribution::from_parts(
            level_intensity,
            std::mem::take(&mut self.prefix),
            self.stranded,
            self.naive,
            self.ops,
        )
    }
}

/// Resizes `buffers` to `levels` entries without dropping capacity of
/// the retained ones.
fn ensure_levels<T: Default>(buffers: &mut Vec<T>, levels: usize) {
    buffers.truncate(levels);
    while buffers.len() < levels {
        buffers.push(T::default());
    }
}

/// Lane count of the canonical lane reduction used by
/// [`KernelMode::Lane`] and [`crate::incremental::IncrementalCascade`].
///
/// This is a *semantic* constant, not a tuning knob: changing it
/// changes which reassociated sum the lane kernels produce, so every
/// pinned lane result (frozen-vs-streaming bit-identity, BENCH
/// artifacts) would shift. Four lanes break the FP add latency chain
/// (4-cycle latency, ≥1/cycle throughput on every x86-64 core we
/// target) while keeping the per-leaf state small enough to live in
/// registers.
pub const CANONICAL_LANES: usize = 4;

/// Block length of the blocked two-level prefix
/// ([`fill_prefix_blocked`]). Part of the canonical reduction: the
/// serial `acc += intensity · step` chain restarts at every multiple of
/// this constant, and the inter-block carry is itself a serial sum of
/// block totals. For signals no longer than one block the result is
/// bit-identical to the scalar chain.
///
/// Like [`CANONICAL_LANES`], this is a *semantic* constant. Blocks are
/// deliberately short: the whole local chain of one block fits inside
/// the out-of-order window, so consecutive blocks' chains (which are
/// independent by construction) overlap in the pipeline and the kernel
/// runs at FP throughput instead of the serial chain's add latency.
/// Wide blocks would not — each block's chain would be as long as the
/// machine's reorder capacity, serializing the kernel back to chain
/// latency.
pub const PREFIX_BLOCK: usize = 8;

/// Which inner-loop implementation [`run_cascade`] uses.
///
/// Both modes run the same algorithm; they differ only in floating-point
/// summation order (and therefore in ulp-level rounding) as documented
/// on the module and in DESIGN.md §8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// The original serial loops: per-period left-to-right folds and a
    /// single `acc += value · step` prefix chain. Bit-identical to the
    /// per-period reference path; retained as the pin for `Lane`.
    Scalar,
    /// The lane-parallel canonical reduction: [`CANONICAL_LANES`]
    /// accumulator lanes per sum, combined with [`combine_lanes`], and
    /// the [`PREFIX_BLOCK`]-blocked two-level prefix.
    #[default]
    Lane,
}

/// Folds a lane vector into one sum with the fixed adjacent-pair tree:
/// `((l0 + l1) + (l2 + l3))` for `K = 4`, recursively for larger `K`.
/// This combine order is *the* canonical — it never depends on how many
/// samples each lane received, so any two code paths that partition the
/// same samples into the same lanes produce bit-identical sums.
///
/// Unfilled lanes must hold `0.0`, the additive identity.
///
/// # Panics
///
/// Panics if `K` is not a power of two (the pair tree would silently
/// drop lanes).
#[inline]
pub fn combine_lanes<const K: usize>(lanes: [f64; K]) -> f64 {
    assert!(K.is_power_of_two(), "lane count must be a power of two");
    let mut tmp = lanes;
    let mut width = K;
    while width > 1 {
        width /= 2;
        for j in 0..width {
            tmp[j] = tmp[2 * j] + tmp[2 * j + 1];
        }
    }
    tmp[0]
}

/// [`combine_lanes`] for peaks: the fixed adjacent-pair `f64::max`
/// tree. Because `max` over finite floats is associative and always
/// returns one of its operands, this is bit-identical to the serial
/// left-to-right fold over the same samples — lane-splitting peaks is
/// *not* a reassociation hazard (the lone exception, a `+0.0` / `-0.0`
/// tie, cannot arise for non-negative demand).
///
/// Unfilled lanes must hold `f64::NEG_INFINITY`, the `max` identity.
///
/// # Panics
///
/// Panics if `K` is not a power of two.
#[inline]
pub fn combine_lanes_max<const K: usize>(lanes: [f64; K]) -> f64 {
    assert!(K.is_power_of_two(), "lane count must be a power of two");
    let mut tmp = lanes;
    let mut width = K;
    while width > 1 {
        width /= 2;
        for j in 0..width {
            tmp[j] = f64::max(tmp[2 * j], tmp[2 * j + 1]);
        }
    }
    tmp[0]
}

/// Derives every level's period bounds from the split ratios, honouring
/// the same "earlier chunks get the remainder" rule as
/// [`TimeSeries::split`].
///
/// # Errors
///
/// Returns [`SeriesError::OutOfRange`] if any period would be split into
/// more parts than it has samples — the same error the per-period path
/// reports from `TimeSeries::split`.
pub(crate) fn fill_bounds(
    bounds: &mut Vec<Vec<usize>>,
    samples: usize,
    splits: &[usize],
) -> Result<(), SeriesError> {
    ensure_levels(bounds, splits.len() + 1);
    bounds[0].clear();
    bounds[0].extend([0, samples]);
    for (level, &m) in splits.iter().enumerate() {
        let (parents, children) = {
            let (a, b) = bounds.split_at_mut(level + 1);
            (&a[level], &mut b[0])
        };
        children.clear();
        children.push(0);
        for parent in parents.windows(2) {
            let len = parent[1] - parent[0];
            if m == 0 || m > len {
                return Err(SeriesError::OutOfRange);
            }
            let base = len / m;
            let extra = len % m;
            let mut idx = parent[0];
            for k in 0..m {
                idx += base + usize::from(k < extra);
                children.push(idx);
            }
        }
    }
    Ok(())
}

/// One fused sweep over the demand samples filling every level's
/// per-period integrals plus the leaf-period peaks. Each period's sum is
/// accumulated left-to-right over exactly its own samples from `0.0` —
/// bit-identical to [`TimeSeries::integral`] on the period's series —
/// then scaled by the step, and each leaf peak is the left-to-right
/// `fold(NEG_INFINITY, f64::max)` of [`TimeSeries::peak`], so one
/// `O(samples · levels)` pass replaces the old per-level rescans without
/// touching a single bit of the result. Upper-level period boundaries
/// are a subset of the leaf boundaries (hierarchy bounds are nested), so
/// boundary bookkeeping runs per leaf, not per sample.
///
/// This is the retained scalar kernel ([`KernelMode::Scalar`]); the
/// default lane-parallel kernel is [`fill_level_sums_lanes`].
pub(crate) fn fill_level_sums_scalar(
    values: &[f64],
    step: f64,
    bounds: &[Vec<usize>],
    q: &mut Vec<Vec<f64>>,
    acc: &mut Vec<f64>,
    next: &mut Vec<usize>,
    leaf_peaks: &mut Vec<f64>,
) {
    ensure_levels(q, bounds.len());
    let levels = bounds.len();
    acc.clear();
    acc.resize(levels, 0.0);
    next.clear();
    next.resize(levels, 1); // index into bounds[l] of the next boundary
    for sums in q.iter_mut() {
        sums.clear();
    }
    leaf_peaks.clear();
    match levels {
        // Monomorphize the hot depths: a fixed-width register file of
        // accumulators lets the compiler unroll the per-sample adds
        // into independent instructions with no bounds checks. Each
        // slot receives exactly the same adds in the same order as the
        // generic loop, so the sums are bit-identical.
        1 => fused_sweep_scalar::<1>(values, step, bounds, q, next, leaf_peaks),
        2 => fused_sweep_scalar::<2>(values, step, bounds, q, next, leaf_peaks),
        3 => fused_sweep_scalar::<3>(values, step, bounds, q, next, leaf_peaks),
        4 => fused_sweep_scalar::<4>(values, step, bounds, q, next, leaf_peaks),
        5 => fused_sweep_scalar::<5>(values, step, bounds, q, next, leaf_peaks),
        6 => fused_sweep_scalar::<6>(values, step, bounds, q, next, leaf_peaks),
        7 => fused_sweep_scalar::<7>(values, step, bounds, q, next, leaf_peaks),
        8 => fused_sweep_scalar::<8>(values, step, bounds, q, next, leaf_peaks),
        _ => {
            let leaf_bounds = bounds.last().expect("at least the root level");
            for w in leaf_bounds.windows(2) {
                let mut peak = f64::NEG_INFINITY;
                for &v in &values[w[0]..w[1]] {
                    for a in acc.iter_mut() {
                        *a += v;
                    }
                    peak = f64::max(peak, v);
                }
                leaf_peaks.push(peak);
                for level in 0..levels {
                    if bounds[level][next[level]] == w[1] {
                        q[level].push(acc[level] * step);
                        acc[level] = 0.0;
                        next[level] += 1;
                    }
                }
            }
        }
    }
}

/// The scalar fused sweep monomorphized for an `L`-level hierarchy; see
/// [`fill_level_sums_scalar`].
fn fused_sweep_scalar<const L: usize>(
    values: &[f64],
    step: f64,
    bounds: &[Vec<usize>],
    q: &mut [Vec<f64>],
    next: &mut [usize],
    leaf_peaks: &mut Vec<f64>,
) {
    debug_assert_eq!(bounds.len(), L);
    let mut file = [0.0f64; L];
    let leaf_bounds = bounds.last().expect("at least the root level");
    for w in leaf_bounds.windows(2) {
        let mut peak = f64::NEG_INFINITY;
        for &v in &values[w[0]..w[1]] {
            for slot in file.iter_mut() {
                *slot += v;
            }
            peak = f64::max(peak, v);
        }
        leaf_peaks.push(peak);
        for level in 0..L {
            if bounds[level][next[level]] == w[1] {
                q[level].push(file[level] * step);
                file[level] = 0.0;
                next[level] += 1;
            }
        }
    }
}

/// The lane-parallel sweep ([`KernelMode::Lane`]): fills the same
/// per-level integrals and leaf peaks as [`fill_level_sums_scalar`],
/// but under the canonical lane reduction with `K = CANONICAL_LANES`.
/// Buffer roles match the scalar kernel's.
pub(crate) fn fill_level_sums_lanes(
    values: &[f64],
    step: f64,
    bounds: &[Vec<usize>],
    q: &mut Vec<Vec<f64>>,
    acc: &mut Vec<f64>,
    next: &mut Vec<usize>,
    leaf_peaks: &mut Vec<f64>,
) {
    ensure_levels(q, bounds.len());
    let levels = bounds.len();
    acc.clear();
    acc.resize(levels, 0.0);
    next.clear();
    next.resize(levels, 1);
    for sums in q.iter_mut() {
        sums.clear();
    }
    leaf_peaks.clear();
    lane_sweep::<CANONICAL_LANES>(values, step, bounds, q, acc, next, leaf_peaks);
}

/// The generic-`K` lane sweep behind [`fill_level_sums_lanes`] (the
/// cascade always runs it at `K = CANONICAL_LANES`; tests and benches
/// exercise other powers of two through [`crate::kernels`]).
///
/// The canonical reduction, per leaf period:
///
/// 1. Lane `j` sums (and maxes) the leaf's samples at within-leaf
///    offsets `≡ j (mod K)` — a `chunks_exact(K)` loop of `K`
///    independent adds per chunk, which is what breaks the serial FP
///    dependency chain of the scalar kernel (the hot per-sample work
///    drops from `levels` dependent adds to one add on a 4-way
///    independent chain).
/// 2. The leaf's lane vector collapses to one *leaf sum* through the
///    fixed adjacent-pair tree of [`combine_lanes`].
/// 3. Every level accumulates whole leaf sums left-to-right
///    (`levels` adds per **leaf**, not per sample), and a period
///    closing at this leaf boundary emits `acc · step`.
///
/// The lane assignment (within-leaf offset mod `K`), the combine tree,
/// and the leaf-sum accumulation order all depend only on the hierarchy
/// shape — never on the demand values or on how the samples arrived —
/// so the streaming engine ([`crate::incremental`]) reproduces these
/// sums bit-for-bit by maintaining the same lanes sample-by-sample.
/// Leaf peaks use the identical partition with `f64::max`
/// ([`combine_lanes_max`]), which keeps them bit-identical to the
/// scalar kernel's.
pub(crate) fn lane_sweep<const K: usize>(
    values: &[f64],
    step: f64,
    bounds: &[Vec<usize>],
    q: &mut [Vec<f64>],
    acc: &mut [f64],
    next: &mut [usize],
    leaf_peaks: &mut Vec<f64>,
) {
    let levels = bounds.len();
    let leaf_bounds = bounds.last().expect("at least the root level");
    // The leaf level closes at every leaf boundary, so its period sum is
    // just the leaf sum (`0.0 + leaf_sum` in the generic loop — the
    // chain never produces `-0.0`, so pushing `leaf_sum · step` directly
    // is bit-identical). Upper levels have nested bounds: every upper
    // boundary is also a boundary of the deepest upper level, so one
    // compare per leaf gates all the upper bookkeeping.
    let (upper_q, leaf_q) = q.split_at_mut(levels - 1);
    let leaf_q = &mut leaf_q[0];
    let uppers = levels - 1;
    for w in leaf_bounds.windows(2) {
        let leaf = &values[w[0]..w[1]];
        let mut lane = [0.0f64; K];
        let mut peak_lane = [f64::NEG_INFINITY; K];
        let chunks = leaf.chunks_exact(K);
        let tail = chunks.remainder();
        for chunk in chunks {
            for j in 0..K {
                lane[j] += chunk[j];
                peak_lane[j] = f64::max(peak_lane[j], chunk[j]);
            }
        }
        for (j, &v) in tail.iter().enumerate() {
            lane[j] += v;
            peak_lane[j] = f64::max(peak_lane[j], v);
        }
        let leaf_sum = combine_lanes(lane);
        leaf_peaks.push(combine_lanes_max(peak_lane));
        leaf_q.push(leaf_sum * step);
        for a in acc[..uppers].iter_mut() {
            *a += leaf_sum;
        }
        if uppers > 0 && bounds[uppers - 1][next[uppers - 1]] == w[1] {
            for level in 0..uppers {
                if bounds[level][next[level]] == w[1] {
                    upper_q[level].push(acc[level] * step);
                    acc[level] = 0.0;
                    next[level] += 1;
                }
            }
        }
    }
}

/// Splits one parent period's carbon across its `m` children, exactly
/// as the per-period reference does: the precomputed child peaks (one
/// MaxTree slice), the closed-form φ, and the φ·q → q → duration weight
/// cascade. The `m` child carbon shares are **appended** to `shares`
/// (so a serial level loop can accumulate straight into the level
/// buffer); the caller supplies every buffer, so this is
/// allocation-free. Shared with the streaming engine in
/// [`crate::incremental`], which must split carbon with bit-identical
/// arithmetic.
///
/// # Panics
///
/// Panics — with the same message as
/// [`peak_shapley`](crate::temporal::peak_shapley) — if a child peak is
/// negative or non-finite.
#[allow(clippy::too_many_arguments)]
pub(crate) fn split_parent(
    child_bounds: &[usize],
    child_q: &[f64],
    child_peaks: &[f64],
    parent_carbon: f64,
    step: f64,
    phi: &mut Vec<f64>,
    order: &mut Vec<usize>,
    weights: &mut Vec<f64>,
    shares: &mut Vec<f64>,
) {
    let m = child_bounds.len() - 1;
    debug_assert_eq!(child_peaks.len(), m);
    peak_shapley_into(child_peaks, order, phi);
    // φ·q-proportional weights (Eq. 5), with the reference path's exact
    // fallbacks: q-proportional when every φ·q vanishes,
    // duration-proportional when even total demand is zero.
    weights.clear();
    weights.extend(phi.iter().zip(child_q).map(|(&p, &qi)| p * qi));
    let denom: f64 = weights.iter().sum();
    if denom > 0.0 {
        for w in weights.iter_mut() {
            *w /= denom;
        }
    } else {
        let q_total: f64 = child_q.iter().sum();
        if q_total > 0.0 {
            weights.clear();
            weights.extend(child_q.iter().map(|v| v / q_total));
        } else {
            let d_total: f64 = child_bounds
                .windows(2)
                .map(|w| (w[1] - w[0]) as f64 * step)
                .sum();
            weights.clear();
            weights.extend(
                child_bounds
                    .windows(2)
                    .map(|w| (w[1] - w[0]) as f64 * step / d_total),
            );
        }
    }
    debug_assert_eq!(weights.len(), m);
    shares.extend(weights.iter().map(|w| parent_carbon * w));
}

/// Expands one level's per-period carbon into the per-sample intensity
/// buffer, accumulating carbon of zero-demand periods into `stranded` —
/// the flat equivalent of the reference `intensity_signal`.
pub(crate) fn fill_intensity(
    bounds: &[usize],
    q: &[f64],
    carbon: &[f64],
    intensity: &mut Vec<f64>,
    samples: usize,
    stranded: &mut f64,
) {
    // No clear-to-zero first: periods tile `[0, samples)`, so every
    // element is written exactly once below (zero-demand periods write
    // the reference's implicit 0.0 explicitly). This halves the write
    // traffic of the hottest buffers.
    intensity.resize(samples, 0.0);
    for ((w, &qp), &cp) in bounds.windows(2).zip(q).zip(carbon) {
        if qp <= 0.0 {
            *stranded += cp;
            intensity[w[0]..w[1]].fill(0.0);
            continue;
        }
        intensity[w[0]..w[1]].fill(cp / qp);
    }
}

/// The leaf-level [`fill_intensity`], fused with the carbon-prefix
/// accumulation: the prefix needs one `acc += value · step` per sample
/// in sample order, and the leaf fill already visits every sample in
/// that order, so one pass writes both buffers instead of re-reading
/// the finished leaf signal. The accumulation sequence is exactly the
/// reference's, so the prefix is bit-identical. Shared with the
/// streaming engine in [`crate::incremental`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_leaf_intensity_and_prefix(
    bounds: &[usize],
    q: &[f64],
    carbon: &[f64],
    intensity: &mut Vec<f64>,
    prefix: &mut Vec<f64>,
    samples: usize,
    step: f64,
    stranded: &mut f64,
) {
    intensity.resize(samples, 0.0);
    prefix.resize(samples + 1, 0.0);
    prefix[0] = 0.0;
    let mut acc = 0.0;
    for ((w, &qp), &cp) in bounds.windows(2).zip(q).zip(carbon) {
        let value = if qp <= 0.0 {
            *stranded += cp;
            0.0
        } else {
            cp / qp
        };
        intensity[w[0]..w[1]].fill(value);
        for slot in &mut prefix[w[0] + 1..w[1] + 1] {
            acc += value * step;
            *slot = acc;
        }
    }
}

/// The blocked prefix ([`KernelMode::Lane`]'s replacement for the
/// serial chain of [`fill_leaf_intensity_and_prefix`]):
/// `prefix[k] = Σ_{i<k} intensity[i] · step` under the canonical
/// blocked reduction with `B = PREFIX_BLOCK`.
pub(crate) fn fill_prefix_blocked(intensity: &[f64], step: f64, prefix: &mut Vec<f64>) {
    fill_prefix_blocked_sized::<PREFIX_BLOCK>(intensity, step, prefix);
}

/// The generic-`B` blocked prefix behind [`fill_prefix_blocked`] (the
/// cascade always runs it at `B = PREFIX_BLOCK`; tests and benches
/// exercise other block lengths through [`crate::kernels`]).
///
/// The canonical reduction:
///
/// 1. **Local prefixes.** The signal is cut into blocks of exactly `B`
///    samples (plus a final partial block). Within each block the
///    original serial chain runs unchanged — `acc += intensity[i] ·
///    step` in index order from `0.0` — into a block-local buffer.
///    Each block's chain is independent of every other block's, so with
///    short blocks the machine overlaps consecutive chains and the
///    kernel runs at FP throughput, not chain latency.
/// 2. **Carry.** Block totals accumulate left-to-right into a running
///    carry (`carry_b = ((T_0 + T_1) + T_2) + …`, where `T_b` is block
///    `b`'s local chain end), and every element of block `b` stores
///    `local + carry_b` — the carry is fused into the store, so the
///    output is written exactly once.
///
/// Block boundaries sit at fixed multiples of `B`, never at
/// data-dependent positions, so the reduction is deterministic and the
/// streaming engine reproduces it bit-for-bit. For `n <= B` there is a
/// single block whose carry is `0.0`: the local chain never produces a
/// `-0.0` (it starts at `+0.0`), so `local + 0.0` is bit-identical to
/// the scalar chain. For `n > B` each element differs from the scalar
/// prefix only by the one reassociation `local + carry`, giving the
/// ≤ 1-ulp-per-element relative bound documented in DESIGN.md §8.
pub(crate) fn fill_prefix_blocked_sized<const B: usize>(
    intensity: &[f64],
    step: f64,
    prefix: &mut Vec<f64>,
) {
    assert!(B > 0, "prefix blocks must be non-empty");
    let n = intensity.len();
    // Every slot below is stored exactly once, so skip the memset when
    // the buffer is already the right length (the scratch-reuse path).
    if prefix.len() != n + 1 {
        prefix.clear();
        prefix.resize(n + 1, 0.0);
    }
    prefix[0] = 0.0;
    let out = &mut prefix[1..];
    let mut carry = 0.0f64;
    let chunks = intensity.chunks_exact(B);
    let tail = chunks.remainder();
    for (ic, oc) in chunks.zip(out.chunks_exact_mut(B)) {
        let mut local = [0.0f64; B];
        let mut a = 0.0f64;
        // Indexed over the constant bound `B` so the chain and the
        // carry-store fully unroll (`chunks_exact` pins both slice
        // lengths, so the bounds checks fold away).
        for j in 0..B {
            a += ic[j] * step;
            local[j] = a;
        }
        for j in 0..B {
            oc[j] = local[j] + carry;
        }
        carry += a;
    }
    let done = n - tail.len();
    let mut a = 0.0f64;
    for (o, &v) in out[done..].iter_mut().zip(tail) {
        a += v * step;
        *o = a + carry;
    }
}

/// Runs the flat cascade for `splits` over `demand`, filling `scratch`.
/// `threads > 1` fans each level's parents out over [`run_parallel`]
/// with an in-order merge; the result is bit-identical at any thread
/// count. `mode` selects the sweep/prefix kernels:
/// [`KernelMode::Scalar`] is bit-identical to the per-period reference
/// path, [`KernelMode::Lane`] to the streaming engine's canonical lane
/// reduction.
///
/// # Errors
///
/// Returns [`SeriesError::OutOfRange`] if the hierarchy splits the
/// series below one sample per period.
pub(crate) fn run_cascade(
    splits: &[usize],
    demand: &TimeSeries,
    total_carbon: f64,
    threads: usize,
    mode: KernelMode,
    scratch: &mut CascadeScratch,
) -> Result<(), SeriesError> {
    let samples = demand.len();
    let values = demand.values();
    let step = f64::from(demand.step());
    let same_shape =
        scratch.samples == samples && scratch.splits_cache == splits && !scratch.bounds.is_empty();
    scratch.start = demand.start();
    scratch.step = demand.step();
    scratch.samples = samples;
    scratch.stranded = 0.0;
    scratch.naive = 0.0;
    scratch.ops = 0;

    if !same_shape {
        scratch.splits_cache.clear();
        fill_bounds(&mut scratch.bounds, samples, splits)?;
        scratch.splits_cache.extend_from_slice(splits);
    }
    match mode {
        KernelMode::Scalar => fill_level_sums_scalar(
            values,
            step,
            &scratch.bounds,
            &mut scratch.q,
            &mut scratch.level_acc,
            &mut scratch.level_next,
            &mut scratch.leaf_peaks,
        ),
        KernelMode::Lane => fill_level_sums_lanes(
            values,
            step,
            &scratch.bounds,
            &mut scratch.q,
            &mut scratch.level_acc,
            &mut scratch.level_next,
            &mut scratch.leaf_peaks,
        ),
    }
    let levels = splits.len() + 1;
    ensure_levels(&mut scratch.carbon, levels);
    ensure_levels(&mut scratch.intensity, levels);

    // MaxTree: fold the leaf peaks bottom-up into intermediate-level
    // period peaks (the leaf level reads `leaf_peaks` directly, the
    // root's peak is never consulted). Each period's peak is a
    // left-to-right `f64::max` fold of its children's peaks, which is
    // bit-identical to folding its raw samples because `max` over
    // finite floats is associative and always returns an operand.
    ensure_levels(&mut scratch.level_peaks, levels);
    for peaks in scratch.level_peaks.iter_mut() {
        peaks.clear();
    }
    for level in (1..levels.saturating_sub(1)).rev() {
        let m = splits[level];
        let (upper, lower) = scratch.level_peaks.split_at_mut(level + 1);
        let child: &[f64] = if level + 2 == levels {
            &scratch.leaf_peaks
        } else {
            &lower[0]
        };
        upper[level].extend(
            child
                .chunks_exact(m)
                .map(|c| c.iter().fold(f64::NEG_INFINITY, |a, &b| f64::max(a, b))),
        );
    }

    // Root level: all carbon on the single whole-series period. With no
    // splits the root is the leaf, so the prefix rides along.
    scratch.carbon[0].clear();
    scratch.carbon[0].push(total_carbon);
    if levels == 1 {
        match mode {
            KernelMode::Scalar => fill_leaf_intensity_and_prefix(
                &scratch.bounds[0],
                &scratch.q[0],
                &scratch.carbon[0],
                &mut scratch.intensity[0],
                &mut scratch.prefix,
                samples,
                step,
                &mut scratch.stranded,
            ),
            KernelMode::Lane => {
                fill_intensity(
                    &scratch.bounds[0],
                    &scratch.q[0],
                    &scratch.carbon[0],
                    &mut scratch.intensity[0],
                    samples,
                    &mut scratch.stranded,
                );
                fill_prefix_blocked(&scratch.intensity[0], step, &mut scratch.prefix);
            }
        }
    } else {
        fill_intensity(
            &scratch.bounds[0],
            &scratch.q[0],
            &scratch.carbon[0],
            &mut scratch.intensity[0],
            samples,
            &mut scratch.stranded,
        );
    }

    for (level, &m) in splits.iter().enumerate() {
        let parents = scratch.bounds[level].len() - 1;
        // The per-parent op counters of the closed form, accumulated in
        // parent order exactly like the reference loop.
        for _ in 0..parents {
            scratch.ops += (m * m.ilog2().max(1) as usize) as u64;
            scratch.naive += (m as f64) * 2f64.powi(m as i32);
        }

        let (parent_carbon, child_carbon) = {
            let (a, b) = scratch.carbon.split_at_mut(level + 1);
            (&a[level], &mut b[0])
        };
        child_carbon.clear();
        let child_bounds = &scratch.bounds[level + 1];
        let child_q = &scratch.q[level + 1];
        let child_peaks: &[f64] = if level + 2 == levels {
            &scratch.leaf_peaks
        } else {
            &scratch.level_peaks[level + 1]
        };
        if threads > 1 && parents > 1 {
            // Parents are independent; fan them out and merge the child
            // shares in strict parent order. Each worker computes with
            // the same per-parent arithmetic as the serial loop, so the
            // merge is bit-identical at any thread count.
            let shares: Vec<ParentShares> = run_parallel(parents, threads, |p| {
                let mut phi = Vec::with_capacity(m);
                let mut order = Vec::with_capacity(m);
                let mut weights = Vec::with_capacity(m);
                let mut out = Vec::with_capacity(m);
                split_parent(
                    &child_bounds[p * m..(p + 1) * m + 1],
                    &child_q[p * m..(p + 1) * m],
                    &child_peaks[p * m..(p + 1) * m],
                    parent_carbon[p],
                    step,
                    &mut phi,
                    &mut order,
                    &mut weights,
                    &mut out,
                );
                out
            });
            for parent_shares in &shares {
                child_carbon.extend_from_slice(parent_shares);
            }
        } else {
            for p in 0..parents {
                split_parent(
                    &child_bounds[p * m..(p + 1) * m + 1],
                    &child_q[p * m..(p + 1) * m],
                    &child_peaks[p * m..(p + 1) * m],
                    parent_carbon[p],
                    step,
                    &mut scratch.phi,
                    &mut scratch.order,
                    &mut scratch.weights,
                    child_carbon,
                );
            }
        }

        let mut level_stranded = 0.0;
        if level + 2 == levels {
            match mode {
                // Finest level, scalar: fuse the O(1)-billing-query
                // prefix into the same pass.
                KernelMode::Scalar => fill_leaf_intensity_and_prefix(
                    &scratch.bounds[level + 1],
                    child_q,
                    child_carbon,
                    &mut scratch.intensity[level + 1],
                    &mut scratch.prefix,
                    samples,
                    step,
                    &mut level_stranded,
                ),
                // Finest level, lane: fill the leaf signal, then run
                // the blocked prefix over it (the second read is hot in
                // cache, and the blocked chain is ~3× faster than the
                // fused serial one).
                KernelMode::Lane => {
                    fill_intensity(
                        &scratch.bounds[level + 1],
                        child_q,
                        child_carbon,
                        &mut scratch.intensity[level + 1],
                        samples,
                        &mut level_stranded,
                    );
                    fill_prefix_blocked(&scratch.intensity[level + 1], step, &mut scratch.prefix);
                }
            }
        } else {
            fill_intensity(
                &scratch.bounds[level + 1],
                child_q,
                child_carbon,
                &mut scratch.intensity[level + 1],
                samples,
                &mut level_stranded,
            );
        }
        scratch.stranded = level_stranded;
    }
    Ok(())
}

/// A billing query: attribute carbon for `allocation` resource units
/// held over `[t0, t1)` (UNIX seconds).
pub type BillingQuery = (i64, i64, f64);

/// Index of the first sample at or after `t` on the grid `(start, step)`
/// holding `samples` samples, clamped to `[0, samples]` — the shared
/// window-to-index conversion of every billing path
/// ([`IntensityIndex`] and the `fairco2-serve` epoch snapshots).
///
/// Uses saturating arithmetic so hostile endpoints near `i64::MIN` /
/// `i64::MAX` clamp instead of wrapping (the wrap panicked in debug
/// builds and returned a wrong charge in release). Saturation is exact
/// here: it only fires when the true ceiling numerator overflows `i64`,
/// and then the saturated quotient still lands on the same side of the
/// clamp — `i64::MAX / step ≥ samples` because a grid whose span
/// exceeded `i64::MAX` seconds could not have a representable end time,
/// and `i64::MIN + (step - 1) < 0` clamps to `0` just like the true
/// (even more negative) value.
///
/// # Panics
///
/// Panics if `step <= 0`.
#[inline]
pub fn first_sample_at_or_after(start: i64, step: i64, samples: usize, t: i64) -> usize {
    assert!(step > 0, "sampling step must be positive");
    let n = samples as i64;
    t.saturating_sub(start)
        .saturating_add(step - 1)
        .div_euclid(step)
        .clamp(0, n) as usize
}

/// An O(1)-per-query index over a leaf carbon-prefix signal — the
/// paper's "once the signal exists, a workload's share is one lookup"
/// claim turned into a batched query engine.
///
/// Borrow one from
/// [`TemporalAttribution::intensity_index`](crate::temporal::TemporalAttribution::intensity_index)
/// and answer millions of `(t0, t1, allocation)` queries per second:
/// each query is two index clamps and one fused multiply-subtract,
/// independent of the series length.
#[derive(Debug, Clone, Copy)]
pub struct IntensityIndex<'a> {
    start: i64,
    step: i64,
    /// `prefix[k]` = carbon one resource unit accrues over the first `k`
    /// samples; `prefix.len() - 1` samples exist.
    prefix: &'a [f64],
}

impl<'a> IntensityIndex<'a> {
    /// Wraps a carbon prefix (`samples + 1` entries) on the grid
    /// `(start, step)`.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` is empty or `step == 0`.
    pub fn new(start: i64, step: u32, prefix: &'a [f64]) -> Self {
        assert!(!prefix.is_empty(), "prefix must hold at least one entry");
        assert!(step > 0, "sampling step must be positive");
        Self {
            start,
            step: i64::from(step),
            prefix,
        }
    }

    /// Index of the first sample at or after `t`, clamped to the series;
    /// see [`first_sample_at_or_after`] for the overflow contract.
    #[inline]
    fn first_at_or_after(&self, t: i64) -> usize {
        first_sample_at_or_after(self.start, self.step, self.prefix.len() - 1, t)
    }

    /// Carbon attributed to `allocation` resource units over `[t0, t1)`
    /// (gCO₂e). A sample at time `t` counts when `t ∈ [t0, t1)`, exactly
    /// as the original linear scan selected them; empty, inverted, and
    /// out-of-range windows yield `0.0`.
    #[inline]
    pub fn carbon(&self, t0: i64, t1: i64, allocation: f64) -> f64 {
        let lo = self.first_at_or_after(t0);
        let hi = self.first_at_or_after(t1);
        if hi <= lo {
            return 0.0;
        }
        allocation * (self.prefix[hi] - self.prefix[lo])
    }

    /// Answers a batch of billing queries into `out` (cleared first).
    /// Each answer is bit-identical to the corresponding
    /// [`IntensityIndex::carbon`] call; the output buffer is reusable,
    /// so a steady-state query loop performs no allocation.
    pub fn carbon_batch_into(&self, queries: &[BillingQuery], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(queries.len());
        out.extend(
            queries
                .iter()
                .map(|&(t0, t1, allocation)| self.carbon(t0, t1, allocation)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_max_matches_fold_on_every_window() {
        let values: Vec<f64> = (0..37)
            .map(|i| ((i * 7919 + 13) % 97) as f64 / 3.0)
            .collect();
        let mut table = RangeMax::new();
        table.build(&values);
        assert_eq!(table.len(), 37);
        for lo in 0..values.len() {
            for hi in lo + 1..=values.len() {
                let fold = values[lo..hi]
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(table.query(lo, hi).to_bits(), fold.to_bits());
            }
        }
    }

    #[test]
    fn range_max_rebuild_reuses_buffers() {
        let mut table = RangeMax::new();
        table.build(&[1.0, 5.0, 2.0, 4.0]);
        assert_eq!(table.query(0, 4), 5.0);
        table.build(&[3.0, 1.0, 7.0, 0.0]);
        assert_eq!(table.query(0, 4), 7.0);
        assert_eq!(table.query(3, 4), 0.0);
        table.build(&[2.0]);
        assert_eq!(table.len(), 1);
        assert_eq!(table.query(0, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn range_max_rejects_empty_ranges() {
        let mut table = RangeMax::new();
        table.build(&[1.0, 2.0]);
        let _ = table.query(1, 1);
    }

    #[test]
    fn bounds_follow_the_split_remainder_rule() {
        let mut bounds = Vec::new();
        fill_bounds(&mut bounds, 7, &[3]).unwrap();
        // TimeSeries::split(3) on 7 samples → lengths [3, 2, 2].
        assert_eq!(bounds[1], vec![0, 3, 5, 7]);
        assert!(fill_bounds(&mut bounds, 2, &[3]).is_err());
    }

    #[test]
    fn fused_sums_match_per_period_integrals() {
        let values: Vec<f64> = (0..23).map(|i| 0.1 + i as f64 * 0.37).collect();
        let series = TimeSeries::from_values(0, 300, values.clone()).unwrap();
        let mut bounds = Vec::new();
        fill_bounds(&mut bounds, 23, &[2, 3]).unwrap();
        let mut q = Vec::new();
        let (mut acc, mut next) = (Vec::new(), Vec::new());
        let mut leaf_peaks = Vec::new();
        fill_level_sums_scalar(
            &values,
            300.0,
            &bounds,
            &mut q,
            &mut acc,
            &mut next,
            &mut leaf_peaks,
        );
        assert_eq!(q[0][0].to_bits(), series.integral().to_bits());
        for (level, level_bounds) in bounds.iter().enumerate() {
            for (p, w) in level_bounds.windows(2).enumerate() {
                let part = TimeSeries::from_values(0, 300, values[w[0]..w[1]].to_vec()).unwrap();
                assert_eq!(
                    q[level][p].to_bits(),
                    part.integral().to_bits(),
                    "level {level} period {p}"
                );
            }
        }
        // Leaf peaks equal the per-leaf TimeSeries::peak fold, and a
        // range-max over them reproduces any upper period's peak.
        let leaf_bounds = bounds.last().unwrap();
        assert_eq!(leaf_peaks.len(), leaf_bounds.len() - 1);
        for (p, w) in leaf_bounds.windows(2).enumerate() {
            let part = TimeSeries::from_values(0, 300, values[w[0]..w[1]].to_vec()).unwrap();
            assert_eq!(leaf_peaks[p].to_bits(), part.peak().to_bits(), "leaf {p}");
        }
        let mut table = RangeMax::new();
        table.build(&leaf_peaks);
        // Level-1 period 0 spans leaves 0..3 (leaf_span = 3).
        let level1 =
            TimeSeries::from_values(0, 300, values[bounds[1][0]..bounds[1][1]].to_vec()).unwrap();
        assert_eq!(table.query(0, 3).to_bits(), level1.peak().to_bits());
    }

    #[test]
    fn combine_lanes_is_the_fixed_pair_tree() {
        let s = combine_lanes([1e16, 3.0, -1e16, 7.0]);
        // ((1e16 + 3) + (-1e16 + 7)) — NOT the serial ((1e16+3)-1e16)+7.
        assert_eq!(s.to_bits(), ((1e16f64 + 3.0) + (-1e16f64 + 7.0)).to_bits());
        assert_eq!(combine_lanes([2.5]), 2.5);
        assert_eq!(combine_lanes([0.0; 8]), 0.0);
        assert_eq!(
            combine_lanes_max([f64::NEG_INFINITY, 4.0, f64::NEG_INFINITY, 1.0]),
            4.0
        );
    }

    #[test]
    fn lane_sweep_peaks_and_small_sums_match_the_scalar_kernel() {
        // Peaks are bit-identical under the lane partition; sums are
        // bit-identical whenever every leaf is shorter than two lanes'
        // worth of samples *and* each level closes per leaf — here the
        // 23-sample [2, 3] hierarchy has 4-sample leaves, so only
        // closeness holds for sums while peaks must match exactly.
        let values: Vec<f64> = (0..23)
            .map(|i| 0.1 + ((i * 31) % 17) as f64 * 0.37)
            .collect();
        let mut bounds = Vec::new();
        fill_bounds(&mut bounds, 23, &[2, 3]).unwrap();
        let (mut q_s, mut q_l) = (Vec::new(), Vec::new());
        let (mut acc, mut next) = (Vec::new(), Vec::new());
        let (mut peaks_s, mut peaks_l) = (Vec::new(), Vec::new());
        fill_level_sums_scalar(
            &values,
            300.0,
            &bounds,
            &mut q_s,
            &mut acc,
            &mut next,
            &mut peaks_s,
        );
        fill_level_sums_lanes(
            &values,
            300.0,
            &bounds,
            &mut q_l,
            &mut acc,
            &mut next,
            &mut peaks_l,
        );
        assert_eq!(peaks_s.len(), peaks_l.len());
        for (a, b) in peaks_s.iter().zip(&peaks_l) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (level, (qs, ql)) in q_s.iter().zip(&q_l).enumerate() {
            assert_eq!(qs.len(), ql.len(), "level {level}");
            for (a, b) in qs.iter().zip(ql) {
                assert!(
                    (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                    "level {level}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn blocked_prefix_is_bit_identical_within_one_block() {
        let intensity: Vec<f64> = (0..1000).map(|i| ((i * 13) % 29) as f64 * 0.125).collect();
        let mut scalar = vec![0.0; intensity.len() + 1];
        let mut acc = 0.0;
        for (i, &v) in intensity.iter().enumerate() {
            acc += v * 300.0;
            scalar[i + 1] = acc;
        }
        let mut blocked = Vec::new();
        fill_prefix_blocked(&intensity, 300.0, &mut blocked); // 1000 <= PREFIX_BLOCK
        assert_eq!(blocked.len(), scalar.len());
        for (a, b) in blocked.iter().zip(&scalar) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn blocked_prefix_crosses_blocks_with_one_carry_reassociation() {
        // Small B exercises the lockstep quad, the serial tail, and the
        // partial final block; values are dyadic so every sum is exact
        // and the carry reassociation is *also* exact — the blocked
        // result must then equal the scalar chain bit-for-bit.
        let intensity: Vec<f64> = (0..59).map(|i| ((i * 7) % 9) as f64 * 0.25).collect();
        let mut scalar = vec![0.0; intensity.len() + 1];
        let mut acc = 0.0;
        for (i, &v) in intensity.iter().enumerate() {
            acc += v * 2.0;
            scalar[i + 1] = acc;
        }
        let mut blocked = Vec::new();
        fill_prefix_blocked_sized::<4>(&intensity, 2.0, &mut blocked);
        assert_eq!(blocked.len(), scalar.len());
        for (i, (a, b)) in blocked.iter().zip(&scalar).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "index {i}");
        }
    }

    #[test]
    fn intensity_index_answers_degenerate_windows() {
        let prefix = [0.0, 1.0, 3.0, 6.0];
        let idx = IntensityIndex::new(0, 300, &prefix);
        assert_eq!(idx.carbon(0, 900, 1.0), 6.0);
        assert_eq!(idx.carbon(300, 300, 1.0), 0.0); // empty
        assert_eq!(idx.carbon(600, 300, 1.0), 0.0); // inverted
        assert_eq!(idx.carbon(-900, -300, 1.0), 0.0); // before the series
        assert_eq!(idx.carbon(900, 1800, 1.0), 0.0); // past the end
        assert_eq!(idx.carbon(0, 900, 2.0), 12.0);
    }

    #[test]
    fn extreme_endpoints_clamp_instead_of_wrapping() {
        // Regression: the old `t - start + step - 1` wrapped (panicking
        // in debug builds) for endpoints near the i64 extremes and
        // charged garbage in release builds. Every window that cannot
        // overlap the series must charge exactly 0.0; windows that
        // cover it must charge the full prefix.
        let prefix = [0.0, 1.0, 3.0, 6.0];
        let idx = IntensityIndex::new(0, 300, &prefix);
        assert_eq!(idx.carbon(i64::MIN, i64::MIN + 1, 1.0), 0.0);
        assert_eq!(idx.carbon(i64::MAX - 1, i64::MAX, 1.0), 0.0);
        assert_eq!(idx.carbon(i64::MIN, -1, 1.0), 0.0);
        assert_eq!(idx.carbon(900, i64::MAX, 1.0), 0.0);
        assert_eq!(idx.carbon(i64::MIN, i64::MAX, 1.0), 6.0);
        assert_eq!(idx.carbon(i64::MIN, 301, 1.0), 3.0);
        assert_eq!(idx.carbon(300, i64::MAX, 1.0), 5.0);

        // A grid ending exactly at i64::MAX: the sample at MAX is
        // excluded by a [.., MAX) window and included by no larger one.
        let late = IntensityIndex::new(i64::MAX - 600, 300, &prefix);
        assert_eq!(late.carbon(i64::MIN, i64::MAX, 1.0), 3.0);
        assert_eq!(late.carbon(i64::MAX - 600, i64::MAX, 1.0), 3.0);
        assert_eq!(late.carbon(i64::MIN, i64::MIN + 4096, 1.0), 0.0);

        // A grid starting at i64::MIN clamps from below.
        let early = IntensityIndex::new(i64::MIN, 300, &prefix);
        assert_eq!(early.carbon(i64::MIN, i64::MAX, 1.0), 6.0);
        assert_eq!(early.carbon(i64::MAX - 4096, i64::MAX, 1.0), 0.0);
    }

    #[test]
    fn batched_queries_survive_extreme_endpoints() {
        let prefix = [0.0, 2.0, 2.5, 7.0];
        let idx = IntensityIndex::new(-300, 300, &prefix);
        let queries: Vec<BillingQuery> = vec![
            (i64::MIN, i64::MAX, 1.0),
            (i64::MIN, i64::MIN + 7, 3.0),
            (i64::MAX - 7, i64::MAX, 3.0),
            (i64::MAX, i64::MIN, 1.0), // inverted across the full span
            (i64::MIN, 0, 2.0),
            (0, i64::MAX, 2.0),
        ];
        let mut out = Vec::new();
        idx.carbon_batch_into(&queries, &mut out);
        let expected = [7.0, 0.0, 0.0, 0.0, 2.0 * 2.0, 2.0 * 5.0];
        assert_eq!(out.len(), expected.len());
        for ((answer, want), &(t0, t1, alloc)) in out.iter().zip(expected).zip(&queries) {
            assert_eq!(*answer, want, "({t0}, {t1}, {alloc})");
            assert_eq!(answer.to_bits(), idx.carbon(t0, t1, alloc).to_bits());
        }
    }

    #[test]
    fn batched_queries_match_per_call_answers() {
        let prefix: Vec<f64> = (0..=48).map(|k| (k * k) as f64 * 0.25).collect();
        let idx = IntensityIndex::new(-600, 300, &prefix);
        let queries: Vec<BillingQuery> = (-5..60)
            .map(|i| (i * 250 - 600, i * 410 - 100, 0.5 + i as f64 * 0.1))
            .collect();
        let mut out = Vec::new();
        idx.carbon_batch_into(&queries, &mut out);
        assert_eq!(out.len(), queries.len());
        for (answer, &(t0, t1, alloc)) in out.iter().zip(&queries) {
            assert_eq!(answer.to_bits(), idx.carbon(t0, t1, alloc).to_bits());
        }
    }
}
