//! Surrogate-accelerated Shapley attribution with an error-bounded exact
//! fallback.
//!
//! Exact and sampled Shapley solvers pay per-coalition evaluation costs
//! that dominate Monte Carlo studies. Following the learned-predictor
//! approach of "Deep Learning-Accelerated Shapley Value for Fair
//! Allocation in Power Systems" (see PAPERS.md) — but with the repo's own
//! ridge machinery instead of a neural network — this module serves
//! peak-demand-game attributions in `O(features)` per workload:
//!
//! 1. **Featurization** ([`player_features_into`]): each player is
//!    described by dimensionless schedule features (its temporal-Shapley
//!    proxy share, RUP share, demand-proportional share, peak fraction,
//!    demand at the aggregate peak, mean-demand fraction, and duration
//!    fraction), all normalized by the grand-coalition peak `v(N)` so the
//!    model transfers across schedule scales.
//! 2. **Prediction** ([`SurrogateModel`]): a multi-target ridge model
//!    (shared-Gram Cholesky fit from [`fairco2_forecast::ridge`]) maps
//!    features to the normalized Shapley share *and* to the surrogate's
//!    own expected absolute error. The error channel is **cross-fitted**:
//!    the trainer splits its rows into two deterministic folds, fits a
//!    share-only model on each fold, measures that model's held-out
//!    error on the other fold, and regresses those out-of-fold errors —
//!    so the channel estimates the error of a model that never saw the
//!    row, not an optimistic in-sample residual.
//! 3. **Residual bound + fallback** ([`SurrogateAttributor`]): the served
//!    prediction's efficiency-axiom gap (`|Σφ̂ − v(N)|`, relative — the
//!    same quantity [`crate::axioms::check_efficiency`] tests) is combined
//!    with the predicted error channel into a cheap residual bound. If
//!    the bound exceeds the tolerance, the trial falls back to
//!    [`sampled_shapley_cached`] with a per-trial deterministic seed;
//!    otherwise the prediction is conservation-renormalized so it
//!    satisfies efficiency *exactly*. A tolerance of zero disables the
//!    surrogate entirely, collapsing to `sampled_shapley_cached`
//!    bit-for-bit.
//!
//! Every decision is a pure function of `(model, game, trial)` — no
//! shared state, no RNG outside the fallback's per-trial seed — so
//! attribution is deterministic and bit-identical at any thread count,
//! like every other parallel path in this repo.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use fairco2_forecast::linalg::LinalgError;
use fairco2_forecast::ridge::{MultiRidge, RidgeTrainer};

use crate::game::{Game, PeakDemandGame};
use crate::sampled::{sampled_shapley_cached, SampleConfig, ShapleyEstimate};
use crate::temporal::peak_shapley_into;

/// Number of per-player features fed to the surrogate.
pub const SURROGATE_FEATURES: usize = 16;

/// Number of regression targets: the normalized Shapley share and the
/// cross-fitted absolute prediction error (the learned error channel).
pub const SURROGATE_TARGETS: usize = 2;

/// Reusable buffers for featurization and serving: one warm scratch
/// serves any number of games without heap allocation.
#[derive(Debug, Default, Clone)]
pub struct SurrogateScratch {
    /// Aggregate demand per time step.
    agg: Vec<f64>,
    /// Per-step Shapley share of the step-peak game over `agg`.
    step_phi: Vec<f64>,
    /// Sort buffer for [`peak_shapley_into`].
    order: Vec<usize>,
    /// `n × SURROGATE_FEATURES` row-major feature matrix.
    features: Vec<f64>,
    /// Per-target prediction buffer.
    pred: Vec<f64>,
}

impl SurrogateScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The feature matrix left by the last [`player_features_into`] call
    /// (`n × SURROGATE_FEATURES`, row-major) — the rows a harvest
    /// serializes.
    pub fn features(&self) -> &[f64] {
        &self.features
    }
}

/// Computes the per-player feature matrix for `game` into
/// `scratch.features` (`n × SURROGATE_FEATURES`, row-major) and returns
/// the grand-coalition value `v(N)`.
///
/// The aggregate-demand accumulation performs, per time step, exactly the
/// player-ordered additions of `game.value(&Coalition::grand(n))`, so the
/// returned `v(N)` is bit-identical to evaluating the game — the
/// efficiency gap computed against it matches
/// [`crate::axioms::check_efficiency`] exactly.
pub fn player_features_into(game: &PeakDemandGame, scratch: &mut SurrogateScratch) -> f64 {
    let n = game.player_count();
    let steps = game.steps();
    let demand = game.demand();

    scratch.agg.clear();
    scratch.agg.resize(steps, 0.0);
    // Sum players in index order per step (matches `Game::value` on the
    // grand coalition bit-for-bit).
    for row in demand {
        for (a, d) in scratch.agg.iter_mut().zip(row) {
            *a += d;
        }
    }
    let mut v_n = 0.0f64;
    let mut peak_step = 0usize;
    for (t, &a) in scratch.agg.iter().enumerate() {
        if a > v_n {
            v_n = a;
            peak_step = t;
        }
    }

    scratch.features.clear();
    scratch.features.resize(n * SURROGATE_FEATURES, 0.0);
    if v_n <= 0.0 {
        // Degenerate all-zero schedule: all features stay zero.
        return v_n;
    }

    // Per-step capacity pricing: Shapley of the step-peak game over the
    // aggregate series (the temporal-Shapley signal at step granularity).
    peak_shapley_into(&scratch.agg, &mut scratch.order, &mut scratch.step_phi);

    let total_all: f64 = scratch.agg.iter().sum();
    let sum_sq: f64 = scratch.agg.iter().map(|a| a * a).sum();

    let inv_n = 1.0 / n as f64;
    for (p, row) in demand.iter().enumerate() {
        let mut own_total = 0.0f64;
        let mut own_peak = 0.0f64;
        let mut active = 0usize;
        let mut temporal = 0.0f64;
        let mut dp_weighted = 0.0f64;
        // Peak of everyone else's aggregate: `v(N ∖ {p})`, the O(T)
        // complement that turns the last-position marginal into a
        // feature.
        let mut others_peak = 0.0f64;
        for (t, &d) in row.iter().enumerate() {
            others_peak = others_peak.max(scratch.agg[t] - d);
            if d != 0.0 {
                own_total += d;
                active += 1;
                if d > own_peak {
                    own_peak = d;
                }
                // Price each step's capacity share by the player's
                // fraction of that step's aggregate demand.
                temporal += d / scratch.agg[t] * scratch.step_phi[t];
                dp_weighted += d * scratch.agg[t];
            }
        }
        let f = &mut scratch.features[p * SURROGATE_FEATURES..(p + 1) * SURROGATE_FEATURES];
        let temporal_share = temporal / v_n;
        let peak_frac = own_peak / v_n;
        // Shapley averages positional marginals; for this (near-
        // submodular) peak game the last-position marginal and the
        // standalone peak bracket the share, so both enter as features.
        let marginal_last = (v_n - others_peak) / v_n;
        f[0] = 1.0; // intercept
        f[1] = temporal_share; // temporal-Shapley proxy share
        f[2] = if total_all > 0.0 {
            own_total / total_all // RUP (resource-usage-proportional) share
        } else {
            0.0
        };
        f[3] = if sum_sq > 0.0 {
            dp_weighted / sum_sq // demand-proportional share
        } else {
            0.0
        };
        f[4] = peak_frac; // standalone peak (first-position marginal)
        f[5] = row[peak_step] / v_n; // demand at the aggregate peak
        f[6] = own_total / (v_n * steps as f64); // mean-demand fraction
        f[7] = active as f64 / steps as f64; // duration fraction
        f[8] = marginal_last; // last-position marginal share
        f[9] = temporal_share * temporal_share; // proxy curvature
        f[10] = temporal_share * inv_n; // proxy × crowding interaction
        f[11] = inv_n; // equal-split share
                       // Bracket geometry: where the first/last-marginal bracket is
                       // wide the linear proxies disagree most, so curvature and
                       // width interactions carry the correction.
        let width = peak_frac - marginal_last;
        f[12] = peak_frac * marginal_last; // bracket product
        f[13] = width * width; // bracket width curvature
        f[14] = temporal_share * width; // proxy × bracket width
        f[15] = marginal_last * marginal_last; // marginal curvature
    }
    v_n
}

/// Trainer: records `(features, share)` rows per player from games with
/// known ground-truth attributions, then fits the shared-Gram
/// multi-target ridge model with a cross-fitted error channel.
///
/// Rows are retained (`O(rows × features)` memory) because the error
/// channel needs a second pass: out-of-fold errors only exist once the
/// fold models are fitted.
#[derive(Debug, Default)]
pub struct SurrogateTrainer {
    /// Retained feature rows, `rows × SURROGATE_FEATURES` row-major.
    features: Vec<f64>,
    /// Ground-truth normalized share per retained row.
    shares: Vec<f64>,
    scratch: SurrogateScratch,
    games: usize,
}

impl SurrogateTrainer {
    /// Empty trainer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one training game with its ground-truth Shapley values
    /// (raw shares, e.g. from the exact solver). Zero-demand games are
    /// skipped — they carry no signal.
    ///
    /// # Panics
    ///
    /// Panics if `truth` does not have one value per player.
    pub fn record(&mut self, game: &PeakDemandGame, truth: &[f64]) {
        let n = game.player_count();
        assert_eq!(truth.len(), n, "one ground-truth share per player");
        let v_n = player_features_into(game, &mut self.scratch);
        if v_n <= 0.0 {
            return;
        }
        for (f, &phi) in self
            .scratch
            .features
            .chunks_exact(SURROGATE_FEATURES)
            .zip(truth)
        {
            self.features.extend_from_slice(f);
            self.shares.push(phi / v_n);
        }
        self.games += 1;
    }

    /// Records one pre-featurized row (e.g. replayed from a JSONL
    /// harvest): `features` must be a [`SURROGATE_FEATURES`]-length row
    /// and `share` the *normalized* ground-truth share `φ_p / v(N)`.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong length.
    pub fn record_row(&mut self, features: &[f64], share: f64) {
        assert_eq!(features.len(), SURROGATE_FEATURES, "feature row length");
        self.features.extend_from_slice(features);
        self.shares.push(share);
    }

    /// Player rows recorded so far.
    pub fn rows(&self) -> usize {
        self.shares.len()
    }

    /// Games recorded via [`SurrogateTrainer::record`].
    pub fn games(&self) -> usize {
        self.games
    }

    /// Fits the surrogate: the share channel on every row, the error
    /// channel on cross-fitted out-of-fold absolute errors.
    ///
    /// Rows are split into two folds by row parity (deterministic: no
    /// RNG, so the fitted model is a pure function of the recorded
    /// rows). A share-only model fitted on each fold is evaluated on the
    /// *other* fold; those held-out errors become the second target of
    /// the final fit over all rows.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`LinalgError`] when a Gram matrix stays
    /// singular through jitter escalation (e.g. too few training rows —
    /// cross-fitting needs a fittable model on each half).
    pub fn fit(&self, lambda: f64) -> Result<SurrogateModel, LinalgError> {
        let rows = self.shares.len();
        let row = |i: usize| &self.features[i * SURROGATE_FEATURES..(i + 1) * SURROGATE_FEATURES];

        // Fold models: each sees only rows of the *other* parity.
        let mut fold_models = Vec::with_capacity(2);
        for fold in 0..2 {
            let mut t = RidgeTrainer::new(SURROGATE_FEATURES, 1);
            for i in (0..rows).filter(|i| i % 2 != fold) {
                t.record(row(i), &self.shares[i..=i]);
            }
            fold_models.push(t.fit(lambda, false)?);
        }

        // Final fit: shares from the ground truth, errors from the
        // out-of-fold predictions.
        let mut pred = [0.0f64];
        let mut t = RidgeTrainer::new(SURROGATE_FEATURES, SURROGATE_TARGETS);
        for i in 0..rows {
            fold_models[i % 2].predict_into(row(i), &mut pred);
            let err = (self.shares[i] - pred[0]).abs();
            t.record(row(i), &[self.shares[i], err]);
        }
        Ok(SurrogateModel {
            ridge: t.fit(lambda, false)?,
        })
    }
}

/// A fitted surrogate: predicts `[normalized share, expected absolute
/// prediction error]` per player from schedule features. The error
/// channel is cross-fitted (see [`SurrogateTrainer::fit`]), so it
/// estimates out-of-sample error, not in-sample residuals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateModel {
    ridge: MultiRidge,
}

impl SurrogateModel {
    /// The underlying ridge model.
    pub fn ridge(&self) -> &MultiRidge {
        &self.ridge
    }
}

/// Result of one surrogate attribution.
#[derive(Debug, Clone)]
pub struct SurrogateOutcome {
    /// Attributed value per player. Surrogate-served outcomes are
    /// conservation-renormalized to sum to `v(N)` exactly; fallback
    /// outcomes are the raw [`sampled_shapley_cached`] estimates
    /// (bit-identical to calling it directly).
    pub values: Vec<f64>,
    /// Grand-coalition value `v(N)`.
    pub grand_value: f64,
    /// Pre-renormalization efficiency-axiom gap of the raw prediction,
    /// relative to `max(|v(N)|, 1)` — the first half of the residual
    /// bound.
    pub efficiency_gap: f64,
    /// Largest predicted per-player error (the learned error channel) —
    /// the second half of the residual bound.
    pub predicted_error: f64,
    /// Whether the trial fell back to the exact sampling path.
    pub fell_back: bool,
}

impl SurrogateOutcome {
    /// The residual bound the fallback decision used.
    pub fn residual_bound(&self) -> f64 {
        self.efficiency_gap.max(self.predicted_error)
    }
}

/// Serves Shapley attributions from a [`SurrogateModel`] with an
/// error-bounded fallback to [`sampled_shapley_cached`].
///
/// Attribution is a pure function of `(attributor, game, trial)`:
/// fallback decisions and outputs are deterministic and bit-identical at
/// any thread count or trial-partitioning.
#[derive(Debug, Clone)]
pub struct SurrogateAttributor {
    model: SurrogateModel,
    /// Residual-bound tolerance: serve the surrogate only when
    /// `max(efficiency gap, predicted error) ≤ tolerance`. Zero disables
    /// the surrogate (every trial falls back).
    pub tolerance: f64,
    /// Sampling configuration for the fallback path.
    pub fallback: SampleConfig,
    /// Base seed; trial `k` falls back with seed `base_seed + k`,
    /// mirroring the Monte Carlo engine's per-trial seeding.
    pub base_seed: u64,
}

impl SurrogateAttributor {
    /// Default base seed for fallback sampling.
    pub const DEFAULT_SEED: u64 = 0x5A_C0DE;

    /// Attributor with the default fallback configuration.
    pub fn new(model: SurrogateModel, tolerance: f64) -> Self {
        Self {
            model,
            tolerance,
            fallback: SampleConfig::default(),
            base_seed: Self::DEFAULT_SEED,
        }
    }

    /// The model being served.
    pub fn model(&self) -> &SurrogateModel {
        &self.model
    }

    /// Attributes one game, allocating fresh buffers.
    pub fn attribute(&self, game: &PeakDemandGame, trial: u64) -> SurrogateOutcome {
        let mut scratch = SurrogateScratch::new();
        self.attribute_with(game, trial, &mut scratch)
    }

    /// Attributes one game using caller-owned scratch buffers.
    pub fn attribute_with(
        &self,
        game: &PeakDemandGame,
        trial: u64,
        scratch: &mut SurrogateScratch,
    ) -> SurrogateOutcome {
        let n = game.player_count();
        let v_n = player_features_into(game, scratch);
        if v_n <= 0.0 {
            // Nothing to attribute; trivially efficient.
            return SurrogateOutcome {
                values: vec![0.0; n],
                grand_value: v_n,
                efficiency_gap: 0.0,
                predicted_error: 0.0,
                fell_back: false,
            };
        }

        scratch.pred.clear();
        scratch.pred.resize(SURROGATE_TARGETS, 0.0);
        let mut values = Vec::with_capacity(n);
        let mut sum = 0.0f64;
        let mut predicted_error = 0.0f64;
        for p in 0..n {
            let f = &scratch.features[p * SURROGATE_FEATURES..(p + 1) * SURROGATE_FEATURES];
            self.model.ridge.predict_into(f, &mut scratch.pred);
            // Shares are physically non-negative; clamp stray negative
            // predictions before the conservation step.
            let share = scratch.pred[0].max(0.0);
            predicted_error = predicted_error.max(scratch.pred[1].max(0.0));
            let value = share * v_n;
            sum += value;
            values.push(value);
        }

        // Residual bound, half 1: the efficiency-axiom gap of the raw
        // prediction (same normalization as `check_efficiency`).
        let efficiency_gap = (sum - v_n).abs() / v_n.abs().max(1.0);
        let bound = efficiency_gap.max(predicted_error);
        let serve = self.tolerance > 0.0 && bound <= self.tolerance && sum > 0.0;
        if serve {
            // Conservation renormalization: scale shares so the served
            // attribution satisfies efficiency exactly.
            let scale = v_n / sum;
            for v in &mut values {
                *v *= scale;
            }
            return SurrogateOutcome {
                values,
                grand_value: v_n,
                efficiency_gap,
                predicted_error,
                fell_back: false,
            };
        }

        let estimate = self.fallback_estimate(game, trial);
        SurrogateOutcome {
            values: estimate.values,
            grand_value: v_n,
            efficiency_gap,
            predicted_error,
            fell_back: true,
        }
    }

    /// The exact fallback path on its own: [`sampled_shapley_cached`]
    /// with this attributor's per-trial deterministic seed.
    pub fn fallback_estimate(&self, game: &PeakDemandGame, trial: u64) -> ShapleyEstimate {
        let mut rng = StdRng::seed_from_u64(self.base_seed.wrapping_add(trial));
        sampled_shapley_cached(game, &self.fallback, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::check_efficiency;
    use crate::exact::exact_shapley;

    fn demo_game(shift: usize) -> PeakDemandGame {
        let mut demand = vec![vec![0.0; 6]; 4];
        for (p, row) in demand.iter_mut().enumerate() {
            for (t, d) in row.iter_mut().enumerate() {
                *d = ((p * 5 + t * 3 + shift) % 7) as f64;
            }
        }
        PeakDemandGame::new(demand)
    }

    fn trained_model() -> SurrogateModel {
        let mut trainer = SurrogateTrainer::new();
        for shift in 0..40 {
            let game = demo_game(shift);
            let truth = exact_shapley(&game).expect("small game");
            trainer.record(&game, &truth);
        }
        trainer.fit(1e-6).expect("fit")
    }

    #[test]
    fn features_normalize_and_grand_value_matches_game() {
        use crate::coalition::Coalition;
        let game = demo_game(1);
        let mut scratch = SurrogateScratch::new();
        let v_n = player_features_into(&game, &mut scratch);
        let direct = game.value(&Coalition::grand(game.player_count()));
        assert_eq!(v_n.to_bits(), direct.to_bits(), "v(N) bit-identity");
        // The temporal-proxy shares (feature 1) sum to 1: the step game
        // distributes each step's capacity among its occupants.
        let proxy_sum: f64 = (0..game.player_count())
            .map(|p| scratch.features[p * SURROGATE_FEATURES + 1])
            .sum();
        assert!((proxy_sum - 1.0).abs() < 1e-9, "proxy sum {proxy_sum}");
    }

    #[test]
    fn served_outcomes_satisfy_efficiency_exactly() {
        let attributor = SurrogateAttributor::new(trained_model(), 0.5);
        let mut scratch = SurrogateScratch::new();
        let mut served = 0;
        for shift in 100..130 {
            let game = demo_game(shift);
            let outcome = attributor.attribute_with(&game, shift as u64, &mut scratch);
            if !outcome.fell_back {
                served += 1;
                assert!(check_efficiency(&game, &outcome.values, 1e-9).holds());
            }
        }
        assert!(served > 0, "a 0.5 tolerance should serve some trials");
    }

    #[test]
    fn zero_tolerance_collapses_to_sampled_fallback() {
        let attributor = SurrogateAttributor::new(trained_model(), 0.0);
        let game = demo_game(7);
        let outcome = attributor.attribute(&game, 7);
        assert!(outcome.fell_back);
        let direct = attributor.fallback_estimate(&game, 7);
        for (a, b) in outcome.values.iter().zip(&direct.values) {
            assert_eq!(a.to_bits(), b.to_bits(), "fallback bit-identity");
        }
    }
}
