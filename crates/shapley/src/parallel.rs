//! Deterministic parallel permutation sampling.
//!
//! Two layers live here:
//!
//! * [`run_parallel`] — the generic deterministic partitioner: indexed,
//!   independent work items fanned out across scoped worker threads with
//!   results reassembled in index order, so output is bit-identical at
//!   any thread count.
//! * [`parallel_sampled_shapley`] — the batched Shapley engine built on
//!   it. Permutations are grouped into fixed-size *batches*; batch `b`
//!   seeds its own [`StdRng`] from `(base_seed, b)`, so the permutation
//!   stream is a pure function of the schedule, never of thread timing.
//!   Batches run in fixed-size *rounds*; after each round the per-batch
//!   [`Moments`] are merged **in batch order** and the stopping rule is
//!   evaluated on the merged prefix. Round boundaries and merge order are
//!   independent of the worker count, so the estimate — including its
//!   early-stopping point — is bit-identical at 1, 2, or 64 threads.
//!
//! Each batch also reports an [`EvalCounters`] (coalition evaluations,
//! marginal updates, busy time), and the engine records a JSON-ready
//! [`ConvergenceTrace`] of standard error versus permutation count for
//! the bench bins.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

use crate::cache::CachedGame;
use crate::game::{
    replay_marginals_into, replay_marginals_paired_into, EvalCounters, IncrementalGame,
};
use crate::sampled::{Moments, SampleConfig, SampleScratch, ShapleyEstimate};

/// Runs `trials` independent work items across `threads` worker threads,
/// returning results in item order.
///
/// `run` must be pure with respect to the item index (each item seeds its
/// own RNG), which every caller in this workspace guarantees.
///
/// `threads = 0` is clamped to one worker: a zero thread count always
/// means "no parallelism", never "no progress", so callers can wire
/// user-supplied knobs straight through.
///
/// # Panics
///
/// Panics — with a `"worker thread panicked"` message once every worker
/// has been joined — if any `run` call panics; a failed worker can never
/// hang or silently truncate the results.
pub fn run_parallel<T, F>(trials: usize, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if trials == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, trials);
    let chunk_len = trials.div_ceil(threads);
    let mut slots: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    let panicked = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (worker, chunk) in slots.chunks_mut(chunk_len).enumerate() {
            let run = &run;
            let base = worker * chunk_len;
            handles.push(scope.spawn(move || {
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(run(base + offset));
                }
            }));
        }
        // Join every worker before reporting (the eager collect(), unlike
        // a bare `.any()`, never short-circuits), so no thread outlives
        // the failure and partial results are never observable.
        let joins: Vec<bool> = handles.into_iter().map(|h| h.join().is_err()).collect();
        joins.contains(&true)
    });
    assert!(!panicked, "worker thread panicked");
    slots
        .into_iter()
        .map(|s| s.expect("every trial slot is filled"))
        .collect()
}

/// Extracts the human-readable message from a caught panic payload.
///
/// `&str` and `String` payloads (everything `panic!` produces in this
/// workspace) come back verbatim; anything else is labelled opaquely.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Retry accounting from [`run_parallel_retrying`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryCounters {
    /// Failed attempts that were re-executed.
    pub retries: u64,
    /// Distinct items that failed at least once.
    pub requeued_items: u64,
}

/// An item that kept failing after its retry budget was spent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemAbandoned {
    /// The item's index.
    pub item: usize,
    /// Attempts made (budget + 1).
    pub attempts: u32,
    /// Message of the final failure (panic text or returned error).
    pub message: String,
}

impl std::fmt::Display for ItemAbandoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "item {} abandoned after {} attempts: {}",
            self.item, self.attempts, self.message
        )
    }
}

impl std::error::Error for ItemAbandoned {}

/// [`run_parallel`] with per-item fault containment: a panicking or
/// `Err`-returning item is caught and re-run up to `retry_budget` more
/// times before the whole call gives up.
///
/// `run` receives `(item, attempt)` with `attempt` starting at 0, so
/// deterministic fault injection can key off the attempt number. Results
/// still come back in item order and — because each item is a pure
/// function of its index — are bit-identical to a fault-free
/// [`run_parallel`] run whenever every item eventually succeeds.
///
/// # Errors
///
/// Returns the abandoned item with the **lowest index** (deterministic
/// regardless of thread timing) when any item exhausts its budget; no
/// partial results escape.
pub fn run_parallel_retrying<T, F>(
    trials: usize,
    threads: usize,
    retry_budget: u32,
    run: F,
) -> Result<(Vec<T>, RetryCounters), ItemAbandoned>
where
    T: Send,
    F: Fn(usize, u32) -> Result<T, String> + Sync,
{
    if trials == 0 {
        return Ok((Vec::new(), RetryCounters::default()));
    }
    let threads = threads.clamp(1, trials);
    let chunk_len = trials.div_ceil(threads);
    let mut slots: Vec<Result<T, ItemAbandoned>> = (0..trials).map(|_| Err(unfilled(0))).collect();
    let counters = std::sync::Mutex::new(RetryCounters::default());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (worker, chunk) in slots.chunks_mut(chunk_len).enumerate() {
            let run = &run;
            let counters = &counters;
            let base = worker * chunk_len;
            handles.push(scope.spawn(move || {
                let mut local = RetryCounters::default();
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    let item = base + offset;
                    *slot = attempt_item(item, retry_budget, run, &mut local);
                }
                let mut total = counters.lock().expect("counter lock");
                total.retries += local.retries;
                total.requeued_items += local.requeued_items;
            }));
        }
        for h in handles {
            // Workers catch item panics themselves; a join failure here
            // would be a bug in this function, not in `run`.
            h.join().expect("retrying worker infrastructure panicked");
        }
    });
    let mut out = Vec::with_capacity(trials);
    for slot in slots {
        out.push(slot?);
    }
    let counters = counters.into_inner().expect("counter lock");
    Ok((out, counters))
}

fn unfilled(item: usize) -> ItemAbandoned {
    ItemAbandoned {
        item,
        attempts: 0,
        message: "slot never executed".to_owned(),
    }
}

fn attempt_item<T, F>(
    item: usize,
    retry_budget: u32,
    run: &F,
    counters: &mut RetryCounters,
) -> Result<T, ItemAbandoned>
where
    F: Fn(usize, u32) -> Result<T, String> + Sync,
{
    let mut attempt = 0u32;
    loop {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(item, attempt)));
        let message = match outcome {
            Ok(Ok(value)) => return Ok(value),
            Ok(Err(message)) => message,
            Err(payload) => panic_message(payload.as_ref()),
        };
        if attempt == 0 {
            counters.requeued_items += 1;
        }
        if attempt >= retry_budget {
            return Err(ItemAbandoned {
                item,
                attempts: attempt + 1,
                message,
            });
        }
        counters.retries += 1;
        attempt += 1;
    }
}

/// A sensible default worker count: the available parallelism, capped so
/// laptop-scale machines stay responsive.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 32)
}

/// Configuration for [`parallel_sampled_shapley`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// The sampling budget, stopping rule, and antithetic switch.
    pub sample: SampleConfig,
    /// Permutations per batch. Batches are the unit of work distribution
    /// *and* of RNG seeding; the value changes scheduling granularity but
    /// never correctness.
    pub batch_permutations: usize,
    /// Batches per stopping round. The stopping rule is evaluated on the
    /// merged prefix after each round, so a smaller value stops closer to
    /// the target at the cost of more frequent synchronization. Must keep
    /// `round_batches ≥ threads` to saturate the pool.
    pub round_batches: usize,
    /// Worker threads.
    pub threads: usize,
    /// When `true`, each batch replays through a batch-local
    /// [`CoalitionCache`](crate::cache::CoalitionCache) (sized by
    /// [`CoalitionCache::for_players`](crate::cache::CoalitionCache::for_players)),
    /// so repeated permutation prefixes within the batch skip the game.
    /// Caches are per-batch — never shared across threads — so the
    /// estimate stays a pure function of the schedule and remains
    /// bit-identical at any thread count. Requires ≤ 64 players.
    pub coalition_cache: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            sample: SampleConfig::default(),
            batch_permutations: 64,
            round_batches: 16,
            threads: default_threads(),
            coalition_cache: false,
        }
    }
}

/// One point of a convergence trace: the estimator state after a round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Permutations merged so far.
    pub permutations: u64,
    /// Independent samples merged so far (antithetic pairs count once).
    pub samples: u64,
    /// Largest per-player pair-aware standard error at this point.
    pub max_std_error: f64,
    /// Coalition evaluations performed so far.
    pub coalition_evals: u64,
    /// Wall-clock seconds elapsed since the run started.
    pub elapsed_secs: f64,
}

/// JSON-serializable record of standard error versus permutation count,
/// appended once per stopping round by [`parallel_sampled_shapley`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConvergenceTrace {
    /// Per-round snapshots, in round order.
    pub points: Vec<TracePoint>,
}

impl ConvergenceTrace {
    /// The final standard error, if any round completed.
    pub fn final_std_error(&self) -> Option<f64> {
        self.points.last().map(|p| p.max_std_error)
    }
}

/// A parallel Shapley estimation together with its convergence trace.
#[derive(Debug, Clone)]
pub struct ParallelEstimate {
    /// The estimate, identical to a serial run of the same schedule.
    pub estimate: ShapleyEstimate,
    /// Standard error after each stopping round.
    pub trace: ConvergenceTrace,
}

/// Derives the RNG seed for batch `b` of a run seeded with `base_seed`.
/// SplitMix64-style mixing keeps neighbouring batch streams decorrelated.
fn batch_seed(base_seed: u64, batch: u64) -> u64 {
    base_seed ^ (batch.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs one batch: `count` permutations drawn from the batch's own RNG.
/// With `coalition_cache` the batch owns a fresh memo table; either way
/// the batch owns one [`SampleScratch`], so the permutation loop never
/// allocates after its first iteration.
fn run_batch<G: IncrementalGame>(
    game: &G,
    config: &SampleConfig,
    seed: u64,
    count: usize,
    coalition_cache: bool,
) -> (Moments, EvalCounters) {
    if coalition_cache {
        let cached = CachedGame::new(game);
        run_batch_uncached(&cached, config, seed, count)
    } else {
        run_batch_uncached(game, config, seed, count)
    }
}

fn run_batch_uncached<G: IncrementalGame>(
    game: &G,
    config: &SampleConfig,
    seed: u64,
    count: usize,
) -> (Moments, EvalCounters) {
    let n = game.player_count();
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut moments = Moments::zero(n);
    let mut counters = EvalCounters::default();
    let mut scratch = SampleScratch::for_game(game);
    while moments.permutations() < count {
        scratch.order.shuffle(&mut rng);
        if config.antithetic && moments.permutations() + 1 < count {
            replay_marginals_paired_into(
                game,
                &scratch.order,
                &mut scratch.state,
                &mut scratch.state_rev,
                &mut scratch.forward,
                &mut scratch.reverse,
                &mut counters,
            );
            // Preserve the batch's historical RNG stream: the next
            // shuffle starts from the reversed arrangement, exactly as
            // when the reverse replay flipped the buffer in place.
            scratch.order.reverse();
            moments.record_pair(&scratch.forward, &scratch.reverse);
        } else {
            replay_marginals_into(
                game,
                &scratch.order,
                &mut scratch.state,
                &mut scratch.forward,
                &mut counters,
            );
            moments.record_single(&scratch.forward);
        }
    }
    counters.batches = 1;
    counters.wall_time_secs = start.elapsed().as_secs_f64();
    (moments, counters)
}

/// Estimates Shapley values by batched parallel permutation sampling.
///
/// The permutation schedule — batch sizes, per-batch seeds, round
/// boundaries, and the merge order — depends only on `config.sample`,
/// `config.batch_permutations`, `config.round_batches`, and `base_seed`.
/// `config.threads` affects wall-clock time only: the returned estimate
/// and trace are bit-identical at any thread count.
///
/// # Panics
///
/// Panics if the game has no players, the permutation budget is zero,
/// `batch_permutations` or `round_batches` is zero, or `coalition_cache`
/// is set for a game with more than 64 players. `threads = 0` is clamped
/// to one worker by [`run_parallel`].
pub fn parallel_sampled_shapley<G>(
    game: &G,
    config: &ParallelConfig,
    base_seed: u64,
) -> ParallelEstimate
where
    G: IncrementalGame + Sync,
{
    let n = game.player_count();
    assert!(n > 0, "game must have at least one player");
    assert!(
        config.sample.max_permutations > 0,
        "at least one permutation is required"
    );
    assert!(config.batch_permutations > 0, "batches must be non-empty");
    assert!(config.round_batches > 0, "rounds must contain batches");

    let start = Instant::now();
    let max = config.sample.max_permutations;
    let total_batches = max.div_ceil(config.batch_permutations);
    let mut merged = Moments::zero(n);
    let mut counters = EvalCounters::default();
    let mut trace = ConvergenceTrace::default();
    let mut next_batch = 0usize;

    while next_batch < total_batches {
        let round = config.round_batches.min(total_batches - next_batch);
        let results = run_parallel(round, config.threads, |i| {
            let b = next_batch + i;
            // The final batch absorbs the budget remainder.
            let count = config
                .batch_permutations
                .min(max - b * config.batch_permutations);
            run_batch(
                game,
                &config.sample,
                batch_seed(base_seed, b as u64),
                count,
                config.coalition_cache,
            )
        });
        for (moments, batch_counters) in &results {
            merged.merge(moments);
            counters.merge(batch_counters);
        }
        next_batch += round;
        trace.points.push(TracePoint {
            permutations: merged.permutations() as u64,
            samples: merged.samples() as u64,
            max_std_error: merged.max_std_error(),
            coalition_evals: counters.coalition_evals,
            elapsed_secs: start.elapsed().as_secs_f64(),
        });
        if config.sample.target_stderr > 0.0
            && merged.permutations() >= config.sample.min_permutations
            && merged.max_std_error() <= config.sample.target_stderr
        {
            break;
        }
    }

    ParallelEstimate {
        estimate: merged.into_estimate(counters),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_shapley;
    use crate::game::{replay_marginals, PeakDemandGame};
    use proptest::prelude::*;

    fn demo_game() -> PeakDemandGame {
        PeakDemandGame::new(vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 4.0, 2.0],
            vec![2.0, 2.0, 5.0],
            vec![0.0, 3.0, 1.0],
            vec![2.5, 0.5, 3.5],
        ])
    }

    #[test]
    fn results_are_in_trial_order_at_any_parallelism() {
        let serial = run_parallel(37, 1, |t| t * t);
        for threads in [2, 3, 8, 64] {
            let parallel = run_parallel(37, threads, |t| t * t);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn zero_trials_yield_empty_results() {
        let out: Vec<usize> = run_parallel(0, 4, |t| t);
        assert!(out.is_empty());
    }

    /// Silences the default panic hook for tests that inject panics on
    /// purpose, keeping `cargo test` output readable. Installed once per
    /// test binary; real (uninjected) panics still print.
    fn quiet_injected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if !panic_message(info.payload()).contains("injected") {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn retrying_matches_fault_free_results_bitwise() {
        quiet_injected_panics();
        let clean = run_parallel(23, 3, |t| (t as f64).sqrt());
        for threads in [1, 2, 8] {
            let (out, counters) = run_parallel_retrying(23, threads, 2, |t, attempt| {
                // Item 7 panics twice, item 11 errors once; both then
                // succeed within the budget of 2 retries.
                if t == 7 && attempt < 2 {
                    panic!("injected panic at item {t}");
                }
                if t == 11 && attempt < 1 {
                    return Err(format!("injected error at item {t}"));
                }
                Ok((t as f64).sqrt())
            })
            .expect("all items recover within budget");
            assert_eq!(out.len(), clean.len());
            for (a, b) in out.iter().zip(&clean) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
            assert_eq!(counters.retries, 3, "threads = {threads}");
            assert_eq!(counters.requeued_items, 2, "threads = {threads}");
        }
    }

    #[test]
    fn exhausted_budget_reports_the_lowest_abandoned_item() {
        quiet_injected_panics();
        let err = run_parallel_retrying(16, 4, 1, |t, _attempt| {
            if t == 5 || t == 12 {
                return Err::<u64, _>(format!("injected error at item {t}"));
            }
            Ok(t as u64)
        })
        .unwrap_err();
        // Both 5 and 12 exceed the budget; the report is deterministic.
        assert_eq!(err.item, 5);
        assert_eq!(err.attempts, 2);
        assert!(err.message.contains("item 5"), "{err}");
    }

    #[test]
    fn fault_free_runs_count_no_retries() {
        let (out, counters) =
            run_parallel_retrying(9, 2, 3, |t, _| Ok::<_, String>(t * 2)).unwrap();
        assert_eq!(out, (0..9).map(|t| t * 2).collect::<Vec<_>>());
        assert_eq!(counters, RetryCounters::default());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn zero_threads_clamps_to_one_worker() {
        // Satellite regression: `threads = 0` must mean "serial", not a
        // panic or an empty result, so CLI knobs can pass through as-is.
        let zero = run_parallel(5, 0, |t| t * 3);
        let one = run_parallel(5, 1, |t| t * 3);
        assert_eq!(zero, one);
        assert_eq!(zero, vec![0, 3, 6, 9, 12]);
    }

    #[test]
    fn one_thread_handles_every_trial() {
        let out = run_parallel(9, 1, |t| t + 1);
        assert_eq!(out, (1..=9).collect::<Vec<usize>>());
    }

    #[test]
    fn zero_threads_estimate_matches_one_thread() {
        let g = demo_game();
        let base = ParallelConfig {
            sample: SampleConfig {
                max_permutations: 256,
                target_stderr: 0.0,
                min_permutations: 1,
                antithetic: true,
            },
            batch_permutations: 32,
            round_batches: 4,
            threads: 0,
            coalition_cache: false,
        };
        let zero = parallel_sampled_shapley(&g, &base, 7);
        let one = parallel_sampled_shapley(&g, &ParallelConfig { threads: 1, ..base }, 7);
        for (a, b) in zero.estimate.values.iter().zip(&one.estimate.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn worker_panic_is_surfaced_not_hung() {
        let _ = run_parallel(16, 4, |t| {
            assert!(t != 11, "injected failure");
            t
        });
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn panics_in_every_worker_are_still_one_panic() {
        let _: Vec<usize> = run_parallel(8, 8, |_| panic!("all workers fail"));
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let g = demo_game();
        let base = ParallelConfig {
            sample: SampleConfig {
                max_permutations: 2000,
                target_stderr: 0.02,
                min_permutations: 128,
                antithetic: true,
            },
            batch_permutations: 32,
            round_batches: 8,
            threads: 1,
            coalition_cache: false,
        };
        let reference = parallel_sampled_shapley(&g, &base, 0xFA1C0);
        for threads in [2usize, 8] {
            let config = ParallelConfig { threads, ..base };
            let run = parallel_sampled_shapley(&g, &config, 0xFA1C0);
            assert_eq!(
                run.estimate.permutations, reference.estimate.permutations,
                "threads = {threads}"
            );
            for (a, b) in run.estimate.values.iter().zip(&reference.estimate.values) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
            for (a, b) in run
                .estimate
                .std_errors
                .iter()
                .zip(&reference.estimate.std_errors)
            {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
            assert_eq!(run.trace.points.len(), reference.trace.points.len());
            for (a, b) in run.trace.points.iter().zip(&reference.trace.points) {
                assert_eq!(a.max_std_error.to_bits(), b.max_std_error.to_bits());
                assert_eq!(a.permutations, b.permutations);
            }
        }
    }

    /// Integer-valued demands keep every coalition value exact in f64, so
    /// cached replay is bit-identical to uncached replay (a cache hit
    /// returns the first-computed value for a mask, which could otherwise
    /// differ in the last ulp from a different summation order).
    fn integer_demo_game() -> PeakDemandGame {
        PeakDemandGame::new(vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 4.0, 2.0],
            vec![2.0, 2.0, 5.0],
            vec![0.0, 3.0, 1.0],
            vec![2.0, 1.0, 3.0],
        ])
    }

    #[test]
    fn coalition_cache_preserves_bit_identity_and_counts_hits() {
        let g = integer_demo_game();
        let base = ParallelConfig {
            sample: SampleConfig {
                max_permutations: 1024,
                target_stderr: 0.0,
                min_permutations: 1,
                antithetic: true,
            },
            batch_permutations: 64,
            round_batches: 4,
            threads: 1,
            coalition_cache: false,
        };
        let uncached = parallel_sampled_shapley(&g, &base, 0xCAFE);
        let cached_cfg = ParallelConfig {
            coalition_cache: true,
            ..base
        };
        let cached = parallel_sampled_shapley(&g, &cached_cfg, 0xCAFE);
        for (a, b) in cached.estimate.values.iter().zip(&uncached.estimate.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // With 5 players only 32 coalitions exist, so a 64-permutation
        // batch overwhelmingly hits the cache.
        let c = &cached.estimate.counters;
        assert!(c.cache_hits > 0, "expected cache hits, got {c:?}");
        assert!(
            c.coalition_evals < uncached.estimate.counters.coalition_evals / 2,
            "cache should cut evals ≥ 50%: {} vs {}",
            c.coalition_evals,
            uncached.estimate.counters.coalition_evals
        );
        // The cached schedule is still thread-invariant.
        for threads in [2usize, 8] {
            let run = parallel_sampled_shapley(
                &g,
                &ParallelConfig {
                    threads,
                    ..cached_cfg
                },
                0xCAFE,
            );
            for (a, b) in run.estimate.values.iter().zip(&cached.estimate.values) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
            assert_eq!(
                run.estimate.counters.cache_hits, cached.estimate.counters.cache_hits,
                "hit counts are part of the schedule, threads = {threads}"
            );
        }
    }

    #[test]
    fn converges_to_exact_values() {
        let g = demo_game();
        let exact = exact_shapley(&g).unwrap();
        let run = parallel_sampled_shapley(
            &g,
            &ParallelConfig {
                sample: SampleConfig {
                    max_permutations: 20_000,
                    ..SampleConfig::default()
                },
                ..ParallelConfig::default()
            },
            99,
        );
        for (e, s) in exact.iter().zip(&run.estimate.values) {
            assert!((e - s).abs() < 0.05, "exact {e} sampled {s}");
        }
    }

    #[test]
    fn stopping_rule_halts_on_round_boundary_before_budget() {
        let g = demo_game();
        let config = ParallelConfig {
            sample: SampleConfig {
                max_permutations: 100_000,
                target_stderr: 0.05,
                min_permutations: 100,
                antithetic: true,
            },
            batch_permutations: 64,
            round_batches: 4,
            threads: 2,
            coalition_cache: false,
        };
        let run = parallel_sampled_shapley(&g, &config, 1);
        assert!(run.estimate.permutations < 100_000);
        assert!(run.estimate.max_std_error() <= 0.05);
        // Work stops on a round boundary: a whole number of batches ran.
        assert_eq!(run.estimate.permutations % 64, 0);
        assert_eq!(
            run.estimate.counters.batches as usize * 64,
            run.estimate.permutations
        );
    }

    #[test]
    fn trace_standard_errors_shrink_with_permutations() {
        let g = demo_game();
        let run = parallel_sampled_shapley(
            &g,
            &ParallelConfig {
                sample: SampleConfig {
                    max_permutations: 4096,
                    target_stderr: 0.0,
                    min_permutations: 64,
                    antithetic: true,
                },
                batch_permutations: 64,
                round_batches: 8,
                threads: 4,
                coalition_cache: false,
            },
            5,
        );
        let points = &run.trace.points;
        assert!(points.len() >= 2);
        assert!(points
            .windows(2)
            .all(|w| w[0].permutations < w[1].permutations));
        let first = points.first().unwrap().max_std_error;
        let last = points.last().unwrap().max_std_error;
        assert!(last < first, "stderr should shrink: {first} → {last}");
        assert_eq!(run.trace.final_std_error(), Some(last));
    }

    #[test]
    fn budget_remainder_lands_in_the_final_batch() {
        let g = demo_game();
        let run = parallel_sampled_shapley(
            &g,
            &ParallelConfig {
                sample: SampleConfig {
                    max_permutations: 100, // 1 full batch of 64 + 36
                    target_stderr: 0.0,
                    min_permutations: 1,
                    antithetic: true,
                },
                batch_permutations: 64,
                round_batches: 4,
                threads: 3,
                coalition_cache: false,
            },
            12,
        );
        assert_eq!(run.estimate.permutations, 100);
        assert_eq!(run.estimate.counters.batches, 2);
        assert_eq!(run.estimate.counters.coalition_evals, 100 * 5);
    }

    #[test]
    fn trace_serializes_to_json() {
        let g = demo_game();
        let run = parallel_sampled_shapley(
            &g,
            &ParallelConfig {
                sample: SampleConfig {
                    max_permutations: 128,
                    ..SampleConfig::default()
                },
                ..ParallelConfig::default()
            },
            3,
        );
        let value = serde::Serialize::serialize(&run.trace);
        let points = value.get("points").expect("points field");
        assert_eq!(points.as_array().unwrap().len(), run.trace.points.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        // Satellite invariant: merging per-batch moments reproduces the
        // single-batch statistics for ANY partition of the permutation
        // stream (here: any batch size against a one-batch reference).
        #[test]
        fn any_batch_partition_merges_to_the_single_batch_moments(
            batch in 1usize..96,
            seed in 0u64..1000,
        ) {
            let g = demo_game();
            let total = 96usize;
            let sample = SampleConfig {
                max_permutations: total,
                target_stderr: 0.0,
                min_permutations: 1,
                antithetic: false,
            };
            let whole = parallel_sampled_shapley(
                &g,
                &ParallelConfig {
                    sample,
                    batch_permutations: total,
                    round_batches: 1,
                    threads: 1,
                    coalition_cache: false,
                },
                seed,
            );
            let split = parallel_sampled_shapley(
                &g,
                &ParallelConfig {
                    sample,
                    batch_permutations: batch,
                    round_batches: 7,
                    threads: 3,
                    coalition_cache: false,
                },
                seed,
            );
            prop_assert_eq!(split.estimate.permutations, whole.estimate.permutations);
            // Different batch sizes draw different permutations per batch
            // seed, so values only agree when the partition matches; what
            // must ALWAYS hold is internal consistency: re-merging the
            // split run's batches serially equals the parallel merge.
            let serial = parallel_sampled_shapley(
                &g,
                &ParallelConfig {
                    sample,
                    batch_permutations: batch,
                    round_batches: 7,
                    threads: 1,
                    coalition_cache: false,
                },
                seed,
            );
            for (a, b) in split.estimate.values.iter().zip(&serial.estimate.values) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in split
                .estimate
                .std_errors
                .iter()
                .zip(&serial.estimate.std_errors)
            {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // The same marginal stream grouped into arbitrary batch sizes
        // merges to the one-batch statistics (up to FP associativity).
        #[test]
        fn merged_moments_equal_single_batch_for_any_partition(
            cuts in prop::collection::vec(1usize..8, 1..6),
            seed in 0u64..1000,
        ) {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let g = demo_game();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut order: Vec<usize> = (0..5).collect();
            let mut forward = vec![0.0; 5];
            let mut counters = EvalCounters::default();
            let mut single = Moments::zero(5);
            let mut merged = Moments::zero(5);
            for &cut in &cuts {
                let mut batch = Moments::zero(5);
                for _ in 0..cut {
                    order.shuffle(&mut rng);
                    replay_marginals(&g, &order, &mut forward, &mut counters);
                    batch.record_single(&forward);
                    single.record_single(&forward);
                }
                merged.merge(&batch);
            }
            prop_assert_eq!(merged.permutations(), single.permutations());
            prop_assert_eq!(merged.samples(), single.samples());
            for (m, s) in merged.values().iter().zip(single.values()) {
                prop_assert!((m - s).abs() <= 1e-12 * s.abs().max(1.0));
            }
            for (m, s) in merged.std_errors().iter().zip(single.std_errors()) {
                if s.is_finite() {
                    prop_assert!((m - s).abs() <= 1e-12 * s.abs().max(1.0));
                } else {
                    // A one-permutation stream has no variance estimate on
                    // either path (both report INFINITY).
                    prop_assert!(!m.is_finite());
                }
            }
        }
    }
}
