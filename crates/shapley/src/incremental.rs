//! Incremental Temporal Shapley over an unbounded sample stream.
//!
//! The flat cascade in [`crate::cascade`] attributes a *frozen* trace:
//! every call rescans all `n` samples. A long-lived attribution service
//! ingests 5-minute demand samples forever, so a full recompute per
//! sample would cost `O(n)` each — `O(n²)` over the stream. This module
//! streams instead: the trace is chunked into fixed-size **attribution
//! windows** of `leaf_samples · Π splits` samples (the billing analogue
//! of a monthly statement — carbon is finalized when a window closes,
//! and the open tail has not been attributed yet), and each window's
//! attribution is **bit-identical** to
//! [`TemporalShapley::attribute`](crate::temporal::TemporalShapley::attribute)
//! on that window's slice.
//!
//! Because the window length is an exact multiple of every split ratio,
//! the cascade's remainder rule degenerates to equal division and all
//! period bounds are known up front. That makes every per-sample update
//! O(1) with an O(levels) burst at each leaf boundary:
//!
//! * **Integrals** — the engine maintains the frozen engine's *canonical
//!   lane reduction* ([`crate::cascade::KernelMode::Lane`]): each sample
//!   lands in lane `in_leaf mod CANONICAL_LANES` of the open leaf's lane
//!   vector (one add); when the leaf closes, the lanes collapse through
//!   the fixed pair tree of [`combine_lanes`] and every level
//!   accumulates the whole leaf sum. Lane assignment, combine order, and
//!   leaf-sum order are all functions of the hierarchy shape alone, so
//!   the per-period sums match the frozen lane sweep bit for bit.
//! * **Peaks** — a lane-partitioned running peak folds each sample with
//!   [`f64::max`] and collapses through [`combine_lanes_max`] at leaf
//!   close (bit-identical to any fold order — `max` is associative and
//!   operand-selecting); the closed leaf peak is then folded up the open
//!   parent periods (the *MaxTree tail repair*) exactly as before.
//! * **Window close** — the top-down carbon split reuses
//!   [`split_parent`](crate::cascade), and the leaf signal and billing
//!   prefix come from [`fill_intensity`](crate::cascade) plus the
//!   blocked two-level prefix
//!   ([`fill_prefix_blocked`](crate::cascade)) — the frozen lane
//!   engine's own kernels, over the maintained sums and peaks; no
//!   sample is rescanned.
//!
//! # Re-derivation of the streaming bit-identity (lane canonical)
//!
//! The original engine replayed the scalar fused sweep's adds literally
//! (`levels` adds per sample). Under the lane overhaul the frozen
//! cascade no longer performs those adds; its canonical is: *leaf lane
//! sums by within-leaf offset mod `CANONICAL_LANES`, pair-tree combine,
//! then per-level left-to-right leaf-sum accumulation*. Every term in
//! that reduction is keyed by (leaf index, within-leaf offset) — both
//! known exactly to the streaming engine from `filled` alone — so
//! maintaining the same lanes sample-by-sample reproduces the identical
//! float operations in the identical order, and the
//! frozen-vs-streaming proptests in `tests/incremental.rs` still pin
//! the outputs bit for bit. The per-push cost changes shape: a plain
//! push is 2 ops (one lane add, one lane max) instead of
//! `levels + 1`, and each leaf boundary pays the `O(levels + K)`
//! collapse burst; the ops-counter tests re-pin those constants.
//!
//! The [`IncrementalCascade::ops`] counter pins the complexity: every
//! primitive float operation (add, max, divide) is counted, and the
//! per-sample amortized cost is a constant depending only on the
//! hierarchy shape — `O(levels) = O(log window)` — independent of how
//! many samples the stream has ingested.

use fairco2_trace::series::SeriesError;
use serde::{Deserialize, Serialize};

use crate::cascade::{
    combine_lanes, combine_lanes_max, fill_bounds, fill_intensity, fill_prefix_blocked,
    split_parent, CANONICAL_LANES,
};

/// One closed attribution window's finalized outputs: everything a
/// billing query needs, detached from the engine so snapshots can share
/// it immutably across epochs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowAttribution {
    /// Carbon the whole window was attributed (gCO₂e).
    pub total_carbon: f64,
    /// Leaf `intensity · step` prefix sums over the window
    /// (`window_samples + 1` entries), bit-identical to
    /// [`TemporalAttribution::carbon_prefix`](crate::temporal::TemporalAttribution::carbon_prefix)
    /// of the frozen rebuild.
    pub carbon_prefix: Vec<f64>,
    /// Per-sample leaf intensity signal (gCO₂e per resource·second).
    pub leaf_intensity: Vec<f64>,
    /// Carbon stranded on zero-demand leaf periods.
    pub stranded_carbon: f64,
}

/// The streaming Temporal Shapley engine: ingest samples one at a time,
/// close a [`WindowAttribution`] every `window_samples`, amortized
/// `O(levels)` work per sample.
///
/// ```
/// use fairco2_shapley::incremental::IncrementalCascade;
///
/// let mut engine = IncrementalCascade::new(&[3, 2], 2, 300).unwrap();
/// assert_eq!(engine.window_samples(), 12);
/// for k in 0..12 {
///     let closed = engine.push(1.0 + k as f64);
///     assert_eq!(closed, k == 11);
/// }
/// let window = engine.close_window(1000.0);
/// // prefix[i] accumulates intensity · step: a workload with constant
/// // unit demand over the whole window is billed prefix[12] gCO₂e.
/// assert_eq!(window.carbon_prefix.len(), 13);
/// assert!(window.carbon_prefix.windows(2).all(|w| w[1] >= w[0]));
/// assert_eq!(window.stranded_carbon, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalCascade {
    splits: Vec<usize>,
    step: u32,
    stepf: f64,
    window_samples: usize,
    leaf_samples: usize,
    /// Fixed per-window period bounds (exact equal division, so they are
    /// identical for every window).
    bounds: Vec<Vec<usize>>,
    /// Samples ingested into the open window.
    filled: usize,
    /// Within-leaf offset of the next sample (selects its lane).
    in_leaf: usize,
    /// Lane sums of the open leaf period: lane `j` accumulates the
    /// samples at within-leaf offsets `≡ j (mod CANONICAL_LANES)` —
    /// exactly the frozen lane sweep's partition.
    open_lane: [f64; CANONICAL_LANES],
    /// Lane peaks of the open leaf period (same partition, `f64::max`).
    open_peak_lane: [f64; CANONICAL_LANES],
    /// Per-level running integral accumulators; each receives whole leaf
    /// sums in leaf order, the frozen lane sweep's accumulation order.
    acc: Vec<f64>,
    /// Per-level index of the next period boundary in `bounds[l]`.
    next: Vec<usize>,
    /// Like `next`, tracked separately for the peak tail repair (which
    /// runs before the integral close at the same boundary).
    next_peak: Vec<usize>,
    /// Closed leaf-period peaks of the open window.
    leaf_peaks: Vec<f64>,
    /// `open_peaks[l]`: running peak of the open period at intermediate
    /// level `l` (`1 <= l < levels - 1`), folded from its children's
    /// closed peaks.
    open_peaks: Vec<f64>,
    /// Closed intermediate-level period peaks of the open window.
    level_peaks: Vec<Vec<f64>>,
    /// `q[l]`: closed per-period integrals of the open window.
    q: Vec<Vec<f64>>,
    /// Per-level carbon scratch for the window-close split pass.
    carbon: Vec<Vec<f64>>,
    phi: Vec<f64>,
    order: Vec<usize>,
    weights: Vec<f64>,
    ops: u64,
    windows_closed: u64,
}

impl IncrementalCascade {
    /// A streaming engine with hierarchy `splits` (coarsest first, as in
    /// [`TemporalShapley::new`](crate::temporal::TemporalShapley::new)),
    /// `leaf_samples` samples per finest period, and a sampling step of
    /// `step` seconds. The window length is `leaf_samples · Π splits`.
    ///
    /// # Errors
    ///
    /// [`SeriesError::ZeroStep`] when `step == 0`;
    /// [`SeriesError::Empty`] when `leaf_samples == 0`;
    /// [`SeriesError::OutOfRange`] when any split ratio is zero or the
    /// window length overflows `usize`.
    pub fn new(splits: &[usize], leaf_samples: usize, step: u32) -> Result<Self, SeriesError> {
        if step == 0 {
            return Err(SeriesError::ZeroStep);
        }
        if leaf_samples == 0 {
            return Err(SeriesError::Empty);
        }
        let mut window_samples = leaf_samples;
        for &m in splits {
            window_samples = window_samples
                .checked_mul(m)
                .filter(|_| m > 0)
                .ok_or(SeriesError::OutOfRange)?;
        }
        let mut bounds = Vec::new();
        fill_bounds(&mut bounds, window_samples, splits)?;
        let levels = splits.len() + 1;
        Ok(Self {
            splits: splits.to_vec(),
            step,
            stepf: f64::from(step),
            window_samples,
            leaf_samples,
            bounds,
            filled: 0,
            in_leaf: 0,
            open_lane: [0.0; CANONICAL_LANES],
            open_peak_lane: [f64::NEG_INFINITY; CANONICAL_LANES],
            acc: vec![0.0; levels],
            next: vec![1; levels],
            next_peak: vec![1; levels],
            leaf_peaks: Vec::new(),
            open_peaks: vec![f64::NEG_INFINITY; levels],
            level_peaks: vec![Vec::new(); levels],
            q: vec![Vec::new(); levels],
            carbon: vec![Vec::new(); levels],
            phi: Vec::new(),
            order: Vec::new(),
            weights: Vec::new(),
            ops: 0,
            windows_closed: 0,
        })
    }

    /// Samples per attribution window (`leaf_samples · Π splits`).
    pub fn window_samples(&self) -> usize {
        self.window_samples
    }

    /// Samples per finest-level period.
    pub fn leaf_samples(&self) -> usize {
        self.leaf_samples
    }

    /// The hierarchy split ratios, coarsest first.
    pub fn splits(&self) -> &[usize] {
        &self.splits
    }

    /// Sampling step in seconds.
    pub fn step(&self) -> u32 {
        self.step
    }

    /// Samples ingested into the currently open window.
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Primitive float operations performed since construction — the
    /// complexity pin: after `k` full windows this is exactly
    /// `k · ops-per-window`, and divided by the samples ingested it is a
    /// constant in the stream length (see the module docs).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Ingests one demand sample into the open window; returns `true`
    /// when the window just filled — the caller must then invoke
    /// [`IncrementalCascade::close_window`] before pushing further
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if the window is already full, or if `value` is negative
    /// or non-finite (the peak game is defined over non-negative finite
    /// demand; see
    /// [`peak_shapley`](crate::temporal::peak_shapley)).
    pub fn push(&mut self, value: f64) -> bool {
        assert!(
            self.filled < self.window_samples,
            "window is full; close_window before pushing more samples"
        );
        assert!(
            value.is_finite() && value >= 0.0,
            "demand samples must be non-negative and finite, got {value}"
        );
        // Same lane, same add, as the frozen lane sweep: one add and one
        // max per sample regardless of the hierarchy depth.
        let lane = self.in_leaf % CANONICAL_LANES;
        self.open_lane[lane] += value;
        self.open_peak_lane[lane] = f64::max(self.open_peak_lane[lane], value);
        self.in_leaf += 1;
        self.filled += 1;
        self.ops += 2;

        let levels = self.bounds.len();
        if self.bounds[levels - 1][self.next[levels - 1]] == self.filled {
            // The open leaf period closes: collapse the lanes through
            // the canonical pair trees (the frozen sweep's exact combine
            // order), then repair the MaxTree tail — fold the closed
            // peak into the open parent periods, closing each parent
            // whose boundary this also is. Stops at the first level that
            // stays open (bounds are nested, so no coarser level can
            // close either).
            let leaf_sum = combine_lanes(self.open_lane);
            let leaf_peak = combine_lanes_max(self.open_peak_lane);
            self.open_lane = [0.0; CANONICAL_LANES];
            self.open_peak_lane = [f64::NEG_INFINITY; CANONICAL_LANES];
            self.in_leaf = 0;
            self.ops += 2 * (CANONICAL_LANES as u64 - 1);
            self.leaf_peaks.push(leaf_peak);
            let mut child = leaf_peak;
            for l in (1..levels.saturating_sub(1)).rev() {
                self.open_peaks[l] = f64::max(self.open_peaks[l], child);
                self.ops += 1;
                if self.bounds[l][self.next_peak[l]] == self.filled {
                    child = self.open_peaks[l];
                    self.level_peaks[l].push(child);
                    self.open_peaks[l] = f64::NEG_INFINITY;
                    self.next_peak[l] += 1;
                } else {
                    break;
                }
            }
            // Every level accumulates the whole leaf sum, then closes
            // its integral if this is its boundary — the frozen lane
            // sweep's leaf-fold and level order.
            for a in self.acc.iter_mut() {
                *a += leaf_sum;
            }
            self.ops += self.acc.len() as u64;
            for l in 0..levels {
                if self.bounds[l][self.next[l]] == self.filled {
                    self.q[l].push(self.acc[l] * self.stepf);
                    self.acc[l] = 0.0;
                    self.next[l] += 1;
                    self.ops += 1;
                }
            }
        }
        self.filled == self.window_samples
    }

    /// Finalizes the filled window: splits `total_carbon` down the
    /// hierarchy with the frozen engine's own kernels over the
    /// maintained sums and peaks (no sample is rescanned), resets the
    /// engine for the next window, and returns the window's outputs —
    /// bit-identical to
    /// [`TemporalShapley::attribute`](crate::temporal::TemporalShapley::attribute)
    /// on the same `window_samples` slice with the same carbon.
    ///
    /// # Panics
    ///
    /// Panics if the window is not exactly full.
    pub fn close_window(&mut self, total_carbon: f64) -> WindowAttribution {
        assert_eq!(
            self.filled, self.window_samples,
            "close_window needs a full window"
        );
        let levels = self.bounds.len();
        let step = self.stepf;
        self.carbon[0].clear();
        self.carbon[0].push(total_carbon);
        for (level, &m) in self.splits.iter().enumerate() {
            let parents = self.bounds[level].len() - 1;
            let (parent_carbon, child_carbon) = {
                let (a, b) = self.carbon.split_at_mut(level + 1);
                (&a[level], &mut b[0])
            };
            child_carbon.clear();
            let child_bounds = &self.bounds[level + 1];
            let child_q = &self.q[level + 1];
            let child_peaks: &[f64] = if level + 2 == levels {
                &self.leaf_peaks
            } else {
                &self.level_peaks[level + 1]
            };
            for p in 0..parents {
                split_parent(
                    &child_bounds[p * m..(p + 1) * m + 1],
                    &child_q[p * m..(p + 1) * m],
                    &child_peaks[p * m..(p + 1) * m],
                    parent_carbon[p],
                    step,
                    &mut self.phi,
                    &mut self.order,
                    &mut self.weights,
                    child_carbon,
                );
                self.ops += (m * m.ilog2().max(1) as usize) as u64 + 3 * m as u64;
            }
        }
        let mut leaf_intensity = Vec::new();
        let mut carbon_prefix = Vec::new();
        let mut stranded = 0.0;
        fill_intensity(
            self.bounds.last().expect("at least the root level"),
            self.q.last().expect("at least the root level"),
            self.carbon.last().expect("at least the root level"),
            &mut leaf_intensity,
            self.window_samples,
            &mut stranded,
        );
        fill_prefix_blocked(&leaf_intensity, step, &mut carbon_prefix);
        // Leaf fill ≈ one divide per leaf period amortized over its
        // samples, blocked prefix ≈ one multiply + one add per sample
        // plus the carry pass: count 3 ops per sample.
        self.ops += 3 * self.window_samples as u64 + 1;

        self.filled = 0;
        self.in_leaf = 0;
        self.open_lane = [0.0; CANONICAL_LANES];
        self.open_peak_lane = [f64::NEG_INFINITY; CANONICAL_LANES];
        self.acc.fill(0.0);
        self.next.fill(1);
        self.next_peak.fill(1);
        self.leaf_peaks.clear();
        self.open_peaks.fill(f64::NEG_INFINITY);
        for peaks in &mut self.level_peaks {
            peaks.clear();
        }
        for sums in &mut self.q {
            sums.clear();
        }
        self.windows_closed += 1;
        WindowAttribution {
            total_carbon,
            carbon_prefix,
            leaf_intensity,
            stranded_carbon: stranded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(matches!(
            IncrementalCascade::new(&[2], 4, 0),
            Err(SeriesError::ZeroStep)
        ));
        assert!(matches!(
            IncrementalCascade::new(&[2], 0, 300),
            Err(SeriesError::Empty)
        ));
        assert!(matches!(
            IncrementalCascade::new(&[0], 4, 300),
            Err(SeriesError::OutOfRange)
        ));
    }

    #[test]
    #[should_panic(expected = "close_window needs a full window")]
    fn close_requires_a_full_window() {
        let mut engine = IncrementalCascade::new(&[2], 2, 300).unwrap();
        engine.push(1.0);
        let _ = engine.close_window(10.0);
    }

    #[test]
    #[should_panic(expected = "non-negative and finite")]
    fn rejects_negative_demand() {
        let mut engine = IncrementalCascade::new(&[2], 2, 300).unwrap();
        engine.push(-1.0);
    }

    #[test]
    fn no_split_hierarchy_streams_the_root_window() {
        let mut engine = IncrementalCascade::new(&[], 3, 300).unwrap();
        assert_eq!(engine.window_samples(), 3);
        assert!(!engine.push(1.0));
        assert!(!engine.push(2.0));
        assert!(engine.push(3.0));
        let window = engine.close_window(600.0);
        assert_eq!(window.carbon_prefix.len(), 4);
        // One root period: q = (1+2+3)·300 = 1800, intensity = 600/1800,
        // prefix[3] = 3 · intensity · 300 = 300 (what one unit of demand
        // held for the whole window is billed).
        assert!((window.carbon_prefix[3] - 300.0).abs() < 1e-12);
        assert_eq!(window.stranded_carbon, 0.0);
        assert_eq!(engine.windows_closed(), 1);
        assert_eq!(engine.filled(), 0);
    }
}
