//! An incremental-max structure over time steps.
//!
//! The peak-demand game needs `max_t Σ_p demand[p][t]` after every player
//! insertion or toggle. Maintaining the per-step sums and re-scanning the
//! whole horizon (`sums.iter().fold(0.0, f64::max)`) costs `O(steps)` per
//! update even when the player touches a handful of steps. [`MaxTree`] is
//! a flat segment tree holding the running sums in its leaves and the
//! pairwise maximum in its internal nodes: a point update costs
//! `O(log steps)` and the global maximum is read off the root in `O(1)`.
//!
//! Equality with the scan: internal nodes combine with [`f64::max`], the
//! same operator the fold used, and [`MaxTree::max`] clamps the root at
//! `0.0` — exactly the fold's initial accumulator — so the result equals
//! the old scan bit-for-bit on any leaf contents the scan could produce.

/// Segment tree over per-time-step demand sums with `O(log steps)` point
/// updates and an `O(1)` global maximum.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxTree {
    /// Number of real leaves (time steps).
    leaves: usize,
    /// Leaf capacity: `leaves` rounded up to a power of two.
    cap: usize,
    /// 1-indexed heap layout: `tree[1]` is the root, leaf `t` lives at
    /// `tree[cap + t]`.
    tree: Vec<f64>,
}

impl MaxTree {
    /// An all-zero tree over `leaves` time steps.
    ///
    /// # Panics
    ///
    /// Panics if `leaves == 0` — a peak over no time steps is undefined.
    pub fn new(leaves: usize) -> Self {
        assert!(leaves > 0, "max tree needs at least one leaf");
        let cap = leaves.next_power_of_two();
        Self {
            leaves,
            cap,
            tree: vec![0.0; 2 * cap],
        }
    }

    /// Number of real leaves.
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// Resets every sum to zero without releasing the allocation.
    pub fn reset(&mut self) {
        self.tree.fill(0.0);
    }

    /// Current sum at time step `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= leaves`.
    pub fn leaf(&self, t: usize) -> f64 {
        assert!(t < self.leaves, "time step out of range");
        self.tree[self.cap + t]
    }

    /// Adds `delta` to the sum at time step `t` and repairs the max path
    /// to the root.
    ///
    /// # Panics
    ///
    /// Panics if `t >= leaves`.
    pub fn add(&mut self, t: usize, delta: f64) {
        assert!(t < self.leaves, "time step out of range");
        let mut node = self.cap + t;
        self.tree[node] += delta;
        while node > 1 {
            node /= 2;
            let refreshed = f64::max(self.tree[2 * node], self.tree[2 * node + 1]);
            // A parent that is bit-identical after the refresh leaves all
            // its ancestors bit-identical too (they depend on the child
            // values only), so the climb can stop — this turns clustered
            // updates (a workload's contiguous slice window) into climbs
            // of one or two levels each.
            if refreshed.to_bits() == self.tree[node].to_bits() {
                return;
            }
            self.tree[node] = refreshed;
        }
    }

    /// The maximum sum over all time steps, clamped below at `0.0` —
    /// matching the `fold(0.0, f64::max)` scan it replaces (and the empty
    /// coalition's value contract `v(∅) = 0`).
    pub fn max(&self) -> f64 {
        f64::max(self.tree[1], 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_max(sums: &[f64]) -> f64 {
        sums.iter().copied().fold(0.0, f64::max)
    }

    #[test]
    fn tracks_point_updates() {
        let mut t = MaxTree::new(5);
        assert_eq!(t.max(), 0.0);
        t.add(3, 4.5);
        assert_eq!(t.max(), 4.5);
        t.add(0, 7.0);
        assert_eq!(t.max(), 7.0);
        t.add(0, -7.0);
        assert_eq!(t.max(), 4.5);
        assert_eq!(t.leaf(3), 4.5);
        assert_eq!(t.leaf(0), 0.0);
    }

    #[test]
    fn reset_restores_zero_without_realloc() {
        let mut t = MaxTree::new(3);
        t.add(1, 9.0);
        t.reset();
        assert_eq!(t.max(), 0.0);
        assert_eq!(t.leaf(1), 0.0);
    }

    #[test]
    fn matches_full_scan_on_random_updates() {
        // Deterministic pseudo-random update stream; the tree root must
        // equal the naive scan after every single update.
        let steps = 13; // non-power-of-two to exercise padding
        let mut tree = MaxTree::new(steps);
        let mut sums = vec![0.0f64; steps];
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = (state >> 33) as usize % steps;
            let delta = ((state >> 11) as i32 % 1000) as f64 / 8.0;
            tree.add(t, delta);
            sums[t] += delta;
            assert_eq!(tree.max().to_bits(), scan_max(&sums).to_bits());
            assert_eq!(tree.leaf(t).to_bits(), sums[t].to_bits());
        }
    }

    #[test]
    fn negative_sums_clamp_at_zero_like_the_scan() {
        let mut t = MaxTree::new(2);
        t.add(0, -3.0);
        t.add(1, -1.0);
        assert_eq!(t.max(), 0.0);
        assert_eq!(t.max(), scan_max(&[-3.0, -1.0]));
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn zero_leaves_panics() {
        let _ = MaxTree::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_leaf_panics() {
        let mut t = MaxTree::new(2);
        t.add(2, 1.0);
    }
}
