//! Coalition (player subset) representation.

use std::fmt;

/// A subset of players, stored as a bitset.
///
/// Supports any number of players; the exact enumerating solver restricts
/// itself to coalitions that fit one machine word, but sampling and the
/// analytic solvers use this type at arbitrary sizes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Coalition {
    n: usize,
    words: Vec<u64>,
}

impl Coalition {
    /// The empty coalition over `n` players.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// The grand coalition (all `n` players).
    pub fn grand(n: usize) -> Self {
        let mut c = Self::empty(n);
        for p in 0..n {
            c.insert(p);
        }
        c
    }

    /// Builds a coalition from an iterator of player indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= n`.
    pub fn from_players(n: usize, players: impl IntoIterator<Item = usize>) -> Self {
        let mut c = Self::empty(n);
        for p in players {
            c.insert(p);
        }
        c
    }

    /// Builds a coalition over ≤ 64 players from a bitmask.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` or the mask has bits at or above `n`.
    pub fn from_mask(n: usize, mask: u64) -> Self {
        assert!(n <= 64, "mask construction supports at most 64 players");
        assert!(
            n == 64 || mask < (1u64 << n),
            "mask has bits outside the player range"
        );
        Self {
            n,
            words: vec![mask],
        }
    }

    /// Overwrites the membership with `mask` in place, without
    /// allocating — the enumeration hot paths sweep `2ⁿ` masks through
    /// one reused coalition instead of building `2ⁿ` fresh ones.
    ///
    /// # Panics
    ///
    /// Panics if the coalition spans more than 64 players or the mask has
    /// bits at or above `n`.
    pub fn set_mask(&mut self, mask: u64) {
        assert!(self.n <= 64, "mask assignment supports at most 64 players");
        assert!(
            self.n == 64 || mask < (1u64 << self.n),
            "mask has bits outside the player range"
        );
        // A zero-player coalition stores no words; the asserts above have
        // already forced `mask == 0` in that case.
        if let Some(word) = self.words.first_mut() {
            *word = mask;
        }
    }

    /// Number of players in the underlying game.
    pub fn player_count(&self) -> usize {
        self.n
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the coalition has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether `player` is a member.
    ///
    /// # Panics
    ///
    /// Panics if `player >= n`.
    pub fn contains(&self, player: usize) -> bool {
        assert!(player < self.n, "player index out of range");
        self.words[player / 64] >> (player % 64) & 1 == 1
    }

    /// Adds `player`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `player >= n`.
    pub fn insert(&mut self, player: usize) -> bool {
        assert!(player < self.n, "player index out of range");
        let word = &mut self.words[player / 64];
        let bit = 1u64 << (player % 64);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Removes `player`; returns whether it was a member.
    ///
    /// # Panics
    ///
    /// Panics if `player >= n`.
    pub fn remove(&mut self, player: usize) -> bool {
        assert!(player < self.n, "player index out of range");
        let word = &mut self.words[player / 64];
        let bit = 1u64 << (player % 64);
        let present = *word & bit != 0;
        *word &= !bit;
        present
    }

    /// Iterates over member indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rem = w;
            std::iter::from_fn(move || {
                if rem == 0 {
                    None
                } else {
                    let bit = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

impl fmt::Display for Coalition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, p) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for Coalition {
    /// Collects player indices; the player count becomes
    /// `max index + 1` (or 0 when empty).
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let players: Vec<usize> = iter.into_iter().collect();
        let n = players.iter().copied().max().map_or(0, |m| m + 1);
        Self::from_players(n, players)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut c = Coalition::empty(100);
        assert!(c.is_empty());
        assert!(c.insert(99));
        assert!(!c.insert(99));
        assert!(c.insert(3));
        assert_eq!(c.len(), 2);
        assert!(c.contains(99) && c.contains(3) && !c.contains(4));
        assert!(c.remove(3));
        assert!(!c.remove(3));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn iteration_order_is_ascending() {
        let c = Coalition::from_players(130, [128, 0, 64, 5]);
        let members: Vec<usize> = c.iter().collect();
        assert_eq!(members, vec![0, 5, 64, 128]);
    }

    #[test]
    fn grand_and_mask() {
        let g = Coalition::grand(70);
        assert_eq!(g.len(), 70);
        let m = Coalition::from_mask(4, 0b1010);
        assert!(m.contains(1) && m.contains(3) && !m.contains(0));
        assert_eq!(m.to_string(), "{1, 3}");
    }

    #[test]
    #[should_panic(expected = "outside the player range")]
    fn oversized_mask_panics() {
        let _ = Coalition::from_mask(3, 0b1000);
    }

    #[test]
    fn from_iterator_infers_player_count() {
        let c: Coalition = [2usize, 7].into_iter().collect();
        assert_eq!(c.player_count(), 8);
        assert_eq!(c.len(), 2);
    }
}
