//! Ground-truth Shapley values by exhaustive subset enumeration.
//!
//! This is the paper's "ground truth Shapley value method" (Eq. 1):
//! every coalition is evaluated and every player's marginal contribution
//! is averaged with the exact combinatorial weights. The cost is
//! `Θ(2ⁿ)` coalition evaluations plus `Θ(n·2ⁿ)` accumulation steps, which
//! is why the paper caps its demand scenarios at 22 workloads — and why
//! Fair-CO₂ exists.

use std::fmt;

use crate::cascade::{combine_lanes, CANONICAL_LANES};
use crate::coalition::Coalition;
use crate::game::Game;
use crate::maxtree::MaxTree;
use crate::parallel::run_parallel;

/// Hard cap on exact enumeration: `2²⁴` values ≈ 128 MiB of table.
///
/// Peak memory at the cap is the value table plus allocator slack and
/// nothing else: measured peak RSS (`VmHWM` from `/proc/self/status`) of
/// a 24-player run on the CI container is 130.0 MiB for `exact_shapley`
/// and 134.2 MiB for `parallel_exact_shapley` — [`shapley_from_table`]
/// streams the table in cache-friendly blocks rather than materializing
/// any per-player copy, and the parallel fill writes the single table in
/// place instead of assembling per-chunk buffers. Reproduce with
/// `perf_report --max-n 24`, which records the same counter.
pub const MAX_EXACT_PLAYERS: usize = 24;

/// Masks per block when streaming the value table. Blocks are the unit
/// of both cache blocking (`2¹⁶` masks = 512 KiB of table, so a block's
/// φ scatter stays in L2) and of the parallel accumulation fan-out; the
/// per-block partials are merged in ascending block order, which is what
/// keeps [`parallel_exact_shapley`] bit-identical to the serial solver.
const TABLE_BLOCK_MASKS: u64 = 1 << 16;

/// Error from the exact solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactError {
    /// The game has more players than enumeration can handle.
    TooManyPlayers {
        /// Player count of the offending game.
        n: usize,
        /// The enumeration cap ([`MAX_EXACT_PLAYERS`]).
        max: usize,
    },
    /// The game has no players.
    NoPlayers,
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::TooManyPlayers { n, max } => {
                write!(f, "{n} players exceed the exact-enumeration cap of {max}")
            }
            ExactError::NoPlayers => write!(f, "game has no players"),
        }
    }
}

impl std::error::Error for ExactError {}

/// A game whose coalition value can be updated as single players are
/// *toggled* in or out, letting the exact solver fill its `2ⁿ` value table
/// in Gray-code order with `O(toggle)` work per coalition instead of a
/// full characteristic-function evaluation.
pub trait DeltaGame: Game {
    /// Mutable evaluation state of the current coalition.
    type State;

    /// State of the empty coalition.
    fn initial_state(&self) -> Self::State;

    /// Adds `player` if absent or removes it if present, returning the
    /// value of the updated coalition.
    fn toggle(&self, state: &mut Self::State, player: usize) -> f64;
}

/// Computes exact Shapley values by evaluating the characteristic
/// function on all `2ⁿ` coalitions.
///
/// # Example
///
/// ```
/// use fairco2_shapley::exact_shapley;
/// use fairco2_shapley::game::PeakDemandGame;
///
/// // Two workloads with anti-correlated demand: each is sole author of
/// // its own peak, so each pays exactly its own peak's increment.
/// let game = PeakDemandGame::new(vec![vec![4.0, 0.0], vec![0.0, 3.0]]);
/// let phi = exact_shapley(&game)?;
/// assert!((phi[0] - 2.5).abs() < 1e-12); // ½·4 + ½·(4−3)… averaged orders
/// assert!((phi[0] + phi[1] - 4.0).abs() < 1e-12); // efficiency
/// # Ok::<(), fairco2_shapley::exact::ExactError>(())
/// ```
///
/// # Errors
///
/// Returns [`ExactError::TooManyPlayers`] beyond [`MAX_EXACT_PLAYERS`]
/// players and [`ExactError::NoPlayers`] for an empty game.
pub fn exact_shapley<G: Game>(game: &G) -> Result<Vec<f64>, ExactError> {
    let n = check_size(game)?;
    // One coalition reused across the sweep: `set_mask` rewrites the
    // membership in place, so the fill performs no per-mask allocation.
    let mut coalition = Coalition::empty(n);
    let table: Vec<f64> = (0u64..1 << n)
        .map(|mask| {
            coalition.set_mask(mask);
            game.value(&coalition)
        })
        .collect();
    Ok(shapley_from_table(n, &table))
}

/// [`exact_shapley`] with both phases fanned out across worker threads:
/// the `2ⁿ` table fill writes disjoint `chunks_mut` ranges of the final
/// table in place (each value is a pure function of its mask, so the
/// partition cannot affect any entry) and the `Θ(n·2ⁿ)` accumulation is
/// chunked per player through [`run_parallel`]. Every per-mask /
/// per-player computation is performed exactly as in the serial solver —
/// so the result is **bit-identical** to [`exact_shapley`] at any thread
/// count. Filling in place also means the table is allocated exactly
/// once; assembling per-chunk buffers would transiently double peak
/// memory at the [`MAX_EXACT_PLAYERS`] cap.
///
/// `threads = 0` is clamped to one worker.
///
/// # Errors
///
/// Same conditions as [`exact_shapley`].
pub fn parallel_exact_shapley<G>(game: &G, threads: usize) -> Result<Vec<f64>, ExactError>
where
    G: Game + Sync,
{
    let n = check_size(game)?;
    let size = 1usize << n;
    let threads = threads.clamp(1, size);
    let mut table = vec![0.0f64; size];
    let chunk_len = size.div_ceil(threads);
    std::thread::scope(|scope| {
        for (worker, chunk) in table.chunks_mut(chunk_len).enumerate() {
            let base = (worker * chunk_len) as u64;
            scope.spawn(move || {
                let mut coalition = Coalition::empty(n);
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    coalition.set_mask(base + offset as u64);
                    *slot = game.value(&coalition);
                }
            });
        }
    });
    Ok(parallel_shapley_from_table(n, &table, threads))
}

/// Computes exact Shapley values using Gray-code toggling, avoiding a full
/// characteristic-function evaluation per coalition. Produces identical
/// results to [`exact_shapley`] up to floating-point accumulation order.
///
/// # Errors
///
/// Same conditions as [`exact_shapley`].
pub fn exact_shapley_fast<G: DeltaGame>(game: &G) -> Result<Vec<f64>, ExactError> {
    let mut scratch = ExactScratch::new();
    exact_shapley_fast_with_scratch(game, &mut scratch).map(<[f64]>::to_vec)
}

/// Reusable buffers for the Gray-code exact solver: the `2ⁿ` value table
/// plus the φ and weight vectors.
///
/// A Monte Carlo study calling the exact solver once per trial spends a
/// large share of its time allocating, page-faulting, and freeing a fresh
/// table (32 MiB at the paper's 22-workload cap) every trial. A scratch
/// grown once to the study's player cap
/// ([`reserve_players`](Self::reserve_players)) turns that into O(workers)
/// large allocations per study: the Gray-code walk rewrites every entry it
/// reads, so reuse needs no clearing beyond re-seeding the empty-coalition
/// slot.
#[derive(Debug, Default)]
pub struct ExactScratch {
    table: Vec<f64>,
    phi: Vec<f64>,
    weights: Vec<f64>,
    grows: u64,
    reuses: u64,
}

impl ExactScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-grown for games of up to `players` players.
    ///
    /// # Panics
    ///
    /// Panics if `players` exceeds [`MAX_EXACT_PLAYERS`].
    pub fn for_players(players: usize) -> Self {
        let mut scratch = Self::default();
        scratch.reserve_players(players);
        scratch
    }

    /// Grows the buffers to hold a `players`-player solve, counting one
    /// growth if any buffer actually grew. Never shrinks.
    ///
    /// # Panics
    ///
    /// Panics if `players` exceeds [`MAX_EXACT_PLAYERS`].
    pub fn reserve_players(&mut self, players: usize) {
        assert!(
            players <= MAX_EXACT_PLAYERS,
            "{players} players exceed the exact-enumeration cap of {MAX_EXACT_PLAYERS}"
        );
        let size = 1usize << players;
        if self.table.len() < size || self.phi.len() < players {
            self.grows += 1;
        }
        if self.table.len() < size {
            self.table.resize(size, 0.0);
        }
        if self.phi.len() < players {
            self.phi.resize(players, 0.0);
            self.weights.resize(players, 0.0);
        }
    }

    /// Number of solver calls (or explicit reservations) that had to grow
    /// a buffer.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Number of solver calls served entirely from existing capacity.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Bytes currently held by the coalition value table.
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<f64>()
    }
}

/// [`exact_shapley_fast`] writing through a reusable [`ExactScratch`]:
/// bit-identical results, but the value table, φ, and weight buffers are
/// reused across calls instead of reallocated. Returns the φ values as a
/// slice into the scratch (valid until the next call).
///
/// # Errors
///
/// Same conditions as [`exact_shapley`].
pub fn exact_shapley_fast_with_scratch<'a, G: DeltaGame>(
    game: &G,
    scratch: &'a mut ExactScratch,
) -> Result<&'a [f64], ExactError> {
    let n = check_size(game)?;
    let size = 1usize << n;
    if scratch.table.len() >= size && scratch.phi.len() >= n {
        scratch.reuses += 1;
    } else {
        scratch.reserve_players(n);
    }
    let table = &mut scratch.table[..size];
    // Every entry except the empty coalition is rewritten by the Gray
    // walk below; slot 0 must be re-seeded because a previous (larger)
    // solve may have left a stale value there.
    table[0] = 0.0;
    let mut state = game.initial_state();
    // Walk coalitions in Gray-code order: consecutive codes differ in
    // exactly one bit, so one toggle per step fills the whole table.
    let mut prev_gray = 0u64;
    for k in 1..size as u64 {
        let gray = k ^ (k >> 1);
        let flipped = (gray ^ prev_gray).trailing_zeros() as usize;
        let v = game.toggle(&mut state, flipped);
        table[gray as usize] = v;
        prev_gray = gray;
    }
    shapley_from_table_into(n, table, &mut scratch.weights[..n], &mut scratch.phi[..n]);
    Ok(&scratch.phi[..n])
}

fn check_size<G: Game>(game: &G) -> Result<usize, ExactError> {
    let n = game.player_count();
    if n == 0 {
        return Err(ExactError::NoPlayers);
    }
    if n > MAX_EXACT_PLAYERS {
        return Err(ExactError::TooManyPlayers {
            n,
            max: MAX_EXACT_PLAYERS,
        });
    }
    Ok(n)
}

/// Step-count threshold below which the peak-demand toggle state keeps a
/// flat per-step sum array re-scanned in full, instead of a [`MaxTree`].
/// At the paper's 4–9 time slices a branch-free scan over ≤ 64 contiguous
/// `f64`s beats the tree's pointer-arithmetic update path by ~4× on the
/// `2ⁿ`-toggle fill; the tree still wins asymptotically, so long horizons
/// keep it.
const SCAN_FILL_MAX_STEPS: usize = 64;

/// Toggle state of [`PeakDemandGame`](crate::game::PeakDemandGame):
/// per-time-step coalition sums, kept flat or in a [`MaxTree`] depending
/// on the horizon (see [`SCAN_FILL_MAX_STEPS`]). Both variants apply the
/// same per-step additions and report the same maximum over the same
/// sums — `max` selects an existing value and never rounds — so the
/// choice never changes a value bit.
#[derive(Debug)]
pub enum PeakFill {
    /// Flat sums plus the running peak, maintained incrementally: a
    /// toggle compares the touched slots against the stored peak and only
    /// re-scans the array when it lowered a slot that held the peak.
    Scan {
        /// Per-time-step coalition sums.
        sums: Vec<f64>,
        /// `max(0, sums)` of the current coalition.
        peak: f64,
    },
    /// Segment-tree sums, peak read off the root.
    Tree(MaxTree),
}

impl DeltaGame for crate::game::PeakDemandGame {
    /// Per-time-step sums (flat or tree, per [`PeakFill`]) plus explicit
    /// membership flags; a toggle applies the player's sparse support and
    /// returns the updated peak.
    type State = (PeakFill, Vec<bool>);

    fn initial_state(&self) -> Self::State {
        let sums = if self.steps() <= SCAN_FILL_MAX_STEPS {
            PeakFill::Scan {
                sums: vec![0.0; self.steps()],
                peak: 0.0,
            }
        } else {
            PeakFill::Tree(MaxTree::new(self.steps()))
        };
        (sums, vec![false; self.player_count()])
    }

    fn toggle(&self, (fill, members): &mut Self::State, player: usize) -> f64 {
        let sign = if members[player] { -1.0 } else { 1.0 };
        members[player] = !members[player];
        match fill {
            PeakFill::Scan { sums, peak } => {
                let mut before = f64::NEG_INFINITY;
                let mut after = f64::NEG_INFINITY;
                for &(t, d) in self.support(player) {
                    let s = &mut sums[t as usize];
                    before = before.max(*s);
                    *s += sign * d;
                    after = after.max(*s);
                }
                // Exact case split on where the old peak lived:
                // * `before < peak` — the peak is at an untouched slot, so
                //   it still caps them and only `after` can beat it;
                // * `after >= peak` — a touched slot now holds (at least)
                //   the old peak, which already capped every other slot;
                // * otherwise a slot holding the peak was lowered below
                //   it, and only a full scan knows the new peak.
                *peak = if before < *peak {
                    peak.max(after)
                } else if after >= *peak {
                    after
                } else {
                    sums.iter().copied().fold(0.0, f64::max)
                };
                *peak
            }
            PeakFill::Tree(sums) => {
                for &(t, d) in self.support(player) {
                    sums.add(t as usize, sign * d);
                }
                sums.max()
            }
        }
    }
}

impl DeltaGame for crate::game::ScanPeak {
    /// The original dense layout: per-time-step sums plus membership
    /// flags, re-scanned in full after every toggle. Reference path for
    /// the equality pins and the `toggle` bench.
    type State = (Vec<f64>, Vec<bool>);

    fn initial_state(&self) -> Self::State {
        (vec![0.0; self.0.steps()], vec![false; self.player_count()])
    }

    fn toggle(&self, (sums, members): &mut Self::State, player: usize) -> f64 {
        let sign = if members[player] { -1.0 } else { 1.0 };
        members[player] = !members[player];
        for (s, d) in sums.iter_mut().zip(&self.0.demand()[player]) {
            *s += sign * d;
        }
        sums.iter().copied().fold(0.0, f64::max)
    }
}

impl DeltaGame for crate::game::TableGame {
    /// The membership bitmask itself — a toggle is one XOR and a table
    /// load.
    type State = u64;

    fn initial_state(&self) -> Self::State {
        0
    }

    fn toggle(&self, mask: &mut Self::State, player: usize) -> f64 {
        *mask ^= 1u64 << player;
        self.lookup(*mask)
    }
}

/// Shapley accumulation over a complete value table (`table[mask]` =
/// value of coalition `mask`).
///
/// Rather than the textbook per-player marginal loop (`n·2ⁿ` iterations,
/// each loading two table entries — one of them a `2ⁱ`-stride partner),
/// the accumulation uses the regrouped identity
///
/// ```text
/// φᵢ = Σ_{T∋i} (w[|T|−1] + w[|T|])·v(T)  −  Σ_T w[|T|]·v(T)
/// ```
///
/// with `w[n] ≔ 0`: one ascending pass over the table, each value loaded
/// exactly once and scattered to the φ slots of the coalition's members
/// (`popcount` adds per mask, `n·2ⁿ⁻¹` total — half the marginal loop's
/// work), and the player-independent correction `Σ w[|T|]·v(T)`
/// subtracted once at the end. The pass is split into
/// [`TABLE_BLOCK_MASKS`]-sized blocks whose partial φ vectors are merged
/// in ascending block order; the parallel accumulation distributes the
/// same blocks and merges identically, so both are bit-identical at any
/// thread count.
///
/// Within a block the scatter is **lane-parallel**
/// ([`scatter_block_lanes`]): mask `m` accumulates into lane `m mod 4`,
/// and the four lane partials collapse through the cascade's canonical
/// pair tree ([`combine_lanes`]). Per φ slot that is one reassociation of
/// the block's serial sum, so results differ from
/// [`shapley_from_table_scalar`] by a documented ≤ O(ε)-relative bound
/// per block while staying bit-identical across thread counts.
pub fn shapley_from_table(n: usize, table: &[f64]) -> Vec<f64> {
    let mut phi = vec![0.0f64; n];
    let mut weights = vec![0.0f64; n];
    shapley_from_table_into(n, table, &mut weights, &mut phi);
    phi
}

/// The retained serial-chain accumulation: every mask in a block adds
/// into the same φ slot chain in ascending order ([`scatter_block_scalar`]).
/// Kept as the closeness reference for the lane kernel and as the
/// scalar side of `perf_report --section kernels`.
pub fn shapley_from_table_scalar(n: usize, table: &[f64]) -> Vec<f64> {
    let mut phi = vec![0.0f64; n];
    let mut weights = vec![0.0f64; n];
    subset_weights_into(n, &mut weights);
    let (wc, coeff) = scatter_coefficients(n, &weights);
    let mut correction = 0.0;
    let mut block_phi = [0.0f64; MAX_EXACT_PLAYERS];
    for block in mask_blocks(n) {
        correction += scatter_block_scalar(table, &wc, &coeff, &block, &mut block_phi[..n]);
        for (p, b) in phi.iter_mut().zip(&block_phi[..n]) {
            *p += *b;
        }
    }
    for p in phi.iter_mut() {
        *p -= correction;
    }
    phi
}

/// [`shapley_from_table`] writing into caller-owned `weights` and `phi`
/// buffers (both of length `n`) — the allocation-free core shared with
/// [`exact_shapley_fast_with_scratch`].
fn shapley_from_table_into(n: usize, table: &[f64], weights: &mut [f64], phi: &mut [f64]) {
    subset_weights_into(n, weights);
    let (wc, coeff) = scatter_coefficients(n, weights);
    phi.fill(0.0);
    let mut correction = 0.0;
    let mut block_phi = [0.0f64; MAX_EXACT_PLAYERS];
    for block in mask_blocks(n) {
        correction += scatter_block_lanes(table, &wc, &coeff, &block, &mut block_phi[..n]);
        for (p, b) in phi.iter_mut().zip(&block_phi[..n]) {
            *p += *b;
        }
    }
    for p in phi.iter_mut() {
        *p -= correction;
    }
}

/// [`shapley_from_table`] with the per-block scatters fanned out across
/// worker threads. Each block's partial φ vector and correction term are
/// computed exactly as in the serial pass and merged in ascending block
/// order, so the result is bit-identical to the serial accumulation at
/// any thread count.
fn parallel_shapley_from_table(n: usize, table: &[f64], threads: usize) -> Vec<f64> {
    let weights = subset_weights(n);
    let (wc, coeff) = scatter_coefficients(n, &weights);
    let blocks: Vec<_> = mask_blocks(n).collect();
    let partials = run_parallel(blocks.len(), threads, |b| {
        let mut block_phi = [0.0f64; MAX_EXACT_PLAYERS];
        let c = scatter_block_lanes(table, &wc, &coeff, &blocks[b], &mut block_phi[..n]);
        (block_phi, c)
    });
    let mut phi = vec![0.0f64; n];
    let mut correction = 0.0;
    for (block_phi, c) in &partials {
        for (p, b) in phi.iter_mut().zip(&block_phi[..n]) {
            *p += *b;
        }
        correction += *c;
    }
    for p in phi.iter_mut() {
        *p -= correction;
    }
    phi
}

/// `w[s] = s!·(n−1−s)!/n!`, built by the recurrence
/// `w[s] = w[s−1]·s/(n−s)` to stay in floating range for any `n` we
/// support.
fn subset_weights(n: usize) -> Vec<f64> {
    let mut weights = vec![0.0f64; n];
    subset_weights_into(n, &mut weights);
    weights
}

/// [`subset_weights`] into a caller-owned buffer of length `n`.
fn subset_weights_into(n: usize, weights: &mut [f64]) {
    weights[0] = 1.0 / n as f64;
    for s in 1..n {
        weights[s] = weights[s - 1] * s as f64 / (n - s) as f64;
    }
}

/// Ascending, non-overlapping mask ranges covering `0..2ⁿ` in blocks of
/// [`TABLE_BLOCK_MASKS`].
fn mask_blocks(n: usize) -> impl Iterator<Item = std::ops::Range<u64>> {
    let size = 1u64 << n;
    (0..size.div_ceil(TABLE_BLOCK_MASKS)).map(move |b| {
        let start = b * TABLE_BLOCK_MASKS;
        start..(start + TABLE_BLOCK_MASKS).min(size)
    })
}

/// Per-coalition-size coefficients for the scatter accumulation:
/// `wc[k]` weights a size-`k` coalition in the player-independent
/// correction (`w[k]` for proper coalitions, 0 for the grand coalition,
/// where `w[n]` does not exist), and `coeff[k] = w[k−1] + wc[k]` is the
/// factor applied to `v(T)` for every member of a size-`k` coalition.
/// Fixed-size stack arrays keep the scratch solver allocation-free.
fn scatter_coefficients(
    n: usize,
    weights: &[f64],
) -> ([f64; MAX_EXACT_PLAYERS + 1], [f64; MAX_EXACT_PLAYERS + 1]) {
    let mut wc = [0.0f64; MAX_EXACT_PLAYERS + 1];
    let mut coeff = [0.0f64; MAX_EXACT_PLAYERS + 1];
    wc[..n].copy_from_slice(&weights[..n]);
    for k in 1..=n {
        coeff[k] = weights[k - 1] + wc[k];
    }
    (wc, coeff)
}

/// Scatters one mask block's values into a zeroed per-block φ vector and
/// returns the block's correction-term contribution, one serial
/// dependency chain per φ slot. Each table entry is loaded once; its
/// weighted value is added to the φ slot of every member of the
/// coalition (set bit of the mask). Retained as the reference chain for
/// [`scatter_block_lanes`].
pub(crate) fn scatter_block_scalar(
    table: &[f64],
    wc: &[f64],
    coeff: &[f64],
    block: &std::ops::Range<u64>,
    block_phi: &mut [f64],
) -> f64 {
    block_phi.fill(0.0);
    let mut correction = 0.0;
    for mask in block.clone() {
        let v = table[mask as usize];
        let k = mask.count_ones() as usize;
        correction += wc[k] * v;
        let cv = coeff[k] * v;
        let mut members = mask;
        while members != 0 {
            block_phi[members.trailing_zeros() as usize] += cv;
            members &= members - 1;
        }
    }
    correction
}

/// Lane-parallel scatter: mask `m` accumulates into lane `m mod
/// [`CANONICAL_LANES`]`, so consecutive masks write disjoint accumulator
/// arrays and the serial `φ[p] += …` dependency chain of
/// [`scatter_block_scalar`] only recurs every 4 masks — the adds of 4
/// masks retire in flight together. The lane partials collapse through
/// the cascade's canonical pair tree ([`combine_lanes`]), fixed and
/// data-length independent, so the result is a deterministic function of
/// the block alone: serial and parallel callers merging blocks in
/// ascending order stay bit-identical to each other.
///
/// Versus the scalar chain each φ slot is reassociated once per block
/// (serial sum → 4 lane sums + pair tree), giving the usual ≤ O(n·ε)
/// relative summation bound per block; zero inputs produce exactly 0.0
/// in every lane, so a player absent from all masks still gets φ = 0.0
/// exactly.
pub(crate) fn scatter_block_lanes(
    table: &[f64],
    wc: &[f64],
    coeff: &[f64],
    block: &std::ops::Range<u64>,
    block_phi: &mut [f64],
) -> f64 {
    const K: usize = CANONICAL_LANES;
    const _: () = assert!(K == 4, "the unrolled quad bodies hardcode 4 lanes");
    let mut p0 = [0.0f64; MAX_EXACT_PLAYERS];
    let mut p1 = [0.0f64; MAX_EXACT_PLAYERS];
    let mut p2 = [0.0f64; MAX_EXACT_PLAYERS];
    let mut p3 = [0.0f64; MAX_EXACT_PLAYERS];
    let mut corr = [0.0f64; K];
    let mut m = block.start;
    // Table blocks start at 0 or a multiple of `TABLE_BLOCK_MASKS`, so
    // `m % 4 == 0` here and the mask's lane equals its position inside
    // the quad: the four unrolled bodies below write fixed,
    // statically-named accumulator arrays instead of indexing a 2-D
    // array through `mask % 4`, which is what lets the four φ chains
    // actually retire in flight.
    if m.is_multiple_of(K as u64) {
        while m + K as u64 <= block.end {
            {
                let v = table[m as usize];
                let k = m.count_ones() as usize;
                corr[0] += wc[k] * v;
                let cv = coeff[k] * v;
                let mut members = m;
                while members != 0 {
                    p0[members.trailing_zeros() as usize] += cv;
                    members &= members - 1;
                }
            }
            {
                let mask = m + 1;
                let v = table[mask as usize];
                let k = mask.count_ones() as usize;
                corr[1] += wc[k] * v;
                let cv = coeff[k] * v;
                let mut members = mask;
                while members != 0 {
                    p1[members.trailing_zeros() as usize] += cv;
                    members &= members - 1;
                }
            }
            {
                let mask = m + 2;
                let v = table[mask as usize];
                let k = mask.count_ones() as usize;
                corr[2] += wc[k] * v;
                let cv = coeff[k] * v;
                let mut members = mask;
                while members != 0 {
                    p2[members.trailing_zeros() as usize] += cv;
                    members &= members - 1;
                }
            }
            {
                let mask = m + 3;
                let v = table[mask as usize];
                let k = mask.count_ones() as usize;
                corr[3] += wc[k] * v;
                let cv = coeff[k] * v;
                let mut members = mask;
                while members != 0 {
                    p3[members.trailing_zeros() as usize] += cv;
                    members &= members - 1;
                }
            }
            m += K as u64;
        }
    }
    // Remainder masks (a 1- or 2-player table shorter than one quad)
    // keep the same `mask mod 4` lane assignment, so the collapse below
    // is a function of the mask values alone either way.
    while m < block.end {
        let v = table[m as usize];
        let k = m.count_ones() as usize;
        let cv = coeff[k] * v;
        let (lane_phi, lane_corr) = match (m % K as u64) as usize {
            0 => (&mut p0, &mut corr[0]),
            1 => (&mut p1, &mut corr[1]),
            2 => (&mut p2, &mut corr[2]),
            _ => (&mut p3, &mut corr[3]),
        };
        *lane_corr += wc[k] * v;
        let mut members = m;
        while members != 0 {
            lane_phi[members.trailing_zeros() as usize] += cv;
            members &= members - 1;
        }
        m += 1;
    }
    for (p, slot) in block_phi.iter_mut().enumerate() {
        *slot = combine_lanes([p0[p], p1[p], p2[p], p3[p]]);
    }
    combine_lanes(corr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{PeakDemandGame, TableGame};

    #[test]
    fn two_player_split_the_difference() {
        // Classic glove-game style check: v(1)=3, v(2)=2, v(12)=5.
        let g = TableGame::new(2, vec![0.0, 3.0, 2.0, 5.0]);
        let phi = exact_shapley(&g).unwrap();
        assert!((phi[0] - 3.0).abs() < 1e-12);
        assert!((phi[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn superadditive_game_known_values() {
        // v(1)=1, v(2)=1, v(12)=4 → φ = (2, 2).
        let g = TableGame::new(2, vec![0.0, 1.0, 1.0, 4.0]);
        let phi = exact_shapley(&g).unwrap();
        assert!((phi[0] - 2.0).abs() < 1e-12);
        assert!((phi[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_on_peak_demand_game() {
        let g = PeakDemandGame::new(vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 4.0, 2.0],
            vec![2.0, 2.0, 5.0],
            vec![0.0, 3.0, 1.0],
        ]);
        let phi = exact_shapley(&g).unwrap();
        let grand = g.value(&Coalition::grand(4));
        let total: f64 = phi.iter().sum();
        assert!((total - grand).abs() < 1e-9, "Σφ={total} v(N)={grand}");
    }

    #[test]
    fn fast_gray_code_solver_matches_plain() {
        let g = PeakDemandGame::new(vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 4.0, 2.0],
            vec![2.0, 2.0, 5.0],
            vec![0.0, 3.0, 1.0],
            vec![2.5, 0.5, 3.5],
        ]);
        let plain = exact_shapley(&g).unwrap();
        let fast = exact_shapley_fast(&g).unwrap();
        for (a, b) in plain.iter().zip(&fast) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn size_limits_are_enforced() {
        let g = PeakDemandGame::new(vec![vec![1.0]; 25]);
        assert_eq!(
            exact_shapley(&g),
            Err(ExactError::TooManyPlayers { n: 25, max: 24 })
        );
    }

    #[test]
    fn scratch_reuse_is_bit_identical_even_across_game_sizes() {
        // Solve a 5-player game, then a 3-player game through the SAME
        // scratch: the stale tail of the larger table must not leak into
        // the smaller solve.
        let big = PeakDemandGame::new(vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 4.0, 2.0],
            vec![2.0, 2.0, 5.0],
            vec![0.0, 3.0, 1.0],
            vec![2.5, 0.5, 3.5],
        ]);
        let small = PeakDemandGame::new(vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 4.0, 2.0],
            vec![2.0, 2.0, 5.0],
        ]);
        let mut scratch = ExactScratch::for_players(5);
        for game in [&big, &small, &big, &small] {
            let fresh = exact_shapley_fast(game).unwrap();
            let reused = exact_shapley_fast_with_scratch(game, &mut scratch).unwrap();
            assert_eq!(fresh.len(), reused.len());
            for (a, b) in fresh.iter().zip(reused) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert_eq!(scratch.grows(), 1, "pre-grown scratch never regrows");
        assert_eq!(scratch.reuses(), 4);
    }

    #[test]
    fn scratch_grows_lazily_and_reports_table_bytes() {
        let g = PeakDemandGame::new(vec![vec![3.0, 1.0], vec![0.0, 2.0]]);
        let mut scratch = ExactScratch::new();
        assert_eq!(scratch.table_bytes(), 0);
        exact_shapley_fast_with_scratch(&g, &mut scratch).unwrap();
        assert_eq!(scratch.grows(), 1);
        assert_eq!(scratch.reuses(), 0);
        assert_eq!(scratch.table_bytes(), 4 * 8);
        exact_shapley_fast_with_scratch(&g, &mut scratch).unwrap();
        assert_eq!(scratch.reuses(), 1);
    }

    #[test]
    #[should_panic(expected = "exceed the exact-enumeration cap")]
    fn scratch_rejects_oversized_reservations() {
        let _ = ExactScratch::for_players(MAX_EXACT_PLAYERS + 1);
    }

    #[test]
    fn null_player_gets_zero() {
        let g = PeakDemandGame::new(vec![vec![3.0, 1.0], vec![0.0, 0.0]]);
        let phi = exact_shapley(&g).unwrap();
        assert!((phi[0] - 3.0).abs() < 1e-12);
        assert_eq!(phi[1], 0.0);
    }

    /// Deterministic signed pseudo-random coalition values, exercising
    /// cancellation in the lane partials.
    fn hash_value(mask: u64, seed: u64) -> f64 {
        let mut x = mask.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
        x ^= x >> 29;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 32;
        ((x >> 16) % 2001) as f64 / 100.0 - 10.0
    }

    /// The lane scatter reassociates each φ slot's block sum once
    /// (serial chain → 4 lane chains + pair tree), so it must agree with
    /// the scalar chain to a tight relative bound — across sizes below,
    /// at, and above the [`TABLE_BLOCK_MASKS`] block boundary (n = 17 →
    /// two blocks).
    #[test]
    fn lane_scatter_stays_within_summation_error_of_the_scalar_chain() {
        for &n in &[1usize, 2, 3, 5, 10, 17] {
            let table: Vec<f64> = (0u64..1 << n).map(|m| hash_value(m, n as u64)).collect();
            let scalar = shapley_from_table_scalar(n, &table);
            let lane = shapley_from_table(n, &table);
            for (p, (s, l)) in scalar.iter().zip(&lane).enumerate() {
                let scale = s.abs().max(l.abs()).max(f64::MIN_POSITIVE);
                assert!(
                    (s - l).abs() <= 1e-11 * scale,
                    "n={n} phi[{p}]: scalar {s} vs lane {l}"
                );
            }
        }
    }

    /// An all-zero table must produce exactly-0.0 φ on both kernels: the
    /// lane partials hold exact zeros, the pair tree combines them to
    /// 0.0, and the correction subtracts 0.0.
    #[test]
    fn lane_scatter_preserves_exact_zeros() {
        let table = vec![0.0f64; 1 << 6];
        for phi in [
            shapley_from_table(6, &table),
            shapley_from_table_scalar(6, &table),
        ] {
            for v in phi {
                assert_eq!(v.to_bits(), 0.0f64.to_bits());
            }
        }
    }

    /// The per-block lane combine is a fixed tree independent of the
    /// fan-out, so distributing blocks across workers and merging them in
    /// ascending order reproduces the serial lane accumulation bit for
    /// bit at any thread count.
    #[test]
    fn parallel_table_accumulation_is_bit_identical_to_serial_lane() {
        let n = 17; // two TABLE_BLOCK_MASKS blocks
        let table: Vec<f64> = (0u64..1 << n).map(|m| hash_value(m, 7)).collect();
        let serial = shapley_from_table(n, &table);
        for threads in [1, 2, 3, 8] {
            let parallel = parallel_shapley_from_table(n, &table, threads);
            for (p, (s, q)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(
                    s.to_bits(),
                    q.to_bits(),
                    "threads={threads} phi[{p}]: {s} vs {q}"
                );
            }
        }
    }
}
