//! Ground-truth Shapley values by exhaustive subset enumeration.
//!
//! This is the paper's "ground truth Shapley value method" (Eq. 1):
//! every coalition is evaluated and every player's marginal contribution
//! is averaged with the exact combinatorial weights. The cost is
//! `Θ(2ⁿ)` coalition evaluations plus `Θ(n·2ⁿ)` accumulation steps, which
//! is why the paper caps its demand scenarios at 22 workloads — and why
//! Fair-CO₂ exists.

use std::fmt;

use crate::coalition::Coalition;
use crate::game::Game;
use crate::maxtree::MaxTree;
use crate::parallel::run_parallel;

/// Hard cap on exact enumeration: `2²⁴` values ≈ 128 MiB of table.
///
/// Peak memory at the cap is the value table plus allocator slack and
/// nothing else: measured peak RSS (`VmHWM` from `/proc/self/status`) of
/// a 24-player run on the CI container is 130.0 MiB for `exact_shapley`
/// and 134.2 MiB for `parallel_exact_shapley` — [`shapley_from_table`]
/// streams the table in cache-friendly blocks rather than materializing
/// any per-player copy, and the parallel fill writes the single table in
/// place instead of assembling per-chunk buffers. Reproduce with
/// `perf_report --max-n 24`, which records the same counter.
pub const MAX_EXACT_PLAYERS: usize = 24;

/// Masks per block when streaming the value table. `2¹⁶` masks = 512 KiB
/// of table per block, sized to sit in L2 while all `n` players' partial
/// sums stream over it, instead of each player re-reading the whole
/// 128 MiB table from DRAM.
const TABLE_BLOCK_MASKS: u64 = 1 << 16;

/// Error from the exact solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactError {
    /// The game has more players than enumeration can handle.
    TooManyPlayers {
        /// Player count of the offending game.
        n: usize,
        /// The enumeration cap ([`MAX_EXACT_PLAYERS`]).
        max: usize,
    },
    /// The game has no players.
    NoPlayers,
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::TooManyPlayers { n, max } => {
                write!(f, "{n} players exceed the exact-enumeration cap of {max}")
            }
            ExactError::NoPlayers => write!(f, "game has no players"),
        }
    }
}

impl std::error::Error for ExactError {}

/// A game whose coalition value can be updated as single players are
/// *toggled* in or out, letting the exact solver fill its `2ⁿ` value table
/// in Gray-code order with `O(toggle)` work per coalition instead of a
/// full characteristic-function evaluation.
pub trait DeltaGame: Game {
    /// Mutable evaluation state of the current coalition.
    type State;

    /// State of the empty coalition.
    fn initial_state(&self) -> Self::State;

    /// Adds `player` if absent or removes it if present, returning the
    /// value of the updated coalition.
    fn toggle(&self, state: &mut Self::State, player: usize) -> f64;
}

/// Computes exact Shapley values by evaluating the characteristic
/// function on all `2ⁿ` coalitions.
///
/// # Example
///
/// ```
/// use fairco2_shapley::exact_shapley;
/// use fairco2_shapley::game::PeakDemandGame;
///
/// // Two workloads with anti-correlated demand: each is sole author of
/// // its own peak, so each pays exactly its own peak's increment.
/// let game = PeakDemandGame::new(vec![vec![4.0, 0.0], vec![0.0, 3.0]]);
/// let phi = exact_shapley(&game)?;
/// assert!((phi[0] - 2.5).abs() < 1e-12); // ½·4 + ½·(4−3)… averaged orders
/// assert!((phi[0] + phi[1] - 4.0).abs() < 1e-12); // efficiency
/// # Ok::<(), fairco2_shapley::exact::ExactError>(())
/// ```
///
/// # Errors
///
/// Returns [`ExactError::TooManyPlayers`] beyond [`MAX_EXACT_PLAYERS`]
/// players and [`ExactError::NoPlayers`] for an empty game.
pub fn exact_shapley<G: Game>(game: &G) -> Result<Vec<f64>, ExactError> {
    let n = check_size(game)?;
    // One coalition reused across the sweep: `set_mask` rewrites the
    // membership in place, so the fill performs no per-mask allocation.
    let mut coalition = Coalition::empty(n);
    let table: Vec<f64> = (0u64..1 << n)
        .map(|mask| {
            coalition.set_mask(mask);
            game.value(&coalition)
        })
        .collect();
    Ok(shapley_from_table(n, &table))
}

/// [`exact_shapley`] with both phases fanned out across worker threads:
/// the `2ⁿ` table fill writes disjoint `chunks_mut` ranges of the final
/// table in place (each value is a pure function of its mask, so the
/// partition cannot affect any entry) and the `Θ(n·2ⁿ)` accumulation is
/// chunked per player through [`run_parallel`]. Every per-mask /
/// per-player computation is performed exactly as in the serial solver —
/// so the result is **bit-identical** to [`exact_shapley`] at any thread
/// count. Filling in place also means the table is allocated exactly
/// once; assembling per-chunk buffers would transiently double peak
/// memory at the [`MAX_EXACT_PLAYERS`] cap.
///
/// `threads = 0` is clamped to one worker.
///
/// # Errors
///
/// Same conditions as [`exact_shapley`].
pub fn parallel_exact_shapley<G>(game: &G, threads: usize) -> Result<Vec<f64>, ExactError>
where
    G: Game + Sync,
{
    let n = check_size(game)?;
    let size = 1usize << n;
    let threads = threads.clamp(1, size);
    let mut table = vec![0.0f64; size];
    let chunk_len = size.div_ceil(threads);
    std::thread::scope(|scope| {
        for (worker, chunk) in table.chunks_mut(chunk_len).enumerate() {
            let base = (worker * chunk_len) as u64;
            scope.spawn(move || {
                let mut coalition = Coalition::empty(n);
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    coalition.set_mask(base + offset as u64);
                    *slot = game.value(&coalition);
                }
            });
        }
    });
    Ok(parallel_shapley_from_table(n, &table, threads))
}

/// Computes exact Shapley values using Gray-code toggling, avoiding a full
/// characteristic-function evaluation per coalition. Produces identical
/// results to [`exact_shapley`] up to floating-point accumulation order.
///
/// # Errors
///
/// Same conditions as [`exact_shapley`].
pub fn exact_shapley_fast<G: DeltaGame>(game: &G) -> Result<Vec<f64>, ExactError> {
    let n = check_size(game)?;
    let size = 1usize << n;
    let mut table = vec![0.0f64; size];
    let mut state = game.initial_state();
    // Walk coalitions in Gray-code order: consecutive codes differ in
    // exactly one bit, so one toggle per step fills the whole table.
    let mut prev_gray = 0u64;
    for k in 1..size as u64 {
        let gray = k ^ (k >> 1);
        let flipped = (gray ^ prev_gray).trailing_zeros() as usize;
        let v = game.toggle(&mut state, flipped);
        table[gray as usize] = v;
        prev_gray = gray;
    }
    Ok(shapley_from_table(n, &table))
}

fn check_size<G: Game>(game: &G) -> Result<usize, ExactError> {
    let n = game.player_count();
    if n == 0 {
        return Err(ExactError::NoPlayers);
    }
    if n > MAX_EXACT_PLAYERS {
        return Err(ExactError::TooManyPlayers {
            n,
            max: MAX_EXACT_PLAYERS,
        });
    }
    Ok(n)
}

impl DeltaGame for crate::game::PeakDemandGame {
    /// Per-time-step sums in a [`MaxTree`] plus explicit membership
    /// flags: a toggle costs `O(|support| · log steps)` and the peak is
    /// read off the root, replacing the former full `O(steps)` re-scan
    /// (`sums.iter().fold(0.0, f64::max)`) per toggle.
    type State = (MaxTree, Vec<bool>);

    fn initial_state(&self) -> Self::State {
        (MaxTree::new(self.steps()), vec![false; self.player_count()])
    }

    fn toggle(&self, (sums, members): &mut Self::State, player: usize) -> f64 {
        let sign = if members[player] { -1.0 } else { 1.0 };
        members[player] = !members[player];
        for &(t, d) in self.support(player) {
            sums.add(t as usize, sign * d);
        }
        sums.max()
    }
}

impl DeltaGame for crate::game::ScanPeak {
    /// The original dense layout: per-time-step sums plus membership
    /// flags, re-scanned in full after every toggle. Reference path for
    /// the equality pins and the `toggle` bench.
    type State = (Vec<f64>, Vec<bool>);

    fn initial_state(&self) -> Self::State {
        (vec![0.0; self.0.steps()], vec![false; self.player_count()])
    }

    fn toggle(&self, (sums, members): &mut Self::State, player: usize) -> f64 {
        let sign = if members[player] { -1.0 } else { 1.0 };
        members[player] = !members[player];
        for (s, d) in sums.iter_mut().zip(&self.0.demand()[player]) {
            *s += sign * d;
        }
        sums.iter().copied().fold(0.0, f64::max)
    }
}

impl DeltaGame for crate::game::TableGame {
    /// The membership bitmask itself — a toggle is one XOR and a table
    /// load.
    type State = u64;

    fn initial_state(&self) -> Self::State {
        0
    }

    fn toggle(&self, mask: &mut Self::State, player: usize) -> f64 {
        *mask ^= 1u64 << player;
        self.lookup(*mask)
    }
}

/// Shapley accumulation over a complete value table (`table[mask]` =
/// value of coalition `mask`).
///
/// The table is streamed in blocks of [`TABLE_BLOCK_MASKS`] masks with
/// all `n` players visiting each block before the next is touched, so at
/// [`MAX_EXACT_PLAYERS`] the 128 MiB table crosses the cache hierarchy
/// once per block instead of `n` full passes. Within each player the
/// masks are still visited in ascending order, so the result is
/// bit-identical to the naive player-major double loop.
fn shapley_from_table(n: usize, table: &[f64]) -> Vec<f64> {
    let mut phi = vec![0.0f64; n];
    let weights = subset_weights(n);
    for block in mask_blocks(n) {
        accumulate_block(table, &weights, &block, &mut phi, 0..n);
    }
    phi
}

/// [`shapley_from_table`] with the per-player accumulation fanned out
/// across worker threads. Each worker owns a disjoint set of players and
/// performs exactly the serial per-player computation (same weights, same
/// ascending block order), so the result is bit-identical to the serial
/// accumulation at any thread count.
fn parallel_shapley_from_table(n: usize, table: &[f64], threads: usize) -> Vec<f64> {
    let weights = subset_weights(n);
    run_parallel(n, threads, |i| {
        let mut phi_i = [0.0f64];
        for block in mask_blocks(n) {
            accumulate_block(table, &weights, &block, &mut phi_i, i..i + 1);
        }
        phi_i[0]
    })
}

/// `w[s] = s!·(n−1−s)!/n!`, built by the recurrence
/// `w[s] = w[s−1]·s/(n−s)` to stay in floating range for any `n` we
/// support.
fn subset_weights(n: usize) -> Vec<f64> {
    let mut weights = vec![0.0f64; n];
    weights[0] = 1.0 / n as f64;
    for s in 1..n {
        weights[s] = weights[s - 1] * s as f64 / (n - s) as f64;
    }
    weights
}

/// Ascending, non-overlapping mask ranges covering `0..2ⁿ` in blocks of
/// [`TABLE_BLOCK_MASKS`].
fn mask_blocks(n: usize) -> impl Iterator<Item = std::ops::Range<u64>> {
    let size = 1u64 << n;
    (0..size.div_ceil(TABLE_BLOCK_MASKS)).map(move |b| {
        let start = b * TABLE_BLOCK_MASKS;
        start..(start + TABLE_BLOCK_MASKS).min(size)
    })
}

/// Adds each listed player's marginal contributions over one mask block
/// into `phi` (`phi[0]` corresponds to the first player of `players`).
fn accumulate_block(
    table: &[f64],
    weights: &[f64],
    block: &std::ops::Range<u64>,
    phi: &mut [f64],
    players: std::ops::Range<usize>,
) {
    for (slot, i) in players.enumerate() {
        let bit = 1u64 << i;
        let phi_i = &mut phi[slot];
        for mask in block.clone() {
            if mask & bit == 0 {
                let s = mask.count_ones() as usize;
                *phi_i += weights[s] * (table[(mask | bit) as usize] - table[mask as usize]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{PeakDemandGame, TableGame};

    #[test]
    fn two_player_split_the_difference() {
        // Classic glove-game style check: v(1)=3, v(2)=2, v(12)=5.
        let g = TableGame::new(2, vec![0.0, 3.0, 2.0, 5.0]);
        let phi = exact_shapley(&g).unwrap();
        assert!((phi[0] - 3.0).abs() < 1e-12);
        assert!((phi[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn superadditive_game_known_values() {
        // v(1)=1, v(2)=1, v(12)=4 → φ = (2, 2).
        let g = TableGame::new(2, vec![0.0, 1.0, 1.0, 4.0]);
        let phi = exact_shapley(&g).unwrap();
        assert!((phi[0] - 2.0).abs() < 1e-12);
        assert!((phi[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_on_peak_demand_game() {
        let g = PeakDemandGame::new(vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 4.0, 2.0],
            vec![2.0, 2.0, 5.0],
            vec![0.0, 3.0, 1.0],
        ]);
        let phi = exact_shapley(&g).unwrap();
        let grand = g.value(&Coalition::grand(4));
        let total: f64 = phi.iter().sum();
        assert!((total - grand).abs() < 1e-9, "Σφ={total} v(N)={grand}");
    }

    #[test]
    fn fast_gray_code_solver_matches_plain() {
        let g = PeakDemandGame::new(vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 4.0, 2.0],
            vec![2.0, 2.0, 5.0],
            vec![0.0, 3.0, 1.0],
            vec![2.5, 0.5, 3.5],
        ]);
        let plain = exact_shapley(&g).unwrap();
        let fast = exact_shapley_fast(&g).unwrap();
        for (a, b) in plain.iter().zip(&fast) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn size_limits_are_enforced() {
        let g = PeakDemandGame::new(vec![vec![1.0]; 25]);
        assert_eq!(
            exact_shapley(&g),
            Err(ExactError::TooManyPlayers { n: 25, max: 24 })
        );
    }

    #[test]
    fn null_player_gets_zero() {
        let g = PeakDemandGame::new(vec![vec![3.0, 1.0], vec![0.0, 0.0]]);
        let phi = exact_shapley(&g).unwrap();
        assert!((phi[0] - 3.0).abs() < 1e-12);
        assert_eq!(phi[1], 0.0);
    }
}
