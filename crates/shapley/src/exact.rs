//! Ground-truth Shapley values by exhaustive subset enumeration.
//!
//! This is the paper's "ground truth Shapley value method" (Eq. 1):
//! every coalition is evaluated and every player's marginal contribution
//! is averaged with the exact combinatorial weights. The cost is
//! `Θ(2ⁿ)` coalition evaluations plus `Θ(n·2ⁿ)` accumulation steps, which
//! is why the paper caps its demand scenarios at 22 workloads — and why
//! Fair-CO₂ exists.

use std::fmt;

use crate::coalition::Coalition;
use crate::game::Game;

/// Hard cap on exact enumeration: `2²⁴` values ≈ 128 MiB of table.
pub const MAX_EXACT_PLAYERS: usize = 24;

/// Error from the exact solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactError {
    /// The game has more players than enumeration can handle.
    TooManyPlayers {
        /// Player count of the offending game.
        n: usize,
        /// The enumeration cap ([`MAX_EXACT_PLAYERS`]).
        max: usize,
    },
    /// The game has no players.
    NoPlayers,
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::TooManyPlayers { n, max } => {
                write!(f, "{n} players exceed the exact-enumeration cap of {max}")
            }
            ExactError::NoPlayers => write!(f, "game has no players"),
        }
    }
}

impl std::error::Error for ExactError {}

/// A game whose coalition value can be updated as single players are
/// *toggled* in or out, letting the exact solver fill its `2ⁿ` value table
/// in Gray-code order with `O(toggle)` work per coalition instead of a
/// full characteristic-function evaluation.
pub trait DeltaGame: Game {
    /// Mutable evaluation state of the current coalition.
    type State;

    /// State of the empty coalition.
    fn initial_state(&self) -> Self::State;

    /// Adds `player` if absent or removes it if present, returning the
    /// value of the updated coalition.
    fn toggle(&self, state: &mut Self::State, player: usize) -> f64;
}

/// Computes exact Shapley values by evaluating the characteristic
/// function on all `2ⁿ` coalitions.
///
/// # Example
///
/// ```
/// use fairco2_shapley::exact_shapley;
/// use fairco2_shapley::game::PeakDemandGame;
///
/// // Two workloads with anti-correlated demand: each is sole author of
/// // its own peak, so each pays exactly its own peak's increment.
/// let game = PeakDemandGame::new(vec![vec![4.0, 0.0], vec![0.0, 3.0]]);
/// let phi = exact_shapley(&game)?;
/// assert!((phi[0] - 2.5).abs() < 1e-12); // ½·4 + ½·(4−3)… averaged orders
/// assert!((phi[0] + phi[1] - 4.0).abs() < 1e-12); // efficiency
/// # Ok::<(), fairco2_shapley::exact::ExactError>(())
/// ```
///
/// # Errors
///
/// Returns [`ExactError::TooManyPlayers`] beyond [`MAX_EXACT_PLAYERS`]
/// players and [`ExactError::NoPlayers`] for an empty game.
pub fn exact_shapley<G: Game>(game: &G) -> Result<Vec<f64>, ExactError> {
    let n = check_size(game)?;
    let table: Vec<f64> = (0u64..1 << n)
        .map(|mask| game.value(&Coalition::from_mask(n, mask)))
        .collect();
    Ok(shapley_from_table(n, &table))
}

/// Computes exact Shapley values using Gray-code toggling, avoiding a full
/// characteristic-function evaluation per coalition. Produces identical
/// results to [`exact_shapley`] up to floating-point accumulation order.
///
/// # Errors
///
/// Same conditions as [`exact_shapley`].
pub fn exact_shapley_fast<G: DeltaGame>(game: &G) -> Result<Vec<f64>, ExactError> {
    let n = check_size(game)?;
    let size = 1usize << n;
    let mut table = vec![0.0f64; size];
    let mut state = game.initial_state();
    // Walk coalitions in Gray-code order: consecutive codes differ in
    // exactly one bit, so one toggle per step fills the whole table.
    let mut prev_gray = 0u64;
    for k in 1..size as u64 {
        let gray = k ^ (k >> 1);
        let flipped = (gray ^ prev_gray).trailing_zeros() as usize;
        let v = game.toggle(&mut state, flipped);
        table[gray as usize] = v;
        prev_gray = gray;
    }
    Ok(shapley_from_table(n, &table))
}

fn check_size<G: Game>(game: &G) -> Result<usize, ExactError> {
    let n = game.player_count();
    if n == 0 {
        return Err(ExactError::NoPlayers);
    }
    if n > MAX_EXACT_PLAYERS {
        return Err(ExactError::TooManyPlayers {
            n,
            max: MAX_EXACT_PLAYERS,
        });
    }
    Ok(n)
}

impl DeltaGame for crate::game::PeakDemandGame {
    /// Per-time-step sums plus explicit membership flags.
    type State = (Vec<f64>, Vec<bool>);

    fn initial_state(&self) -> Self::State {
        (vec![0.0; self.steps()], vec![false; self.player_count()])
    }

    fn toggle(&self, (sums, members): &mut Self::State, player: usize) -> f64 {
        let sign = if members[player] { -1.0 } else { 1.0 };
        members[player] = !members[player];
        for (s, d) in sums.iter_mut().zip(&self.demand()[player]) {
            *s += sign * d;
        }
        sums.iter().copied().fold(0.0, f64::max)
    }
}

/// Shapley accumulation over a complete value table (`table[mask]` =
/// value of coalition `mask`).
fn shapley_from_table(n: usize, table: &[f64]) -> Vec<f64> {
    // w[s] = s!·(n−1−s)!/n!, built by the recurrence w[s] = w[s−1]·s/(n−s)
    // to stay in floating range for any n we support.
    let mut weights = vec![0.0f64; n];
    weights[0] = 1.0 / n as f64;
    for s in 1..n {
        weights[s] = weights[s - 1] * s as f64 / (n - s) as f64;
    }
    let mut phi = vec![0.0f64; n];
    for (i, phi_i) in phi.iter_mut().enumerate() {
        let bit = 1u64 << i;
        for mask in 0u64..1 << n {
            if mask & bit == 0 {
                let s = mask.count_ones() as usize;
                *phi_i += weights[s] * (table[(mask | bit) as usize] - table[mask as usize]);
            }
        }
    }
    phi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{PeakDemandGame, TableGame};

    #[test]
    fn two_player_split_the_difference() {
        // Classic glove-game style check: v(1)=3, v(2)=2, v(12)=5.
        let g = TableGame::new(2, vec![0.0, 3.0, 2.0, 5.0]);
        let phi = exact_shapley(&g).unwrap();
        assert!((phi[0] - 3.0).abs() < 1e-12);
        assert!((phi[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn superadditive_game_known_values() {
        // v(1)=1, v(2)=1, v(12)=4 → φ = (2, 2).
        let g = TableGame::new(2, vec![0.0, 1.0, 1.0, 4.0]);
        let phi = exact_shapley(&g).unwrap();
        assert!((phi[0] - 2.0).abs() < 1e-12);
        assert!((phi[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_on_peak_demand_game() {
        let g = PeakDemandGame::new(vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 4.0, 2.0],
            vec![2.0, 2.0, 5.0],
            vec![0.0, 3.0, 1.0],
        ]);
        let phi = exact_shapley(&g).unwrap();
        let grand = g.value(&Coalition::grand(4));
        let total: f64 = phi.iter().sum();
        assert!((total - grand).abs() < 1e-9, "Σφ={total} v(N)={grand}");
    }

    #[test]
    fn fast_gray_code_solver_matches_plain() {
        let g = PeakDemandGame::new(vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 4.0, 2.0],
            vec![2.0, 2.0, 5.0],
            vec![0.0, 3.0, 1.0],
            vec![2.5, 0.5, 3.5],
        ]);
        let plain = exact_shapley(&g).unwrap();
        let fast = exact_shapley_fast(&g).unwrap();
        for (a, b) in plain.iter().zip(&fast) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn size_limits_are_enforced() {
        let g = PeakDemandGame::new(vec![vec![1.0]; 25]);
        assert_eq!(
            exact_shapley(&g),
            Err(ExactError::TooManyPlayers { n: 25, max: 24 })
        );
    }

    #[test]
    fn null_player_gets_zero() {
        let g = PeakDemandGame::new(vec![vec![3.0, 1.0], vec![0.0, 0.0]]);
        let phi = exact_shapley(&g).unwrap();
        assert!((phi[0] - 3.0).abs() < 1e-12);
        assert_eq!(phi[1], 0.0);
    }
}
