//! Monte Carlo Shapley estimation by permutation sampling.
//!
//! For games too large to enumerate, the Shapley value is estimated as the
//! empirical mean of marginal contributions over uniformly random player
//! permutations — the standard unbiased estimator. Two refinements:
//!
//! * **antithetic pairs** — each sampled permutation is also replayed in
//!   reverse, which cancels much of the positional variance for monotone
//!   cost games;
//! * **standard-error stopping** — sampling stops once the largest
//!   per-player standard error of the mean drops below a target (or the
//!   sample budget is exhausted).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::game::IncrementalGame;

/// Configuration for [`sampled_shapley`].
#[derive(Debug, Clone, Copy)]
pub struct SampleConfig {
    /// Maximum number of permutations to draw (antithetic replays count
    /// separately toward this budget).
    pub max_permutations: usize,
    /// Stop early when every player's standard error of the mean falls
    /// below this absolute value. `0.0` disables early stopping.
    pub target_stderr: f64,
    /// Minimum permutations before the stopping rule may fire.
    pub min_permutations: usize,
    /// Whether to replay each permutation reversed (antithetic sampling).
    pub antithetic: bool,
}

impl Default for SampleConfig {
    fn default() -> Self {
        Self {
            max_permutations: 2000,
            target_stderr: 0.0,
            min_permutations: 64,
            antithetic: true,
        }
    }
}

/// Result of a sampled Shapley estimation.
#[derive(Debug, Clone)]
pub struct ShapleyEstimate {
    /// Estimated Shapley value per player.
    pub values: Vec<f64>,
    /// Standard error of the mean per player.
    pub std_errors: Vec<f64>,
    /// Number of permutations actually evaluated.
    pub permutations: usize,
}

impl ShapleyEstimate {
    /// Largest per-player standard error.
    pub fn max_std_error(&self) -> f64 {
        self.std_errors.iter().copied().fold(0.0, f64::max)
    }
}

/// Estimates Shapley values by permutation sampling.
///
/// # Panics
///
/// Panics if the game has no players or `max_permutations == 0` — an
/// estimate from zero samples is meaningless.
pub fn sampled_shapley<G: IncrementalGame>(
    game: &G,
    config: &SampleConfig,
    rng: &mut impl Rng,
) -> ShapleyEstimate {
    let n = game.player_count();
    assert!(n > 0, "game must have at least one player");
    assert!(
        config.max_permutations > 0,
        "at least one permutation is required"
    );

    let mut sum = vec![0.0f64; n];
    let mut sum_sq = vec![0.0f64; n];
    let mut order: Vec<usize> = (0..n).collect();
    let mut permutations = 0usize;

    let run = |order: &[usize], sum: &mut [f64], sum_sq: &mut [f64]| {
        let mut state = game.initial_state();
        let mut prev = 0.0f64;
        for &p in order {
            let value = game.add_player(&mut state, p);
            let marginal = value - prev;
            sum[p] += marginal;
            sum_sq[p] += marginal * marginal;
            prev = value;
        }
    };

    while permutations < config.max_permutations {
        order.shuffle(rng);
        run(&order, &mut sum, &mut sum_sq);
        permutations += 1;
        if config.antithetic && permutations < config.max_permutations {
            order.reverse();
            run(&order, &mut sum, &mut sum_sq);
            permutations += 1;
        }
        if config.target_stderr > 0.0 && permutations >= config.min_permutations {
            let worst = max_stderr(&sum, &sum_sq, permutations);
            if worst <= config.target_stderr {
                break;
            }
        }
    }

    let k = permutations as f64;
    let values: Vec<f64> = sum.iter().map(|s| s / k).collect();
    let std_errors: Vec<f64> = sum
        .iter()
        .zip(&sum_sq)
        .map(|(&s, &sq)| stderr(s, sq, permutations))
        .collect();
    ShapleyEstimate {
        values,
        std_errors,
        permutations,
    }
}

/// Estimates Shapley values by *position-stratified* sampling: for each
/// stratum (coalition size) `s`, draws `samples_per_stratum` uniformly
/// random `s`-subsets of the other players and averages the target
/// player's marginal contribution — the Castro-style stratified estimator.
/// Unlike [`sampled_shapley`] it allocates the budget evenly across
/// coalition sizes, which helps games whose marginals vary sharply with
/// size (e.g. the matching game's odd/even alternation).
///
/// Cost is `O(n² · samples_per_stratum)` coalition evaluations, so it
/// suits moderate `n` with expensive positional variance rather than
/// very large games.
///
/// # Panics
///
/// Panics if the game has no players or `samples_per_stratum == 0`.
pub fn stratified_shapley<G: IncrementalGame>(
    game: &G,
    samples_per_stratum: usize,
    rng: &mut impl Rng,
) -> Vec<f64> {
    let n = game.player_count();
    assert!(n > 0, "game must have at least one player");
    assert!(samples_per_stratum > 0, "need at least one sample per stratum");
    let mut phi = vec![0.0f64; n];
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..samples_per_stratum {
        // One permutation serves every stratum: prefix s is a uniform
        // s-subset, and each player contributes to exactly one stratum
        // per permutation, giving every (player, size) pair equal weight
        // across the run.
        order.shuffle(rng);
        let mut state = game.initial_state();
        let mut prev = 0.0;
        for &p in &order {
            let value = game.add_player(&mut state, p);
            phi[p] += value - prev;
            prev = value;
        }
        // A second, reversed pass swaps every player's stratum (position
        // i ↔ n−1−i), halving the positional imbalance per sample.
        order.reverse();
        let mut state = game.initial_state();
        let mut prev = 0.0;
        for &p in &order {
            let value = game.add_player(&mut state, p);
            phi[p] += value - prev;
            prev = value;
        }
    }
    let k = (2 * samples_per_stratum) as f64;
    phi.iter_mut().for_each(|v| *v /= k);
    phi
}

fn stderr(sum: f64, sum_sq: f64, k: usize) -> f64 {
    if k < 2 {
        return f64::INFINITY;
    }
    let kf = k as f64;
    let mean = sum / kf;
    let var = (sum_sq / kf - mean * mean).max(0.0) * kf / (kf - 1.0);
    (var / kf).sqrt()
}

fn max_stderr(sum: &[f64], sum_sq: &[f64], k: usize) -> f64 {
    sum.iter()
        .zip(sum_sq)
        .map(|(&s, &sq)| stderr(s, sq, k))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_shapley;
    use crate::game::PeakDemandGame;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo_game() -> PeakDemandGame {
        PeakDemandGame::new(vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 4.0, 2.0],
            vec![2.0, 2.0, 5.0],
            vec![0.0, 3.0, 1.0],
            vec![2.5, 0.5, 3.5],
        ])
    }

    #[test]
    fn converges_to_exact_values() {
        let g = demo_game();
        let exact = exact_shapley(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let est = sampled_shapley(
            &g,
            &SampleConfig {
                max_permutations: 20_000,
                ..SampleConfig::default()
            },
            &mut rng,
        );
        for (e, s) in exact.iter().zip(&est.values) {
            assert!((e - s).abs() < 0.05, "exact {e} sampled {s}");
        }
    }

    #[test]
    fn every_permutation_is_efficient() {
        // Each permutation's marginals telescope to v(N), so the estimate
        // is exactly efficient regardless of sample count.
        let g = demo_game();
        let mut rng = StdRng::seed_from_u64(5);
        let est = sampled_shapley(
            &g,
            &SampleConfig {
                max_permutations: 7,
                antithetic: false,
                ..SampleConfig::default()
            },
            &mut rng,
        );
        let grand = {
            use crate::coalition::Coalition;
            use crate::game::Game;
            g.value(&Coalition::grand(5))
        };
        let total: f64 = est.values.iter().sum();
        assert!((total - grand).abs() < 1e-9);
        assert_eq!(est.permutations, 7);
    }

    #[test]
    fn stderr_stopping_rule_halts_early() {
        let g = demo_game();
        let mut rng = StdRng::seed_from_u64(1);
        let est = sampled_shapley(
            &g,
            &SampleConfig {
                max_permutations: 100_000,
                target_stderr: 0.05,
                min_permutations: 100,
                antithetic: true,
            },
            &mut rng,
        );
        assert!(est.permutations < 100_000);
        assert!(est.max_std_error() <= 0.05);
    }

    #[test]
    fn stratified_estimator_converges_and_is_efficient() {
        let g = demo_game();
        let exact = exact_shapley(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let est = stratified_shapley(&g, 5_000, &mut rng);
        for (e, s) in exact.iter().zip(&est) {
            assert!((e - s).abs() < 0.05, "exact {e} stratified {s}");
        }
        // Telescoping marginals make every pass efficient.
        use crate::coalition::Coalition;
        use crate::game::Game;
        let grand = g.value(&Coalition::grand(5));
        let total: f64 = est.iter().sum();
        assert!((total - grand).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn stratified_rejects_zero_samples() {
        let g = demo_game();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = stratified_shapley(&g, 0, &mut rng);
    }

    #[test]
    fn antithetic_reduces_variance() {
        let g = demo_game();
        let budget = 2000;
        let run = |antithetic: bool, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            sampled_shapley(
                &g,
                &SampleConfig {
                    max_permutations: budget,
                    antithetic,
                    ..SampleConfig::default()
                },
                &mut rng,
            )
            .max_std_error()
        };
        // Average over seeds to avoid a fluke comparison.
        let plain: f64 = (0..5).map(|s| run(false, s)).sum();
        let anti: f64 = (0..5).map(|s| run(true, s)).sum();
        assert!(anti < plain, "antithetic {anti} plain {plain}");
    }
}
