//! Monte Carlo Shapley estimation by permutation sampling.
//!
//! For games too large to enumerate, the Shapley value is estimated as the
//! empirical mean of marginal contributions over uniformly random player
//! permutations — the standard unbiased estimator. Two refinements:
//!
//! * **antithetic pairs** — each sampled permutation is also replayed in
//!   reverse, which cancels much of the positional variance for monotone
//!   cost games;
//! * **standard-error stopping** — sampling stops once the largest
//!   per-player standard error of the mean drops below a target (or the
//!   sample budget is exhausted).
//!
//! Variance accounting is *pair-aware*: an antithetic forward/reverse pair
//! is one correlated draw, not two independent ones, so standard errors
//! are computed over pair means. Treating the two halves as independent
//! (dividing by the raw permutation count) misstates the error whenever
//! the halves correlate — it understates it when reversal leaves the
//! marginal unchanged, exactly the regime where antithetic sampling buys
//! nothing. [`Moments`] keeps both accountings so the bias is testable.

use rand::seq::SliceRandom;
use rand::Rng;
use std::time::Instant;

use crate::cache::CachedGame;
use crate::game::{
    replay_marginals_into, replay_marginals_paired_into, EvalCounters, IncrementalGame,
};

/// Reusable per-worker replay buffers: the permutation, the forward and
/// reverse marginal vectors, and *two* incremental game states — one per
/// antithetic chain, so a forward/reverse pair replays as two interleaved
/// dependency chains ([`replay_marginals_paired_into`]) instead of two
/// serialized passes. Allocated once per estimator (or per parallel
/// batch) so the inner sampling loop performs **no heap allocation after
/// warm-up** — shuffling mutates the permutation in place and the states
/// are rewound via [`IncrementalGame::reset_state`] instead of rebuilt.
#[derive(Debug)]
pub struct SampleScratch<S> {
    pub(crate) order: Vec<usize>,
    pub(crate) forward: Vec<f64>,
    pub(crate) reverse: Vec<f64>,
    pub(crate) state: S,
    pub(crate) state_rev: S,
}

impl<S> SampleScratch<S> {
    /// Scratch sized for `game`.
    ///
    /// # Panics
    ///
    /// Panics if the game has no players.
    pub fn for_game<G: IncrementalGame<State = S>>(game: &G) -> Self {
        let n = game.player_count();
        assert!(n > 0, "game must have at least one player");
        Self {
            order: (0..n).collect(),
            forward: vec![0.0; n],
            reverse: vec![0.0; n],
            state: game.initial_state(),
            state_rev: game.initial_state(),
        }
    }

    /// Number of players the scratch covers.
    pub fn player_count(&self) -> usize {
        self.order.len()
    }
}

/// Configuration for [`sampled_shapley`].
#[derive(Debug, Clone, Copy)]
pub struct SampleConfig {
    /// Maximum number of permutations to draw (antithetic replays count
    /// separately toward this budget).
    pub max_permutations: usize,
    /// Stop early when every player's standard error of the mean falls
    /// below this absolute value. `0.0` disables early stopping.
    pub target_stderr: f64,
    /// Minimum permutations before the stopping rule may fire.
    pub min_permutations: usize,
    /// Whether to replay each permutation reversed (antithetic sampling).
    pub antithetic: bool,
}

impl Default for SampleConfig {
    fn default() -> Self {
        Self {
            max_permutations: 2000,
            target_stderr: 0.0,
            min_permutations: 64,
            antithetic: true,
        }
    }
}

/// Result of a sampled Shapley estimation.
#[derive(Debug, Clone)]
pub struct ShapleyEstimate {
    /// Estimated Shapley value per player.
    pub values: Vec<f64>,
    /// Standard error of the mean per player, computed over independent
    /// samples (antithetic pairs count once).
    pub std_errors: Vec<f64>,
    /// Number of permutations actually evaluated.
    pub permutations: usize,
    /// Number of *independent* samples behind `std_errors`: antithetic
    /// pairs count once, unpaired permutations once.
    pub samples: usize,
    /// Work performed to produce the estimate.
    pub counters: EvalCounters,
}

impl ShapleyEstimate {
    /// Largest per-player standard error.
    pub fn max_std_error(&self) -> f64 {
        self.std_errors.iter().copied().fold(0.0, f64::max)
    }
}

/// Streaming first and second moments of per-permutation marginals.
///
/// Tracks two parallel accountings per player:
///
/// * **raw** — sums over individual permutations, which give the unbiased
///   mean estimate and the (incorrect under antithetic sampling)
///   independence-assuming standard error;
/// * **sample** — sums over *independent samples*, where an antithetic
///   forward/reverse pair contributes its pair mean once. Standard errors
///   and the stopping rule use this accounting.
///
/// Batches accumulated independently merge by summation
/// ([`Moments::merge`]), so a partitioned permutation stream yields the
/// same statistics as a single pass (up to floating-point associativity).
#[derive(Debug, Clone, PartialEq)]
pub struct Moments {
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
    sample_sum: Vec<f64>,
    sample_sum_sq: Vec<f64>,
    permutations: usize,
    samples: usize,
}

impl Moments {
    /// Empty moments for an `n`-player game.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zero(n: usize) -> Self {
        assert!(n > 0, "game must have at least one player");
        Self {
            sum: vec![0.0; n],
            sum_sq: vec![0.0; n],
            sample_sum: vec![0.0; n],
            sample_sum_sq: vec![0.0; n],
            permutations: 0,
            samples: 0,
        }
    }

    /// Number of players tracked.
    pub fn player_count(&self) -> usize {
        self.sum.len()
    }

    /// Permutations recorded so far.
    pub fn permutations(&self) -> usize {
        self.permutations
    }

    /// Independent samples recorded so far (pairs count once).
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Records one permutation's marginals as an independent sample.
    ///
    /// # Panics
    ///
    /// Panics if `marginals` has the wrong length.
    pub fn record_single(&mut self, marginals: &[f64]) {
        assert_eq!(marginals.len(), self.sum.len(), "player count mismatch");
        for (p, &m) in marginals.iter().enumerate() {
            self.sum[p] += m;
            self.sum_sq[p] += m * m;
            self.sample_sum[p] += m;
            self.sample_sum_sq[p] += m * m;
        }
        self.permutations += 1;
        self.samples += 1;
    }

    /// Records an antithetic forward/reverse pair: both permutations enter
    /// the raw mean, but the pair contributes a single sample — its pair
    /// mean — to the variance accounting.
    ///
    /// # Panics
    ///
    /// Panics if either slice has the wrong length.
    pub fn record_pair(&mut self, forward: &[f64], reverse: &[f64]) {
        assert_eq!(forward.len(), self.sum.len(), "player count mismatch");
        assert_eq!(reverse.len(), self.sum.len(), "player count mismatch");
        // One tight pass per accumulator array instead of a single loop
        // striding four arrays at once: each pass streams two inputs and
        // one output. Per-slot arithmetic is unchanged, so the split is
        // bit-identical to the fused loop.
        for (s, (&f, &r)) in self.sum.iter_mut().zip(forward.iter().zip(reverse)) {
            *s += f + r;
        }
        for (s, (&f, &r)) in self.sum_sq.iter_mut().zip(forward.iter().zip(reverse)) {
            *s += f * f + r * r;
        }
        for (s, (&f, &r)) in self.sample_sum.iter_mut().zip(forward.iter().zip(reverse)) {
            *s += 0.5 * (f + r);
        }
        for (s, (&f, &r)) in self
            .sample_sum_sq
            .iter_mut()
            .zip(forward.iter().zip(reverse))
        {
            let pair_mean = 0.5 * (f + r);
            *s += pair_mean * pair_mean;
        }
        self.permutations += 2;
        self.samples += 1;
    }

    /// Folds another batch's moments into this one. Merging in batch order
    /// reproduces the single-pass statistics bit-for-bit for the same
    /// grouping; regrouping agrees up to floating-point associativity.
    ///
    /// # Panics
    ///
    /// Panics if the player counts differ.
    pub fn merge(&mut self, other: &Moments) {
        assert_eq!(
            self.sum.len(),
            other.sum.len(),
            "cannot merge moments of different games"
        );
        for p in 0..self.sum.len() {
            self.sum[p] += other.sum[p];
            self.sum_sq[p] += other.sum_sq[p];
            self.sample_sum[p] += other.sample_sum[p];
            self.sample_sum_sq[p] += other.sample_sum_sq[p];
        }
        self.permutations += other.permutations;
        self.samples += other.samples;
    }

    /// Mean marginal per player — the Shapley estimate.
    pub fn values(&self) -> Vec<f64> {
        let k = self.permutations as f64;
        self.sum.iter().map(|s| s / k).collect()
    }

    /// Pair-aware standard error of the mean per player.
    pub fn std_errors(&self) -> Vec<f64> {
        self.sample_sum
            .iter()
            .zip(&self.sample_sum_sq)
            .map(|(&s, &sq)| stderr(s, sq, self.samples))
            .collect()
    }

    /// Standard errors under the (incorrect for antithetic pairs)
    /// assumption that every permutation is an independent sample. Kept
    /// for regression comparison against the pre-fix accounting.
    pub fn naive_std_errors(&self) -> Vec<f64> {
        self.sum
            .iter()
            .zip(&self.sum_sq)
            .map(|(&s, &sq)| stderr(s, sq, self.permutations))
            .collect()
    }

    /// Largest pair-aware per-player standard error.
    pub fn max_std_error(&self) -> f64 {
        self.std_errors().iter().copied().fold(0.0, f64::max)
    }

    /// Finalizes into a [`ShapleyEstimate`] carrying `counters`.
    pub fn into_estimate(self, counters: EvalCounters) -> ShapleyEstimate {
        ShapleyEstimate {
            values: self.values(),
            std_errors: self.std_errors(),
            permutations: self.permutations,
            samples: self.samples,
            counters,
        }
    }
}

/// Estimates Shapley values by permutation sampling.
///
/// # Panics
///
/// Panics if the game has no players or `max_permutations == 0` — an
/// estimate from zero samples is meaningless.
pub fn sampled_shapley<G: IncrementalGame>(
    game: &G,
    config: &SampleConfig,
    rng: &mut impl Rng,
) -> ShapleyEstimate {
    let mut scratch = SampleScratch::for_game(game);
    sampled_shapley_with_scratch(game, config, rng, &mut scratch)
}

/// [`sampled_shapley`] over caller-owned scratch buffers, letting a
/// worker amortize its allocations across many estimations. The returned
/// estimate is identical to [`sampled_shapley`]'s for the same RNG
/// stream.
///
/// # Panics
///
/// Same conditions as [`sampled_shapley`], plus a scratch sized for a
/// different player count.
pub fn sampled_shapley_with_scratch<G: IncrementalGame>(
    game: &G,
    config: &SampleConfig,
    rng: &mut impl Rng,
    scratch: &mut SampleScratch<G::State>,
) -> ShapleyEstimate {
    let n = game.player_count();
    assert!(n > 0, "game must have at least one player");
    assert_eq!(scratch.player_count(), n, "scratch sized for another game");
    assert!(
        config.max_permutations > 0,
        "at least one permutation is required"
    );

    let start = Instant::now();
    let mut moments = Moments::zero(n);
    let mut counters = EvalCounters::default();

    // `shuffle` permutes in place, so the stream depends on the starting
    // order; rewind a reused scratch to the identity so the estimate is a
    // function of the RNG alone.
    for (i, slot) in scratch.order.iter_mut().enumerate() {
        *slot = i;
    }

    while moments.permutations() < config.max_permutations {
        scratch.order.shuffle(rng);
        if config.antithetic && moments.permutations() + 1 < config.max_permutations {
            replay_marginals_paired_into(
                game,
                &scratch.order,
                &mut scratch.state,
                &mut scratch.state_rev,
                &mut scratch.forward,
                &mut scratch.reverse,
                &mut counters,
            );
            // The paired kernel reads the reversal via indexing; the
            // explicit reverse is still required because `shuffle`
            // permutes in place — the next draw's Fisher-Yates walk
            // starts from whatever arrangement the buffer holds, and the
            // historical (sequential-replay) RNG stream reversed here.
            scratch.order.reverse();
            moments.record_pair(&scratch.forward, &scratch.reverse);
        } else {
            replay_marginals_into(
                game,
                &scratch.order,
                &mut scratch.state,
                &mut scratch.forward,
                &mut counters,
            );
            moments.record_single(&scratch.forward);
        }
        if config.target_stderr > 0.0
            && moments.permutations() >= config.min_permutations
            && moments.max_std_error() <= config.target_stderr
        {
            break;
        }
    }

    counters.batches = 1;
    counters.wall_time_secs = start.elapsed().as_secs_f64();
    moments.into_estimate(counters)
}

/// [`sampled_shapley`] behind a [`CoalitionCache`](crate::cache::CoalitionCache):
/// every permutation prefix is memoized by its membership bitmask, so
/// repeated prefixes skip the characteristic function entirely. The
/// permutation stream is a function of `rng` alone, so the estimate
/// matches the uncached run exactly for games whose values are exact in
/// floating point (and up to the game's own summation associativity
/// otherwise); `counters.cache_hits` / `cache_misses` report the savings.
///
/// # Panics
///
/// Same conditions as [`sampled_shapley`], plus games with more than 64
/// players (coalition bitmasks are one machine word).
pub fn sampled_shapley_cached<G: IncrementalGame>(
    game: &G,
    config: &SampleConfig,
    rng: &mut impl Rng,
) -> ShapleyEstimate {
    let cached = CachedGame::new(game);
    sampled_shapley(&cached, config, rng)
}

/// Estimates Shapley values by *position-stratified* sampling: each drawn
/// permutation serves every stratum (coalition size) at once — the prefix
/// of length `s` ending at a player is a random `s`-subset *conditioned on
/// the permutation*, and each player lands in exactly one stratum per
/// pass, so across passes every (player, size) pair is visited with equal
/// frequency. This is the permutation-prefix form of Castro-style
/// stratification, **not** independent uniform `s`-subset draws per
/// stratum: within one pass the prefixes are nested, which trades
/// per-stratum independence for `n` strata per game evaluation sweep.
/// Unlike [`sampled_shapley`] it balances the budget across coalition
/// sizes, which helps games whose marginals vary sharply with size (e.g.
/// the matching game's odd/even alternation).
///
/// Cost is `O(n² · samples_per_stratum)` coalition evaluations, so it
/// suits moderate `n` with expensive positional variance rather than
/// very large games.
///
/// # Panics
///
/// Panics if the game has no players or `samples_per_stratum == 0`.
pub fn stratified_shapley<G: IncrementalGame>(
    game: &G,
    samples_per_stratum: usize,
    rng: &mut impl Rng,
) -> Vec<f64> {
    let n = game.player_count();
    assert!(n > 0, "game must have at least one player");
    assert!(
        samples_per_stratum > 0,
        "need at least one sample per stratum"
    );
    let mut moments = Moments::zero(n);
    let mut counters = EvalCounters::default();
    let mut scratch = SampleScratch::for_game(game);
    for _ in 0..samples_per_stratum {
        // One permutation covers every stratum; the reversed pass swaps
        // every player's stratum (position i ↔ n−1−i), halving the
        // positional imbalance per sample. Both passes run as one
        // interleaved paired replay; the explicit reverse preserves the
        // historical RNG stream (shuffle permutes in place).
        scratch.order.shuffle(rng);
        replay_marginals_paired_into(
            game,
            &scratch.order,
            &mut scratch.state,
            &mut scratch.state_rev,
            &mut scratch.forward,
            &mut scratch.reverse,
            &mut counters,
        );
        scratch.order.reverse();
        moments.record_pair(&scratch.forward, &scratch.reverse);
    }
    moments.values()
}

fn stderr(sum: f64, sum_sq: f64, k: usize) -> f64 {
    if k < 2 {
        return f64::INFINITY;
    }
    let kf = k as f64;
    let mean = sum / kf;
    let var = (sum_sq / kf - mean * mean).max(0.0) * kf / (kf - 1.0);
    (var / kf).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_shapley;
    use crate::game::{replay_marginals, PeakDemandGame, Replay, TableGame};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo_game() -> PeakDemandGame {
        PeakDemandGame::new(vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 4.0, 2.0],
            vec![2.0, 2.0, 5.0],
            vec![0.0, 3.0, 1.0],
            vec![2.5, 0.5, 3.5],
        ])
    }

    /// A 4-player game whose value depends only on coalition *size*, with
    /// size increments symmetric around the middle (1, 5, 5, 1). A
    /// player's marginal is then a function of its position alone, and
    /// reversal maps position i to n−1−i where the increment is
    /// *identical* — antithetic replays duplicate the sample exactly.
    fn symmetric_size_game() -> Replay<TableGame> {
        let increments = [1.0, 5.0, 5.0, 1.0];
        let values: Vec<f64> = (0u64..16)
            .map(|mask| {
                let size = mask.count_ones() as usize;
                increments[..size].iter().sum()
            })
            .collect();
        Replay(TableGame::new(4, values))
    }

    #[test]
    fn converges_to_exact_values() {
        let g = demo_game();
        let exact = exact_shapley(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let est = sampled_shapley(
            &g,
            &SampleConfig {
                max_permutations: 20_000,
                ..SampleConfig::default()
            },
            &mut rng,
        );
        for (e, s) in exact.iter().zip(&est.values) {
            assert!((e - s).abs() < 0.05, "exact {e} sampled {s}");
        }
    }

    #[test]
    fn every_permutation_is_efficient() {
        // Each permutation's marginals telescope to v(N), so the estimate
        // is exactly efficient regardless of sample count.
        let g = demo_game();
        let mut rng = StdRng::seed_from_u64(5);
        let est = sampled_shapley(
            &g,
            &SampleConfig {
                max_permutations: 7,
                antithetic: false,
                ..SampleConfig::default()
            },
            &mut rng,
        );
        let grand = {
            use crate::coalition::Coalition;
            use crate::game::Game;
            g.value(&Coalition::grand(5))
        };
        let total: f64 = est.values.iter().sum();
        assert!((total - grand).abs() < 1e-9);
        assert_eq!(est.permutations, 7);
        assert_eq!(est.samples, 7);
    }

    #[test]
    fn stderr_stopping_rule_halts_early() {
        let g = demo_game();
        let mut rng = StdRng::seed_from_u64(1);
        let est = sampled_shapley(
            &g,
            &SampleConfig {
                max_permutations: 100_000,
                target_stderr: 0.05,
                min_permutations: 100,
                antithetic: true,
            },
            &mut rng,
        );
        assert!(est.permutations < 100_000);
        assert!(est.max_std_error() <= 0.05);
    }

    #[test]
    fn stratified_estimator_converges_and_is_efficient() {
        let g = demo_game();
        let exact = exact_shapley(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let est = stratified_shapley(&g, 5_000, &mut rng);
        for (e, s) in exact.iter().zip(&est) {
            assert!((e - s).abs() < 0.05, "exact {e} stratified {s}");
        }
        // Telescoping marginals make every pass efficient.
        use crate::coalition::Coalition;
        use crate::game::Game;
        let grand = g.value(&Coalition::grand(5));
        let total: f64 = est.iter().sum();
        assert!((total - grand).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn stratified_rejects_zero_samples() {
        let g = demo_game();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = stratified_shapley(&g, 0, &mut rng);
    }

    #[test]
    fn antithetic_reduces_variance() {
        let g = demo_game();
        let budget = 2000;
        let run = |antithetic: bool, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            sampled_shapley(
                &g,
                &SampleConfig {
                    max_permutations: budget,
                    antithetic,
                    ..SampleConfig::default()
                },
                &mut rng,
            )
            .max_std_error()
        };
        // Average over seeds to avoid a fluke comparison. With pair-aware
        // accounting this now compares the *true* estimator errors: the
        // antithetic run has half the independent samples, so winning
        // means the pairing genuinely cancels variance.
        let plain: f64 = (0..5).map(|s| run(false, s)).sum();
        let anti: f64 = (0..5).map(|s| run(true, s)).sum();
        assert!(anti < plain, "antithetic {anti} plain {plain}");
    }

    #[test]
    fn pair_aware_stderr_corrects_the_naive_understatement() {
        // Regression for the antithetic variance accounting. In the
        // symmetric size game a reversed replay reproduces the forward
        // marginals exactly, so the pair carries the information of ONE
        // permutation. The old accounting divided by the raw permutation
        // count (2k), claiming plain-sampling precision from half the
        // information; the pair-aware stderr must be larger — close to
        // √2× both the naive value and a plain run of the same budget.
        let g = symmetric_size_game();
        let mut moments = Moments::zero(4);
        let mut counters = EvalCounters::default();
        let mut rng = StdRng::seed_from_u64(7);
        let mut order: Vec<usize> = (0..4).collect();
        let mut forward = vec![0.0; 4];
        let mut reverse = vec![0.0; 4];
        for _ in 0..500 {
            order.shuffle(&mut rng);
            replay_marginals(&g, &order, &mut forward, &mut counters);
            order.reverse();
            replay_marginals(&g, &order, &mut reverse, &mut counters);
            // Reversal lands every player on the mirrored increment.
            for (f, r) in forward.iter().zip(&reverse) {
                assert!((f - r).abs() < 1e-12, "pair should be degenerate");
            }
            moments.record_pair(&forward, &reverse);
        }
        let corrected = moments.max_std_error();
        let naive = moments
            .naive_std_errors()
            .iter()
            .copied()
            .fold(0.0, f64::max);
        assert!(
            corrected >= naive,
            "corrected {corrected} must not understate like naive {naive}"
        );
        // Degenerate pairs: with duplicated samples the naive variance
        // over 2k draws relates to the pair variance over k draws by the
        // Bessel factors, corrected = naive·√((2k−1)/(k−1)) — which tends
        // to the familiar √2 understatement as k grows.
        let k = 500.0f64;
        let factor = ((2.0 * k - 1.0) / (k - 1.0)).sqrt();
        assert!(
            (corrected - naive * factor).abs() < 1e-9,
            "corrected {corrected} vs {}",
            naive * factor
        );

        // And against plain sampling with the same permutation budget:
        // the old accounting claimed parity; in truth the antithetic run
        // resolves √2 *worse* here because its pairs are redundant.
        let mut rng = StdRng::seed_from_u64(7);
        let plain = sampled_shapley(
            &g,
            &SampleConfig {
                max_permutations: 1000,
                antithetic: false,
                ..SampleConfig::default()
            },
            &mut rng,
        );
        assert!(
            corrected > plain.max_std_error(),
            "corrected {corrected} should exceed plain {}",
            plain.max_std_error()
        );
    }

    #[test]
    fn estimate_reports_work_counters() {
        let g = demo_game();
        let mut rng = StdRng::seed_from_u64(3);
        let est = sampled_shapley(
            &g,
            &SampleConfig {
                max_permutations: 10,
                antithetic: true,
                ..SampleConfig::default()
            },
            &mut rng,
        );
        assert_eq!(est.permutations, 10);
        assert_eq!(est.samples, 5);
        // 10 permutations × 5 players, one coalition evaluation each.
        assert_eq!(est.counters.coalition_evals, 50);
        assert_eq!(est.counters.marginal_updates, 50);
        assert_eq!(est.counters.batches, 1);
        assert!(est.counters.wall_time_secs >= 0.0);
    }

    /// Acceptance: on a 12-player integer-demand peak game at 4,096
    /// permutations, the coalition cache must cut `coalition_evals` by at
    /// least 50% while leaving the estimate bit-identical. Integer demands
    /// make every partial sum exact in f64, so a cache hit (the
    /// first-computed value for a mask) cannot differ from a recomputation
    /// in any ulp.
    #[test]
    fn cache_halves_evals_with_bit_identical_estimates() {
        let demands: Vec<Vec<f64>> = (0..12)
            .map(|p: u64| {
                (0..6)
                    .map(|t: u64| ((p * 7 + t * 5 + 3) % 9) as f64)
                    .collect()
            })
            .collect();
        let g = PeakDemandGame::new(demands);
        let config = SampleConfig {
            max_permutations: 4096,
            target_stderr: 0.0,
            min_permutations: 1,
            antithetic: true,
        };
        let uncached = sampled_shapley(&g, &config, &mut StdRng::seed_from_u64(42));
        let cached = sampled_shapley_cached(&g, &config, &mut StdRng::seed_from_u64(42));
        assert_eq!(cached.permutations, uncached.permutations);
        for (c, u) in cached.values.iter().zip(&uncached.values) {
            assert_eq!(c.to_bits(), u.to_bits());
        }
        for (c, u) in cached.std_errors.iter().zip(&uncached.std_errors) {
            assert_eq!(c.to_bits(), u.to_bits());
        }
        assert_eq!(uncached.counters.coalition_evals, 4096 * 12);
        assert!(
            cached.counters.coalition_evals * 2 <= uncached.counters.coalition_evals,
            "cache must cut coalition evals ≥ 50%: {} vs {}",
            cached.counters.coalition_evals,
            uncached.counters.coalition_evals
        );
        assert_eq!(
            cached.counters.cache_hits + cached.counters.cache_misses,
            4096 * 12,
            "every prefix lookup is either a hit or a miss"
        );
        // A miss replays any cache-served pending players into the lazy
        // inner state, so true evaluations exceed misses but stay far
        // below the uncached count.
        assert!(cached.counters.coalition_evals >= cached.counters.cache_misses);
        assert!(cached.counters.cache_hit_rate() >= 0.5);
    }

    /// The interleaved paired replay is the hot kernel behind every
    /// antithetic pair; it must reproduce two sequential
    /// `replay_marginals_into` calls bit-for-bit — same marginals, same
    /// counter charges — on both a plain game and a cache-instrumented
    /// one (where the stats() delta path is exercised).
    #[test]
    fn paired_replay_is_bit_identical_to_two_sequential_replays() {
        use crate::game::replay_marginals_paired_into;
        let g = demo_game();
        let mut rng = StdRng::seed_from_u64(17);
        let mut order: Vec<usize> = (0..5).collect();
        let mut state_a = g.initial_state();
        let mut state_b = g.initial_state();
        let (mut fwd_seq, mut rev_seq) = (vec![0.0; 5], vec![0.0; 5]);
        let (mut fwd_pair, mut rev_pair) = (vec![0.0; 5], vec![0.0; 5]);
        for _ in 0..20 {
            order.shuffle(&mut rng);
            let mut seq_counters = EvalCounters::default();
            replay_marginals_into(&g, &order, &mut state_a, &mut fwd_seq, &mut seq_counters);
            let reversed: Vec<usize> = order.iter().rev().copied().collect();
            replay_marginals_into(&g, &reversed, &mut state_a, &mut rev_seq, &mut seq_counters);

            let mut pair_counters = EvalCounters::default();
            replay_marginals_paired_into(
                &g,
                &order,
                &mut state_a,
                &mut state_b,
                &mut fwd_pair,
                &mut rev_pair,
                &mut pair_counters,
            );
            for p in 0..5 {
                assert_eq!(fwd_seq[p].to_bits(), fwd_pair[p].to_bits(), "forward[{p}]");
                assert_eq!(rev_seq[p].to_bits(), rev_pair[p].to_bits(), "reverse[{p}]");
            }
            assert_eq!(seq_counters.coalition_evals, pair_counters.coalition_evals);
            assert_eq!(
                seq_counters.marginal_updates,
                pair_counters.marginal_updates
            );
            assert_eq!(pair_counters.coalition_evals, 10);
            assert_eq!(pair_counters.marginal_updates, 10);
        }
    }

    /// Same pin through a [`CachedGame`]: equal coalition masks from the
    /// two chains keep their relative lookup order under interleaving, so
    /// hit/miss counts and memoized values match the sequential schedule.
    #[test]
    fn paired_replay_matches_sequential_through_the_cache() {
        use crate::cache::CachedGame;
        use crate::game::replay_marginals_paired_into;
        let g = demo_game();
        let mut rng = StdRng::seed_from_u64(23);
        let mut order: Vec<usize> = (0..5).collect();
        let (mut fwd_seq, mut rev_seq) = (vec![0.0; 5], vec![0.0; 5]);
        let (mut fwd_pair, mut rev_pair) = (vec![0.0; 5], vec![0.0; 5]);
        let mut orders = Vec::new();
        for _ in 0..12 {
            order.shuffle(&mut rng);
            orders.push(order.clone());
        }

        let seq_game = CachedGame::new(&g);
        let mut seq_counters = EvalCounters::default();
        let mut state = seq_game.initial_state();
        let mut seq_values = Vec::new();
        for order in &orders {
            replay_marginals_into(
                &seq_game,
                order,
                &mut state,
                &mut fwd_seq,
                &mut seq_counters,
            );
            let reversed: Vec<usize> = order.iter().rev().copied().collect();
            replay_marginals_into(
                &seq_game,
                &reversed,
                &mut state,
                &mut rev_seq,
                &mut seq_counters,
            );
            seq_values.push((fwd_seq.clone(), rev_seq.clone()));
        }

        let pair_game = CachedGame::new(&g);
        let mut pair_counters = EvalCounters::default();
        let mut state_f = pair_game.initial_state();
        let mut state_r = pair_game.initial_state();
        for (order, (fs, rs)) in orders.iter().zip(&seq_values) {
            replay_marginals_paired_into(
                &pair_game,
                order,
                &mut state_f,
                &mut state_r,
                &mut fwd_pair,
                &mut rev_pair,
                &mut pair_counters,
            );
            for p in 0..5 {
                assert_eq!(fs[p].to_bits(), fwd_pair[p].to_bits(), "forward[{p}]");
                assert_eq!(rs[p].to_bits(), rev_pair[p].to_bits(), "reverse[{p}]");
            }
        }
        assert_eq!(seq_counters.cache_hits, pair_counters.cache_hits);
        assert_eq!(seq_counters.cache_misses, pair_counters.cache_misses);
        assert_eq!(seq_counters.coalition_evals, pair_counters.coalition_evals);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let g = demo_game();
        let config = SampleConfig {
            max_permutations: 64,
            ..SampleConfig::default()
        };
        let mut scratch = SampleScratch::for_game(&g);
        // First run warms the scratch; the second must be unaffected by
        // the leftover permutation/state from the first.
        let _ =
            sampled_shapley_with_scratch(&g, &config, &mut StdRng::seed_from_u64(9), &mut scratch);
        let reused =
            sampled_shapley_with_scratch(&g, &config, &mut StdRng::seed_from_u64(10), &mut scratch);
        let fresh = sampled_shapley(&g, &config, &mut StdRng::seed_from_u64(10));
        for (a, b) in reused.values.iter().zip(&fresh.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "scratch sized for another game")]
    fn mismatched_scratch_panics() {
        let g = demo_game();
        let small = PeakDemandGame::new(vec![vec![1.0], vec![2.0]]);
        let mut scratch = SampleScratch::for_game(&small);
        let _ = sampled_shapley_with_scratch(
            &g,
            &SampleConfig::default(),
            &mut StdRng::seed_from_u64(0),
            &mut scratch,
        );
    }

    #[test]
    fn moments_merge_matches_single_pass() {
        let g = demo_game();
        let mut rng = StdRng::seed_from_u64(21);
        let mut order: Vec<usize> = (0..5).collect();
        let mut counters = EvalCounters::default();
        let mut forward = vec![0.0; 5];
        let mut single = Moments::zero(5);
        let mut batches: Vec<Moments> = Vec::new();
        for chunk in [3usize, 1, 4, 2] {
            let mut batch = Moments::zero(5);
            for _ in 0..chunk {
                order.shuffle(&mut rng);
                replay_marginals(&g, &order, &mut forward, &mut counters);
                batch.record_single(&forward);
                single.record_single(&forward);
            }
            batches.push(batch);
        }
        let mut merged = Moments::zero(5);
        for b in &batches {
            merged.merge(b);
        }
        assert_eq!(merged.permutations(), single.permutations());
        assert_eq!(merged.samples(), single.samples());
        for (m, s) in merged.values().iter().zip(single.values()) {
            assert!((m - s).abs() < 1e-12);
        }
        for (m, s) in merged.std_errors().iter().zip(single.std_errors()) {
            assert!((m - s).abs() < 1e-12);
        }
    }
}
