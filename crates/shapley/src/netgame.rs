//! LP-valued coalition games: network carbon attribution.
//!
//! Players are tenants injecting traffic at datacenter nodes; the
//! characteristic function is the objective of a **min-carbon routing
//! LP** — route the coalition's aggregate traffic to the egress node over
//! capacitated links at the links' carbon prices:
//!
//! ```text
//! v(S) = min Σₗ carbonₗ · fₗ
//!        s.t.  Σ out(v) − Σ in(v) = Σ_{i∈S} demandᵢ(v)   ∀ nodes v ≠ egress
//!              fₗ + slackₗ = capacityₗ                    ∀ links l
//!              f, slack ≥ 0
//! ```
//!
//! The egress node's conservation row is dropped (the standard trick that
//! makes the incidence matrix full-rank), so the constraint matrix is a
//! network matrix extended by unit capacity/slack rows — **totally
//! unimodular**. On instances with integer capacities and demands and
//! dyadic link prices (see `fairco2-carbon`'s `network` module) every
//! simplex quantity is exact in `f64`, so warm-started coalition solves
//! return objectives bit-identical to cold solves — the property the
//! determinism pins assert.
//!
//! # Typed outcomes → documented game values
//!
//! * `Optimal` — `v(S)` is the LP objective.
//! * `Infeasible` (the coalition's demand exceeds what the network can
//!   carry) — `v(S) = penalty_rate × total demand of S`. With the default
//!   rate (the sum of all link prices, an upper bound on any simple
//!   path's cost) this preserves monotonicity across the feasibility
//!   boundary: a feasible coalition's routing cost never exceeds the
//!   penalty a superset pays.
//! * `Unbounded` — impossible for validated instances (prices ≥ 0 bound
//!   the objective below by zero); mapped defensively to the same
//!   penalty so the game never produces NaN or panics on a typed
//!   outcome.
//!
//! # Warm starts along the lattice
//!
//! Between coalitions only the right-hand side `b` changes (the matrix
//! and costs are fixed), so a relative's optimal basis stays *dual*
//! feasible and the dual simplex reuses it. [`NetworkCarbonGame`]'s
//! [`IncrementalGame`] state threads the previous basis through
//! permutation replay, and [`NetworkCarbonGame::fill_lattice_warm`]
//! chains each coalition off `mask & (mask − 1)` while counting saved
//! iterations — the statistic `perf_report --section network` reports.

use fairco2_solver::{
    certify, solve, solve_warm, Basis, Csc, LinearProgram, LpOutcome, Solution, SolveStats,
};

use crate::coalition::Coalition;
use crate::game::{Game, IncrementalGame};

/// One directed, capacitated link with a carbon price per traffic unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Source node.
    pub from: usize,
    /// Destination node.
    pub to: usize,
    /// Capacity in traffic units (integer-valued for exact instances).
    pub capacity: f64,
    /// Carbon price per traffic unit (dyadic for exact instances).
    pub carbon_per_unit: f64,
}

/// A datacenter network: nodes, directed links, and the egress node that
/// absorbs all routed traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    nodes: usize,
    egress: usize,
    links: Vec<Link>,
}

impl Network {
    /// Builds a network.
    ///
    /// # Panics
    ///
    /// Panics if `egress` is out of range, a link endpoint is out of
    /// range or a self-loop, or a capacity/price is negative or
    /// non-finite.
    pub fn new(nodes: usize, egress: usize, links: Vec<Link>) -> Self {
        assert!(egress < nodes, "egress node out of range");
        for (i, l) in links.iter().enumerate() {
            assert!(
                l.from < nodes && l.to < nodes,
                "link {i} endpoint out of range"
            );
            assert!(l.from != l.to, "link {i} is a self-loop");
            assert!(
                l.capacity.is_finite() && l.capacity >= 0.0,
                "link {i} capacity must be finite and non-negative"
            );
            assert!(
                l.carbon_per_unit.is_finite() && l.carbon_per_unit >= 0.0,
                "link {i} carbon price must be finite and non-negative"
            );
        }
        Self {
            nodes,
            egress,
            links,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The egress node.
    pub fn egress(&self) -> usize {
        self.egress
    }

    /// The links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Sum of all link prices in link order — an upper bound on the cost
    /// of any simple path, and the default penalty rate.
    pub fn total_carbon_rate(&self) -> f64 {
        let mut acc = 0.0;
        for l in &self.links {
            if l.carbon_per_unit != 0.0 {
                acc += l.carbon_per_unit;
            }
        }
        acc
    }
}

/// How a coalition's value came about.
#[derive(Debug, Clone)]
pub enum CoalitionValue {
    /// The LP was solved to optimality: `v(S)` = routing carbon.
    Routed(Solution),
    /// The demand could not be routed (or the solve was defensively
    /// mapped): `v(S)` = penalty.
    Unroutable {
        /// `penalty_rate × total demand of S`.
        penalty: f64,
    },
}

impl CoalitionValue {
    /// The game value `v(S)` in carbon units.
    pub fn carbon(&self) -> f64 {
        match self {
            CoalitionValue::Routed(sol) => sol.objective,
            CoalitionValue::Unroutable { penalty } => *penalty,
        }
    }

    /// The optimal basis, if the coalition was routed — the warm-start
    /// seed for relatives.
    pub fn basis(&self) -> Option<&Basis> {
        match self {
            CoalitionValue::Routed(sol) => Some(&sol.basis),
            CoalitionValue::Unroutable { .. } => None,
        }
    }

    /// Solve statistics, if a solve ran to optimality.
    pub fn stats(&self) -> Option<SolveStats> {
        match self {
            CoalitionValue::Routed(sol) => Some(sol.stats),
            CoalitionValue::Unroutable { .. } => None,
        }
    }
}

/// Iteration accounting for a full coalition-lattice fill (see
/// [`NetworkCarbonGame::fill_lattice_warm`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatticeStats {
    /// Coalitions evaluated (2ⁿ including the empty one).
    pub coalitions: u64,
    /// Solves that were offered a parent basis.
    pub warm_attempts: u64,
    /// Warm offers the dual simplex actually served (no cold fallback).
    pub warm_hits: u64,
    /// Total simplex iterations across all solves.
    pub iterations: u64,
    /// Coalitions whose demand was unroutable (penalty-valued).
    pub unroutable: u64,
}

/// The network carbon attribution game. Holds the fixed LP skeleton
/// (matrix and costs) and the per-tenant demand vectors; coalitions only
/// swap the right-hand side.
///
/// `value()` performs a pure cold solve with no interior mutability, so
/// the game is `Sync` and drops unchanged into
/// [`crate::exact::parallel_exact_shapley`] and the sampling engines.
#[derive(Debug, Clone)]
pub struct NetworkCarbonGame {
    network: Network,
    /// `demands[tenant][node]` — traffic injected by `tenant` at `node`.
    demands: Vec<Vec<f64>>,
    penalty_rate: f64,
    /// Fixed constraint matrix: conservation rows (egress dropped) then
    /// one capacity row per link; flow columns then slack columns.
    a: Csc,
    /// Fixed costs: link prices then zeros for slacks.
    costs: Vec<f64>,
    /// Conservation row of each non-egress node (`usize::MAX` for the
    /// egress).
    node_row: Vec<usize>,
    rows: usize,
}

impl NetworkCarbonGame {
    /// Builds the game with the default penalty rate
    /// ([`Network::total_carbon_rate`]).
    ///
    /// # Panics
    ///
    /// Panics on invalid demands — see [`Self::with_penalty_rate`].
    pub fn new(network: Network, demands: Vec<Vec<f64>>) -> Self {
        let rate = network.total_carbon_rate();
        Self::with_penalty_rate(network, demands, rate)
    }

    /// Builds the game with an explicit penalty rate for unroutable
    /// coalitions. Monotonicity of `v` is guaranteed when the rate is at
    /// least [`Network::total_carbon_rate`].
    ///
    /// # Panics
    ///
    /// Panics if a demand vector has the wrong length, injects at the
    /// egress, or contains a negative/non-finite entry; or if the rate is
    /// negative or non-finite.
    pub fn with_penalty_rate(network: Network, demands: Vec<Vec<f64>>, penalty_rate: f64) -> Self {
        assert!(
            penalty_rate.is_finite() && penalty_rate >= 0.0,
            "penalty rate must be finite and non-negative"
        );
        for (i, d) in demands.iter().enumerate() {
            assert_eq!(d.len(), network.nodes(), "tenant {i} demand vector length");
            assert!(
                d.iter().all(|v| v.is_finite() && *v >= 0.0),
                "tenant {i} demands must be finite and non-negative"
            );
            assert_eq!(d[network.egress()], 0.0, "tenant {i} injects at the egress");
        }
        // Conservation rows for every node except the egress.
        let mut node_row = vec![usize::MAX; network.nodes()];
        let mut next = 0usize;
        for (v, row) in node_row.iter_mut().enumerate() {
            if v != network.egress() {
                *row = next;
                next += 1;
            }
        }
        let nlinks = network.links().len();
        let rows = next + nlinks;
        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(4 * nlinks);
        let mut costs = Vec::with_capacity(2 * nlinks);
        for (l, link) in network.links().iter().enumerate() {
            if node_row[link.from] != usize::MAX {
                triplets.push((node_row[link.from], l, 1.0));
            }
            if node_row[link.to] != usize::MAX {
                triplets.push((node_row[link.to], l, -1.0));
            }
            triplets.push((next + l, l, 1.0)); // capacity row
            costs.push(link.carbon_per_unit);
        }
        for l in 0..nlinks {
            triplets.push((next + l, nlinks + l, 1.0)); // slack column
            costs.push(0.0);
        }
        let a = Csc::from_triplets(rows, 2 * nlinks, &triplets);
        Self {
            network,
            demands,
            penalty_rate,
            a,
            costs,
            node_row,
            rows,
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The penalty rate applied to unroutable demand.
    pub fn penalty_rate(&self) -> f64 {
        self.penalty_rate
    }

    /// Total demand injected by `coalition`, accumulated tenant-major in
    /// ascending index order (the canonical order used everywhere).
    pub fn total_demand(&self, coalition: &Coalition) -> f64 {
        let mut acc = 0.0;
        for t in coalition.iter() {
            for &d in &self.demands[t] {
                if d != 0.0 {
                    acc += d;
                }
            }
        }
        acc
    }

    fn rhs_for(&self, coalition: &Coalition) -> Vec<f64> {
        let mut b = vec![0.0f64; self.rows];
        // Ascending tenant index: the canonical accumulation order, so a
        // coalition's rhs — and therefore its solve — is independent of
        // the order players arrived in.
        for t in coalition.iter() {
            for (v, &d) in self.demands[t].iter().enumerate() {
                if d != 0.0 {
                    b[self.node_row[v]] += d;
                }
            }
        }
        let ncons = self.rows - self.network.links().len();
        for (l, link) in self.network.links().iter().enumerate() {
            b[ncons + l] = link.capacity;
        }
        b
    }

    /// The coalition's routing LP (shared matrix and costs, coalition
    /// right-hand side) — exposed so tests and benches can run
    /// independent certificates against the raw instance.
    pub fn coalition_program(&self, coalition: &Coalition) -> LinearProgram {
        LinearProgram::new(self.a.clone(), self.rhs_for(coalition), self.costs.clone())
    }

    fn outcome_to_value(&self, coalition: &Coalition, outcome: LpOutcome) -> CoalitionValue {
        match outcome {
            LpOutcome::Optimal(sol) => CoalitionValue::Routed(sol),
            LpOutcome::Infeasible | LpOutcome::Unbounded => CoalitionValue::Unroutable {
                penalty: self.penalty_rate * self.total_demand(coalition),
            },
        }
    }

    /// Evaluates `v(S)` with a cold solve.
    ///
    /// # Panics
    ///
    /// Panics on a genuine solver failure (iteration cap, factorization
    /// breakdown) — a bug for validated instances, surfaced loudly so
    /// retry harnesses can catch it, never folded into a game value.
    pub fn evaluate(&self, coalition: &Coalition) -> CoalitionValue {
        let lp = self.coalition_program(coalition);
        let outcome = solve(&lp).expect("network LP solve failed on a validated instance");
        self.outcome_to_value(coalition, outcome)
    }

    /// Evaluates `v(S)` warm-starting from a relative's optimal basis.
    /// Falls back internally (inside the solver) to the cold path when
    /// the basis is unusable; on exact-dyadic instances the objective is
    /// bit-identical to [`Self::evaluate`] either way.
    ///
    /// # Panics
    ///
    /// As [`Self::evaluate`].
    pub fn evaluate_warm(&self, coalition: &Coalition, basis: &Basis) -> CoalitionValue {
        let lp = self.coalition_program(coalition);
        let outcome =
            solve_warm(&lp, basis).expect("network LP warm solve failed on a validated instance");
        self.outcome_to_value(coalition, outcome)
    }

    /// Asserts the KKT certificate of a routed solution against the raw
    /// coalition instance; returns the duality gap. Used by the bench
    /// gates ("duality gap ≤ 1e-9 on every accepted solve").
    pub fn certified_gap(&self, coalition: &Coalition, sol: &Solution) -> f64 {
        let lp = self.coalition_program(coalition);
        let cert = certify(&lp, sol);
        assert!(
            cert.passes(1e-6 * (1.0 + sol.objective.abs())),
            "KKT certificate violated: {cert:?}"
        );
        cert.duality_gap
    }

    /// Evaluates every coalition of the full lattice with cold solves.
    /// Returns values indexed by coalition bitmask and the iteration
    /// accounting.
    ///
    /// # Panics
    ///
    /// Panics if the game has more than 24 players (the lattice would not
    /// fit) or on a genuine solver failure.
    pub fn fill_lattice_cold(&self) -> (Vec<f64>, LatticeStats) {
        self.fill_lattice(false)
    }

    /// Evaluates every coalition of the full lattice, warm-starting each
    /// coalition from its parent `mask & (mask − 1)` (the coalition minus
    /// its lowest player). Bit-identical to
    /// [`Self::fill_lattice_cold`] on exact-dyadic instances — pinned by
    /// the determinism suite and asserted as a bench gate.
    ///
    /// # Panics
    ///
    /// As [`Self::fill_lattice_cold`].
    pub fn fill_lattice_warm(&self) -> (Vec<f64>, LatticeStats) {
        self.fill_lattice(true)
    }

    fn fill_lattice(&self, warm: bool) -> (Vec<f64>, LatticeStats) {
        let n = self.demands.len();
        assert!(n <= 24, "lattice fill supports at most 24 players");
        let size = 1usize << n;
        let mut values = vec![0.0f64; size];
        let mut bases: Vec<Option<Basis>> = vec![None; if warm { size } else { 0 }];
        let mut stats = LatticeStats::default();
        let mut coalition = Coalition::empty(n);
        for mask in 0..size {
            coalition.set_mask(mask as u64);
            let parent_basis = if warm && mask != 0 {
                bases[mask & (mask - 1)].as_ref()
            } else {
                None
            };
            let value = match parent_basis {
                Some(basis) => {
                    stats.warm_attempts += 1;
                    self.evaluate_warm(&coalition, basis)
                }
                None => self.evaluate(&coalition),
            };
            if let Some(s) = value.stats() {
                stats.iterations += s.iterations;
                if s.warm_started && !s.cold_fallback {
                    stats.warm_hits += 1;
                }
            }
            if let CoalitionValue::Unroutable { .. } = value {
                stats.unroutable += 1;
            }
            if warm {
                bases[mask] = value.basis().cloned();
            }
            values[mask] = value.carbon();
            stats.coalitions += 1;
        }
        (values, stats)
    }
}

impl Game for NetworkCarbonGame {
    fn player_count(&self) -> usize {
        self.demands.len()
    }

    fn value(&self, coalition: &Coalition) -> f64 {
        self.evaluate(coalition).carbon()
    }
}

/// Replay state: the growing coalition plus the last optimal basis, so
/// each [`IncrementalGame::add_player`] warm-starts off the previous
/// prefix's solve.
#[derive(Debug, Clone)]
pub struct NetGameState {
    members: Coalition,
    basis: Option<Basis>,
}

impl IncrementalGame for NetworkCarbonGame {
    type State = NetGameState;

    fn initial_state(&self) -> Self::State {
        NetGameState {
            members: Coalition::empty(self.demands.len()),
            basis: None,
        }
    }

    fn reset_state(&self, state: &mut Self::State) {
        state.members = Coalition::empty(self.demands.len());
        state.basis = None;
    }

    fn add_player(&self, state: &mut Self::State, player: usize) -> f64 {
        state.members.insert(player);
        // The rhs is rebuilt canonically from the member set (not
        // accumulated in arrival order), so the value matches a cold
        // `value()` of the same coalition exactly on dyadic instances —
        // which keeps `CachedGame` consistent between replay orders.
        let value = match state.basis.as_ref() {
            Some(basis) => self.evaluate_warm(&state.members, basis),
            None => self.evaluate(&state.members),
        };
        state.basis = value.basis().cloned();
        value.carbon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_shapley;

    /// 4 nodes: 0,1 inject, 2 relays, 3 is egress. Integer capacities,
    /// dyadic prices.
    fn diamond() -> Network {
        Network::new(
            4,
            3,
            vec![
                Link {
                    from: 0,
                    to: 2,
                    capacity: 6.0,
                    carbon_per_unit: 1.0,
                },
                Link {
                    from: 1,
                    to: 2,
                    capacity: 6.0,
                    carbon_per_unit: 0.5,
                },
                Link {
                    from: 0,
                    to: 3,
                    capacity: 2.0,
                    carbon_per_unit: 4.0,
                },
                Link {
                    from: 2,
                    to: 3,
                    capacity: 8.0,
                    carbon_per_unit: 1.5,
                },
            ],
        )
    }

    fn two_tenant_game() -> NetworkCarbonGame {
        NetworkCarbonGame::new(
            diamond(),
            vec![vec![3.0, 0.0, 0.0, 0.0], vec![0.0, 4.0, 0.0, 0.0]],
        )
    }

    #[test]
    fn empty_coalition_is_worth_exactly_zero() {
        let game = two_tenant_game();
        assert_eq!(game.value(&Coalition::empty(2)), 0.0);
    }

    #[test]
    fn singleton_routes_at_min_carbon() {
        let game = two_tenant_game();
        // Tenant 0: 3 units from node 0. Cheapest: 0→2→3 at 2.5/unit.
        let v = game.value(&Coalition::from_players(2, [0]));
        assert_eq!(v, 7.5);
    }

    #[test]
    fn grand_coalition_shares_the_relay() {
        let game = two_tenant_game();
        // 3 units via 0→2→3 (2.5) + 4 units via 1→2→3 (2.0) fits cap 8.
        let v = game.value(&Coalition::grand(2));
        assert_eq!(v, 7.5 + 8.0);
    }

    #[test]
    fn overload_is_penalty_valued_not_a_panic() {
        let game = NetworkCarbonGame::new(
            diamond(),
            vec![vec![20.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]],
        );
        let c = Coalition::from_players(2, [0]);
        let v = game.value(&c);
        assert!(matches!(
            game.evaluate(&c),
            CoalitionValue::Unroutable { .. }
        ));
        assert_eq!(v, game.penalty_rate() * 20.0);
        assert!(v.is_finite());
    }

    #[test]
    fn warm_lattice_is_bit_identical_to_cold() {
        let game = two_tenant_game();
        let (cold, _) = game.fill_lattice_cold();
        let (warm, stats) = game.fill_lattice_warm();
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.to_bits(), w.to_bits());
        }
        assert!(stats.warm_attempts > 0);
        assert_eq!(stats.coalitions, 4);
    }

    #[test]
    fn incremental_replay_matches_cold_values() {
        let game = two_tenant_game();
        let mut state = game.initial_state();
        let v0 = game.add_player(&mut state, 1);
        assert_eq!(
            v0.to_bits(),
            game.value(&Coalition::from_players(2, [1])).to_bits()
        );
        let v01 = game.add_player(&mut state, 0);
        assert_eq!(v01.to_bits(), game.value(&Coalition::grand(2)).to_bits());
    }

    #[test]
    fn shapley_is_efficient_on_the_network_game() {
        let game = two_tenant_game();
        let phi = exact_shapley(&game).unwrap();
        let total: f64 = phi.iter().sum();
        let grand = game.value(&Coalition::grand(2));
        assert!((total - grand).abs() < 1e-9);
    }

    #[test]
    fn zero_traffic_tenant_is_a_null_player() {
        let game = NetworkCarbonGame::new(
            diamond(),
            vec![
                vec![3.0, 0.0, 0.0, 0.0],
                vec![0.0; 4], // null player
            ],
        );
        // Bit-level marginals are exactly zero…
        let alone = game.value(&Coalition::from_players(2, [0]));
        let with_null = game.value(&Coalition::grand(2));
        assert_eq!(alone.to_bits(), with_null.to_bits());
        // …and the table-scatter share cancels to accumulation epsilon.
        let phi = exact_shapley(&game).unwrap();
        assert!(phi[1].abs() <= 1e-12);
    }

    #[test]
    #[should_panic(expected = "injects at the egress")]
    fn egress_injection_is_rejected() {
        let _ = NetworkCarbonGame::new(diamond(), vec![vec![0.0, 0.0, 0.0, 1.0]]);
    }
}
