//! Coalition-value memoization.
//!
//! Permutation sampling at the paper's scale (n ≤ 22 workloads) draws
//! thousands of permutations over at most `2ⁿ` distinct coalitions, so
//! the same characteristic value is recomputed constantly: a 12-player
//! game at 4,096 permutations performs ~49k evaluations of at most 4,096
//! distinct coalitions. [`CoalitionCache`] is an open-addressing,
//! mask-keyed memo table for those values, and [`CachedGame`] wires it
//! into the [`IncrementalGame`] replay path so repeated permutation
//! prefixes stop re-evaluating the game.
//!
//! # Determinism
//!
//! A cache hit returns the value computed by the *first* permutation that
//! reached the coalition, whose inner evaluation order may differ from
//! the current permutation's. For games whose characteristic values are
//! exact in floating point (integer-valued demands, table games) the two
//! are bit-identical, so cached and uncached estimates agree to the last
//! bit; in general they agree up to floating-point associativity of the
//! game's own accumulation. Within one run the cache is deterministic:
//! the same permutation schedule produces the same hit pattern and the
//! same estimate, independent of thread count when each worker owns its
//! cache.

use std::cell::{Cell, RefCell};

use crate::coalition::Coalition;
use crate::game::{Game, GameStats, IncrementalGame};

/// Slots probed before the cache gives up and displaces an entry. Bounded
/// probing keeps worst-case lookup cost constant; displacement (rather
/// than rejection) keeps recent coalitions warm when the table saturates.
const PROBE_LIMIT: usize = 16;

/// An open-addressing memo table mapping coalition bitmasks (`u64`) to
/// characteristic values.
///
/// The empty mask doubles as the vacant-slot sentinel: `v(∅) = 0` by the
/// [`Game`] contract, so the empty coalition never needs an entry.
#[derive(Debug, Clone)]
pub struct CoalitionCache {
    keys: Vec<u64>,
    values: Vec<f64>,
    /// Capacity minus one; capacity is a power of two.
    index_mask: usize,
    len: usize,
}

impl CoalitionCache {
    /// A cache with `1 << bits` slots.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds 30 (an 8 GiB table is a config
    /// error, not a cache).
    pub fn with_bits(bits: u8) -> Self {
        assert!((1..=30).contains(&bits), "cache bits must be in 1..=30");
        let cap = 1usize << bits;
        Self {
            keys: vec![0; cap],
            values: vec![0.0; cap],
            index_mask: cap - 1,
            len: 0,
        }
    }

    /// A capacity suited to an `n`-player game: enough slots for every
    /// coalition when `2ⁿ` is small, capped at `2²⁰` (16 MiB) beyond.
    pub fn for_players(n: usize) -> Self {
        // One spare bit over 2^n keeps the load factor below ½ when the
        // whole coalition lattice is visited.
        Self::with_bits((n as u8 + 1).clamp(8, 20))
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Drops every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.keys.fill(0);
        self.len = 0;
    }

    /// SplitMix64-style finalizer; masks are tiny integers, so raw
    /// modular indexing would cluster the low bits badly.
    fn slot(&self, mask: u64) -> usize {
        let mut h = mask;
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (h ^ (h >> 31)) as usize & self.index_mask
    }

    /// Looks up the value cached for `mask`, if any.
    ///
    /// # Panics
    ///
    /// Panics (debug only) on the empty mask — `v(∅) = 0` is the game
    /// contract, not a cache entry.
    pub fn get(&self, mask: u64) -> Option<f64> {
        debug_assert!(mask != 0, "the empty coalition is never cached");
        let mut slot = self.slot(mask);
        for _ in 0..PROBE_LIMIT {
            let key = self.keys[slot];
            if key == mask {
                return Some(self.values[slot]);
            }
            if key == 0 {
                return None;
            }
            slot = (slot + 1) & self.index_mask;
        }
        None
    }

    /// Caches `value` for `mask`. When every probed slot is taken by a
    /// different key, the home slot is displaced.
    ///
    /// # Panics
    ///
    /// Panics (debug only) on the empty mask.
    pub fn insert(&mut self, mask: u64, value: f64) {
        debug_assert!(mask != 0, "the empty coalition is never cached");
        let home = self.slot(mask);
        let mut slot = home;
        for _ in 0..PROBE_LIMIT {
            let key = self.keys[slot];
            if key == mask {
                self.values[slot] = value;
                return;
            }
            if key == 0 {
                self.keys[slot] = mask;
                self.values[slot] = value;
                self.len += 1;
                return;
            }
            slot = (slot + 1) & self.index_mask;
        }
        // Saturated neighbourhood: displace the home slot.
        self.keys[home] = mask;
        self.values[home] = value;
    }
}

/// Replay state of a [`CachedGame`]: the inner state lags behind the
/// logical coalition and is only caught up on cache misses.
#[derive(Debug, Clone)]
pub struct CachedState<S> {
    inner: S,
    /// Bitmask of the logical (fully added) coalition.
    mask: u64,
    /// Players added logically but not yet applied to `inner` because
    /// their values came from the cache.
    pending: Vec<usize>,
}

/// An [`IncrementalGame`] adapter that memoizes coalition values in a
/// [`CoalitionCache`].
///
/// On a cache hit the inner game is not touched at all: the pending
/// players are only replayed into the inner state when a miss forces a
/// real evaluation, so a fully warmed cache reduces a permutation replay
/// to `n` hash probes. Hit, miss, and true-evaluation counts are exposed
/// through [`IncrementalGame::stats`], which
/// [`replay_marginals`](crate::game::replay_marginals) folds into
/// [`EvalCounters`](crate::game::EvalCounters).
///
/// Not `Sync`: each worker thread owns its wrapper (and cache), which is
/// how [`parallel_sampled_shapley`](crate::parallel::parallel_sampled_shapley)
/// keeps results thread-count invariant.
#[derive(Debug)]
pub struct CachedGame<'g, G> {
    inner: &'g G,
    cache: RefCell<CoalitionCache>,
    evals: Cell<u64>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl<'g, G: Game> CachedGame<'g, G> {
    /// Wraps `game` with a cache sized by [`CoalitionCache::for_players`].
    ///
    /// # Panics
    ///
    /// Panics if the game has more than 64 players — coalition bitmasks
    /// are one machine word.
    pub fn new(game: &'g G) -> Self {
        Self::with_cache(game, CoalitionCache::for_players(game.player_count()))
    }

    /// Wraps `game` around an explicit (possibly pre-warmed) cache.
    ///
    /// # Panics
    ///
    /// Panics if the game has more than 64 players.
    pub fn with_cache(game: &'g G, cache: CoalitionCache) -> Self {
        assert!(
            game.player_count() <= 64,
            "coalition caching supports at most 64 players"
        );
        Self {
            inner: game,
            cache: RefCell::new(cache),
            evals: Cell::new(0),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// The wrapped game.
    pub fn inner(&self) -> &G {
        self.inner
    }

    /// Hits, misses, and inner evaluations so far.
    pub fn cache_stats(&self) -> GameStats {
        GameStats {
            evals: self.evals.get(),
            hits: self.hits.get(),
            misses: self.misses.get(),
        }
    }

    /// Fraction of lookups answered from the cache (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.hits.get() as f64 / total as f64
        }
    }

    /// Consumes the wrapper, returning its cache for reuse.
    pub fn into_cache(self) -> CoalitionCache {
        self.cache.into_inner()
    }
}

impl<G: Game> Game for CachedGame<'_, G> {
    fn player_count(&self) -> usize {
        self.inner.player_count()
    }

    fn value(&self, coalition: &Coalition) -> f64 {
        let mut mask = 0u64;
        for p in coalition.iter() {
            mask |= 1 << p;
        }
        if mask == 0 {
            return 0.0;
        }
        if let Some(v) = self.cache.borrow().get(mask) {
            self.hits.set(self.hits.get() + 1);
            return v;
        }
        self.misses.set(self.misses.get() + 1);
        self.evals.set(self.evals.get() + 1);
        let v = self.inner.value(coalition);
        self.cache.borrow_mut().insert(mask, v);
        v
    }
}

impl<G: IncrementalGame> IncrementalGame for CachedGame<'_, G> {
    type State = CachedState<G::State>;

    fn initial_state(&self) -> Self::State {
        CachedState {
            inner: self.inner.initial_state(),
            mask: 0,
            pending: Vec::with_capacity(self.inner.player_count()),
        }
    }

    fn reset_state(&self, state: &mut Self::State) {
        self.inner.reset_state(&mut state.inner);
        state.mask = 0;
        state.pending.clear();
    }

    fn add_player(&self, state: &mut Self::State, player: usize) -> f64 {
        state.mask |= 1 << player;
        state.pending.push(player);
        if let Some(v) = self.cache.borrow().get(state.mask) {
            self.hits.set(self.hits.get() + 1);
            return v;
        }
        self.misses.set(self.misses.get() + 1);
        // Catch the inner state up: pending players are applied in the
        // permutation's own order, so miss values are exactly what the
        // uncached replay would have produced.
        let mut value = 0.0;
        for &p in &state.pending {
            value = self.inner.add_player(&mut state.inner, p);
            self.evals.set(self.evals.get() + 1);
        }
        state.pending.clear();
        self.cache.borrow_mut().insert(state.mask, value);
        value
    }

    fn stats(&self) -> Option<GameStats> {
        Some(self.cache_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{replay_marginals, EvalCounters, PeakDemandGame};

    fn demo_game() -> PeakDemandGame {
        PeakDemandGame::new(vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 4.0, 2.0],
            vec![2.0, 2.0, 5.0],
            vec![0.0, 3.0, 1.0],
        ])
    }

    #[test]
    fn get_insert_roundtrip_and_stats() {
        let mut c = CoalitionCache::with_bits(4);
        assert!(c.is_empty());
        assert_eq!(c.get(0b101), None);
        c.insert(0b101, 7.5);
        c.insert(0b11, 2.0);
        assert_eq!(c.get(0b101), Some(7.5));
        assert_eq!(c.get(0b11), Some(2.0));
        assert_eq!(c.len(), 2);
        c.insert(0b101, 8.0); // overwrite, not a new entry
        assert_eq!(c.get(0b101), Some(8.0));
        assert_eq!(c.len(), 2);
        c.clear();
        assert_eq!(c.get(0b101), None);
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 16);
    }

    #[test]
    fn saturation_displaces_instead_of_growing() {
        // 2 slots, many keys: lookups must stay bounded and the most
        // recently displaced key must be retrievable.
        let mut c = CoalitionCache::with_bits(1);
        for mask in 1..=64u64 {
            c.insert(mask, mask as f64);
            assert_eq!(c.get(mask), Some(mask as f64), "freshly inserted key");
        }
        assert!(c.len() <= c.capacity());
    }

    #[test]
    fn for_players_scales_with_n_and_saturates() {
        assert_eq!(CoalitionCache::for_players(4).capacity(), 1 << 8);
        assert_eq!(CoalitionCache::for_players(12).capacity(), 1 << 13);
        assert_eq!(CoalitionCache::for_players(40).capacity(), 1 << 20);
    }

    #[test]
    fn cached_replay_matches_uncached_values() {
        let g = demo_game();
        let cached = CachedGame::new(&g);
        let mut plain_m = vec![0.0; 4];
        let mut cached_m = vec![0.0; 4];
        let mut plain_c = EvalCounters::default();
        let mut cached_c = EvalCounters::default();
        let orders: [&[usize]; 4] = [&[0, 1, 2, 3], &[3, 2, 1, 0], &[1, 0, 3, 2], &[0, 1, 2, 3]];
        for order in orders {
            replay_marginals(&g, order, &mut plain_m, &mut plain_c);
            replay_marginals(&cached, order, &mut cached_m, &mut cached_c);
            for (a, b) in plain_m.iter().zip(&cached_m) {
                // Integer-valued demands: sums are exact, so cached
                // values are bit-identical to uncached.
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // The repeated first order is answered entirely from the cache.
        assert_eq!(plain_c.coalition_evals, 16);
        assert!(cached_c.coalition_evals < plain_c.coalition_evals);
        assert_eq!(cached_c.cache_hits + cached_c.cache_misses, 16);
        assert!(cached_c.cache_hits >= 4);
        assert_eq!(
            cached_c.coalition_evals,
            cached.cache_stats().evals,
            "counters mirror the game's own accounting"
        );
    }

    #[test]
    fn hits_skip_the_inner_game_entirely() {
        let g = demo_game();
        let cached = CachedGame::new(&g);
        let mut m = vec![0.0; 4];
        let mut counters = EvalCounters::default();
        replay_marginals(&cached, &[0, 1, 2, 3], &mut m, &mut counters);
        let evals_after_first = cached.cache_stats().evals;
        replay_marginals(&cached, &[0, 1, 2, 3], &mut m, &mut counters);
        assert_eq!(
            cached.cache_stats().evals,
            evals_after_first,
            "second identical replay must not evaluate the game"
        );
        assert_eq!(cached.cache_stats().hits, 4);
        assert!((cached.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pending_players_are_applied_on_the_next_miss() {
        let g = demo_game();
        let cached = CachedGame::new(&g);
        let mut m = vec![0.0; 4];
        let mut counters = EvalCounters::default();
        // Warm the prefix {0} only.
        replay_marginals(&cached, &[0, 1, 2, 3], &mut m, &mut counters);
        // New permutation starting with the warmed prefix: first step
        // hits, the next step must evaluate {0,2} correctly even though
        // the inner state never saw player 0 in this replay.
        let mut m2 = vec![0.0; 4];
        replay_marginals(&cached, &[0, 2, 1, 3], &mut m2, &mut counters);
        use crate::game::Game;
        let expected = g.value(&Coalition::from_players(4, [0, 2]))
            - g.value(&Coalition::from_players(4, [0]));
        assert_eq!(m2[2].to_bits(), expected.to_bits());
    }

    #[test]
    fn value_path_is_cached_too() {
        let g = demo_game();
        let cached = CachedGame::new(&g);
        use crate::game::Game;
        let c = Coalition::from_players(4, [1, 3]);
        let v1 = cached.value(&c);
        let v2 = cached.value(&c);
        assert_eq!(v1.to_bits(), v2.to_bits());
        assert_eq!(cached.cache_stats().evals, 1);
        assert_eq!(cached.cache_stats().hits, 1);
        assert_eq!(cached.value(&Coalition::empty(4)), 0.0);
    }

    #[test]
    fn cache_can_be_reused_across_wrappers() {
        let g = demo_game();
        let first = CachedGame::new(&g);
        let mut m = vec![0.0; 4];
        let mut counters = EvalCounters::default();
        replay_marginals(&first, &[0, 1, 2, 3], &mut m, &mut counters);
        let warm = first.into_cache();
        assert_eq!(warm.len(), 4);
        let second = CachedGame::with_cache(&g, warm);
        replay_marginals(&second, &[0, 1, 2, 3], &mut m, &mut counters);
        assert_eq!(second.cache_stats().hits, 4);
        assert_eq!(second.cache_stats().evals, 0);
    }

    #[test]
    #[should_panic(expected = "at most 64 players")]
    fn too_many_players_panics() {
        let g = PeakDemandGame::new(vec![vec![1.0]; 65]);
        let _ = CachedGame::new(&g);
    }

    #[test]
    #[should_panic(expected = "cache bits")]
    fn zero_bits_panics() {
        let _ = CoalitionCache::with_bits(0);
    }
}
