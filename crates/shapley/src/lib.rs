//! Cooperative-game substrate: Shapley-value solvers for carbon attribution.
//!
//! The paper grounds fair carbon attribution in the Shapley value (its
//! Eq. 1) and contributes a scalable *Temporal Shapley* approximation
//! (Eqs. 2–7). This crate implements the complete toolbox:
//!
//! * [`game`] — the [`Game`](game::Game) trait (characteristic function
//!   over coalitions) and the incremental variant used by permutation
//!   sampling.
//! * [`exact`] — ground-truth Shapley by subset enumeration, `O(n·2ⁿ)`;
//!   practical to ~24 players, exactly the regime the paper evaluates
//!   (≤ 22 workloads). Includes a deterministic parallel table-fill
//!   solver ([`exact::parallel_exact_shapley`]).
//! * [`sampled`] — permutation-sampling estimator with antithetic
//!   variance reduction (pair-aware standard errors) and a standard-error
//!   stopping rule, for games too large to enumerate. Reusable
//!   [`sampled::SampleScratch`] buffers keep the inner loop free of heap
//!   allocation.
//! * [`cache`] — the open-addressing [`cache::CoalitionCache`] memo table
//!   and the [`cache::CachedGame`] adapter that lets every sampler and
//!   axiom check skip repeated characteristic-function evaluations.
//! * [`maxtree`] — the segment tree backing `O(log steps)` peak-demand
//!   updates in the replay hot path.
//! * [`parallel`] — the deterministic parallel engine: batched
//!   permutation sampling over scoped worker threads with per-batch
//!   seeding, moment merging, work counters, and a convergence trace;
//!   bit-identical results at any thread count.
//! * [`netgame`] — LP-valued coalition games: network carbon attribution
//!   where `v(S)` is the objective of a min-carbon routing LP over the
//!   vendored `fairco2-solver` simplex, with warm-started coalition
//!   solves pinned bit-identical to cold ones on exact instances.
//! * [`matching`] — an exact `O(n²)` solver for *pairwise matching games*
//!   (the structure of the paper's colocation scenarios: isolated costs
//!   plus pairwise colocation costs under a uniformly random matching).
//! * [`temporal`] — Temporal Shapley: the exact closed form for the
//!   peak-demand game (equivalent to the paper's Eq. 7, derived via the
//!   level decomposition of `max`), hierarchical splitting, and the
//!   dynamic embodied-carbon-intensity signal (Eq. 5).
//! * [`cascade`] — the flat, zero-copy engine behind the temporal
//!   hierarchy: index-range periods over one shared demand buffer,
//!   sparse-table range-max peaks, a reusable
//!   [`cascade::CascadeScratch`] for allocation-free repeats, and the
//!   [`cascade::IntensityIndex`] answering batched billing queries.
//! * [`incremental`] — the streaming engine behind the always-on
//!   attribution service: fixed windows ingested one sample at a time
//!   at amortized `O(levels)` per sample, each closed window
//!   bit-identical to the frozen cascade on the same slice.
//! * [`surrogate`] — learned ridge surrogate serving peak-demand
//!   attributions in `O(features)` per workload, with an efficiency-gap
//!   residual bound and a deterministic error-bounded fallback to
//!   [`sampled::sampled_shapley_cached`].
//! * [`axioms`] — executable checks of the four fairness axioms (null
//!   player, symmetry, efficiency, linearity).
//!
//! # Example
//!
//! ```
//! use fairco2_shapley::temporal::peak_shapley;
//!
//! // Three periods with peaks 10, 6, 6: the peak period absorbs most of
//! // the capacity responsibility, the tied periods split the rest.
//! let phi = peak_shapley(&[10.0, 6.0, 6.0]);
//! let total: f64 = phi.iter().sum();
//! assert!((total - 10.0).abs() < 1e-12); // efficiency: sums to the peak
//! assert!(phi[0] > phi[1] && (phi[1] - phi[2]).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axioms;
pub mod cache;
pub mod cascade;
pub mod coalition;
pub mod exact;
pub mod game;
pub mod incremental;
pub mod kernels;
pub mod matching;
pub mod maxtree;
pub mod netgame;
pub mod parallel;
pub mod sampled;
pub mod surrogate;
pub mod temporal;
pub mod unit_time;

pub use axioms::{AxiomAudit, AxiomCheck};
pub use cache::{CachedGame, CoalitionCache};
pub use cascade::{combine_lanes, combine_lanes_max, KernelMode, CANONICAL_LANES, PREFIX_BLOCK};
pub use cascade::{BillingQuery, CascadeScratch, IntensityIndex, RangeMax};
pub use coalition::Coalition;
pub use exact::{
    exact_shapley, exact_shapley_fast_with_scratch, parallel_exact_shapley, ExactScratch,
};
pub use game::{
    replay_marginals_into, replay_marginals_paired_into, EvalCounters, Game, GameStats,
    IncrementalGame, ScanPeak,
};
pub use incremental::{IncrementalCascade, WindowAttribution};
pub use matching::{shapley_from_moments, MatchingGame};
pub use maxtree::MaxTree;
pub use netgame::{CoalitionValue, LatticeStats, Link, Network, NetworkCarbonGame};
pub use parallel::{
    default_threads, panic_message, parallel_sampled_shapley, run_parallel, run_parallel_retrying,
    ConvergenceTrace, ItemAbandoned, ParallelConfig, ParallelEstimate, RetryCounters, TracePoint,
};
pub use sampled::{
    sampled_shapley, sampled_shapley_cached, sampled_shapley_with_scratch, stratified_shapley,
    Moments, SampleConfig, SampleScratch, ShapleyEstimate,
};
pub use surrogate::{
    player_features_into, SurrogateAttributor, SurrogateModel, SurrogateOutcome, SurrogateScratch,
    SurrogateTrainer, SURROGATE_FEATURES, SURROGATE_TARGETS,
};
pub use temporal::{peak_shapley, peak_shapley_into, TemporalAttribution};
