//! The characteristic-function interface and reference games.

use serde::{Deserialize, Serialize};

use crate::coalition::Coalition;
use crate::maxtree::MaxTree;

/// A cooperative game: a set of players and a characteristic function
/// assigning a cost (here: carbon) to every coalition.
///
/// Implementations must satisfy `value(∅) = 0` and should be monotone for
/// cost games (adding a player never lowers the coalition's cost); the
/// solvers do not enforce monotonicity but the fairness axioms in
/// [`crate::axioms`] assume `value(∅) = 0`.
pub trait Game {
    /// Number of players.
    fn player_count(&self) -> usize;

    /// Characteristic function: the cost borne by `coalition` on its own.
    fn value(&self, coalition: &Coalition) -> f64;
}

/// A game that can evaluate coalitions *incrementally* as players are
/// appended, which lets permutation sampling compute each marginal
/// contribution in amortized constant-to-linear time instead of
/// re-evaluating the characteristic function from scratch.
pub trait IncrementalGame: Game {
    /// Evaluation state for a growing coalition.
    type State;

    /// State of the empty coalition.
    fn initial_state(&self) -> Self::State;

    /// Rewinds an existing state to the empty coalition, reusing its
    /// allocations. The default rebuilds from scratch; hot-path games
    /// override it so permutation replay allocates nothing after warm-up.
    fn reset_state(&self, state: &mut Self::State) {
        *state = self.initial_state();
    }

    /// Adds `player` to the growing coalition and returns the value of
    /// the enlarged coalition.
    fn add_player(&self, state: &mut Self::State, player: usize) -> f64;

    /// Work performed by this game since construction, for games that
    /// instrument themselves (memoizing wrappers). `None` — the default —
    /// means "not tracked": callers then charge one evaluation per
    /// [`add_player`](IncrementalGame::add_player) call.
    fn stats(&self) -> Option<GameStats> {
        None
    }
}

/// Cumulative work snapshot reported by a self-instrumenting game (see
/// [`IncrementalGame::stats`]). Deltas between snapshots are folded into
/// [`EvalCounters`] by [`replay_marginals_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GameStats {
    /// Raw characteristic-function evaluations actually performed.
    pub evals: u64,
    /// Lookups answered from a coalition cache.
    pub hits: u64,
    /// Lookups that fell through to a real evaluation.
    pub misses: u64,
}

/// Work counters for Shapley estimation, accumulated at every
/// [`IncrementalGame`] call site and merged across batches/threads.
///
/// Wall time is the *sum* of per-batch busy time, so on a multi-threaded
/// run it exceeds elapsed time — the ratio is the achieved parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EvalCounters {
    /// Coalition evaluations: one per characteristic-function evaluation
    /// actually performed. Without a coalition cache this is one per
    /// [`IncrementalGame::add_player`] call; with one it counts only the
    /// cache misses' inner evaluations.
    pub coalition_evals: u64,
    /// Per-player marginal-contribution updates applied to accumulators.
    pub marginal_updates: u64,
    /// Sampling batches executed (1 for the serial estimator).
    pub batches: u64,
    /// Total busy time across batches, in seconds.
    pub wall_time_secs: f64,
    /// Coalition-cache lookups answered without evaluating the game
    /// (zero when no cache is in play).
    pub cache_hits: u64,
    /// Coalition-cache lookups that fell through to a real evaluation
    /// (zero when no cache is in play).
    pub cache_misses: u64,
}

impl EvalCounters {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &EvalCounters) {
        self.coalition_evals += other.coalition_evals;
        self.marginal_updates += other.marginal_updates;
        self.batches += other.batches;
        self.wall_time_secs += other.wall_time_secs;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// Fraction of cache lookups answered from the cache (0 when no
    /// cache was used).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Replays one permutation through an [`IncrementalGame`], writing each
/// player's marginal contribution into `marginals` (indexed by player)
/// and charging the work to `counters`.
///
/// Allocates a fresh state per call; hot paths should hold a state (or a
/// [`SampleScratch`](crate::sampled::SampleScratch)) and use
/// [`replay_marginals_into`] instead.
///
/// # Panics
///
/// Panics if `marginals` is shorter than the largest player index.
pub fn replay_marginals<G: IncrementalGame>(
    game: &G,
    order: &[usize],
    marginals: &mut [f64],
    counters: &mut EvalCounters,
) {
    let mut state = game.initial_state();
    replay_marginals_into(game, order, &mut state, marginals, counters);
}

/// [`replay_marginals`] into a caller-owned state: the state is rewound
/// via [`IncrementalGame::reset_state`] and reused, so games with
/// allocation-free resets replay without touching the heap.
///
/// Marginals telescope, so `marginals` sums to the grand-coalition value
/// when `order` contains every player exactly once.
///
/// Work accounting: self-instrumenting games ([`IncrementalGame::stats`])
/// are charged their actual evaluation, hit, and miss deltas; all others
/// are charged one coalition evaluation per step.
///
/// # Panics
///
/// Panics if `marginals` is shorter than the largest player index.
pub fn replay_marginals_into<G: IncrementalGame>(
    game: &G,
    order: &[usize],
    state: &mut G::State,
    marginals: &mut [f64],
    counters: &mut EvalCounters,
) {
    game.reset_state(state);
    let before = game.stats();
    let mut prev = 0.0f64;
    for &p in order {
        let value = game.add_player(state, p);
        marginals[p] = value - prev;
        prev = value;
    }
    counters.marginal_updates += order.len() as u64;
    match (before, game.stats()) {
        (Some(b), Some(a)) => {
            counters.coalition_evals += a.evals - b.evals;
            counters.cache_hits += a.hits - b.hits;
            counters.cache_misses += a.misses - b.misses;
        }
        _ => counters.coalition_evals += order.len() as u64,
    }
}

/// Replays a permutation **and its reversal** through two independent
/// states in one interleaved pass: step `i` advances the forward chain by
/// `order[i]` and the reverse chain by `order[n−1−i]`. Antithetic
/// sampling always replays both directions; running them as two
/// dependency chains in flight lets the two `add_player` streams overlap
/// instead of serializing one full replay after the other.
///
/// **Bit-identity:** each chain performs exactly the additions, in
/// exactly the order, of a standalone [`replay_marginals_into`] on
/// `order` (resp. reversed `order`) — interleaving changes which chain's
/// instruction retires next, never the operand order within a chain — so
/// `forward` and `reverse` are bit-identical to two sequential replays.
/// This also holds through a [`CachedGame`](crate::cache::CachedGame):
/// two coalition masks from opposite chains can only be equal at equal
/// prefix lengths, where the forward lookup precedes the reverse one in
/// both schedules, so every lookup hits or misses identically and
/// memoizes the same value (saturated caches that displace entries are
/// the one exception — displacement order may differ).
///
/// Work accounting matches two sequential replays: `2·order.len()`
/// marginal updates, and either the instrumented game's actual deltas or
/// `2·order.len()` coalition evaluations.
///
/// # Panics
///
/// Panics if `marginals`/`reverse` are shorter than the largest player
/// index.
pub fn replay_marginals_paired_into<G: IncrementalGame>(
    game: &G,
    order: &[usize],
    state: &mut G::State,
    state_rev: &mut G::State,
    forward: &mut [f64],
    reverse: &mut [f64],
    counters: &mut EvalCounters,
) {
    game.reset_state(state);
    game.reset_state(state_rev);
    let before = game.stats();
    let n = order.len();
    let mut prev_f = 0.0f64;
    let mut prev_r = 0.0f64;
    for i in 0..n {
        let pf = order[i];
        let vf = game.add_player(state, pf);
        forward[pf] = vf - prev_f;
        prev_f = vf;
        let pr = order[n - 1 - i];
        let vr = game.add_player(state_rev, pr);
        reverse[pr] = vr - prev_r;
        prev_r = vr;
    }
    counters.marginal_updates += 2 * n as u64;
    match (before, game.stats()) {
        (Some(b), Some(a)) => {
            counters.coalition_evals += a.evals - b.evals;
            counters.cache_hits += a.hits - b.hits;
            counters.cache_misses += a.misses - b.misses;
        }
        _ => counters.coalition_evals += 2 * n as u64,
    }
}

/// Adapter giving any [`Game`] a (slow) incremental interface by replaying
/// the full characteristic function after every insertion. Useful for
/// cross-checking fast incremental implementations.
#[derive(Debug, Clone)]
pub struct Replay<G>(pub G);

impl<G: Game> Game for Replay<G> {
    fn player_count(&self) -> usize {
        self.0.player_count()
    }

    fn value(&self, coalition: &Coalition) -> f64 {
        self.0.value(coalition)
    }
}

impl<G: Game> IncrementalGame for Replay<G> {
    type State = Coalition;

    fn initial_state(&self) -> Coalition {
        Coalition::empty(self.0.player_count())
    }

    fn add_player(&self, state: &mut Coalition, player: usize) -> f64 {
        state.insert(player);
        self.0.value(state)
    }
}

/// The *peak-demand game* of Section 4: each player is a workload with a
/// per-time-step resource demand, and a coalition's cost is the **peak**
/// (over time) of its summed demand — the minimum capacity that must be
/// provisioned to run the coalition (paper Figure 1).
#[derive(Debug, Clone)]
pub struct PeakDemandGame {
    /// `demand[p][t]`: demand of player `p` at time step `t`.
    demand: Vec<Vec<f64>>,
    /// `support[p]`: the nonzero entries of player `p`'s row as
    /// `(t, demand)` pairs — schedule-derived rows are zero outside the
    /// workload's slice range, so incremental updates only touch the
    /// steps a player actually occupies.
    support: Vec<Vec<(u32, f64)>>,
    steps: usize,
}

impl PeakDemandGame {
    /// Builds the game from a per-player demand matrix. All players must
    /// cover the same number of time steps.
    ///
    /// # Panics
    ///
    /// Panics if players disagree on the number of time steps, if there
    /// are no players, or if there are no time steps.
    pub fn new(demand: Vec<Vec<f64>>) -> Self {
        assert!(!demand.is_empty(), "game needs at least one player");
        let steps = demand[0].len();
        assert!(steps > 0, "game needs at least one time step");
        assert!(
            demand.iter().all(|d| d.len() == steps),
            "all players must cover the same time steps"
        );
        let support = demand
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|&(_, &d)| d != 0.0)
                    .map(|(t, &d)| (t as u32, d))
                    .collect()
            })
            .collect();
        Self {
            demand,
            support,
            steps,
        }
    }

    /// Per-player demand rows.
    pub fn demand(&self) -> &[Vec<f64>] {
        &self.demand
    }

    /// Nonzero `(t, demand)` entries of player `p`'s row.
    pub(crate) fn support(&self, player: usize) -> &[(u32, f64)] {
        &self.support[player]
    }

    /// Number of time steps.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

impl Game for PeakDemandGame {
    fn player_count(&self) -> usize {
        self.demand.len()
    }

    fn value(&self, coalition: &Coalition) -> f64 {
        let mut peak = 0.0f64;
        for t in 0..self.steps {
            let total: f64 = coalition.iter().map(|p| self.demand[p][t]).sum();
            peak = peak.max(total);
        }
        peak
    }
}

impl IncrementalGame for PeakDemandGame {
    /// Per-time-step sums held in a segment tree: inserting a player
    /// costs `O(|support| · log steps)` and the coalition peak is read
    /// off the root, instead of the former `O(steps)` scan per insertion.
    type State = MaxTree;

    fn initial_state(&self) -> Self::State {
        MaxTree::new(self.steps)
    }

    fn reset_state(&self, state: &mut Self::State) {
        state.reset();
    }

    fn add_player(&self, state: &mut Self::State, player: usize) -> f64 {
        for &(t, d) in self.support(player) {
            state.add(t as usize, d);
        }
        state.max()
    }
}

/// The pre-segment-tree reference implementation of the peak-demand
/// game's incremental and toggle paths: dense per-step sums, a running
/// peak, and a full `O(steps)` re-scan per toggle.
///
/// Kept public so the equality-pinning tests and the
/// `segment-tree vs scan` Criterion bench can compare [`PeakDemandGame`]'s
/// [`MaxTree`]-backed paths against the original algorithm; not intended
/// for production use.
#[derive(Debug, Clone)]
pub struct ScanPeak(pub PeakDemandGame);

impl Game for ScanPeak {
    fn player_count(&self) -> usize {
        self.0.player_count()
    }

    fn value(&self, coalition: &Coalition) -> f64 {
        self.0.value(coalition)
    }
}

impl IncrementalGame for ScanPeak {
    /// Running per-time-step sums plus the current peak (the original
    /// state layout).
    type State = (Vec<f64>, f64);

    fn initial_state(&self) -> Self::State {
        (vec![0.0; self.0.steps()], 0.0)
    }

    fn reset_state(&self, state: &mut Self::State) {
        state.0.fill(0.0);
        state.1 = 0.0;
    }

    fn add_player(&self, state: &mut Self::State, player: usize) -> f64 {
        let (sums, peak) = state;
        for (s, d) in sums.iter_mut().zip(&self.0.demand()[player]) {
            *s += d;
            if *s > *peak {
                *peak = *s;
            }
        }
        *peak
    }
}

/// A game given by an explicit table of coalition values, indexed by
/// bitmask. Only usable for ≤ 64 players; primarily a test fixture.
#[derive(Debug, Clone)]
pub struct TableGame {
    n: usize,
    values: Vec<f64>,
}

impl TableGame {
    /// Builds a table game; `values[mask]` is the value of the coalition
    /// with member bitmask `mask`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != 2ⁿ` or `values[0] != 0`.
    pub fn new(n: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), 1usize << n, "table must have 2^n entries");
        assert_eq!(values[0], 0.0, "the empty coalition must have value 0");
        Self { n, values }
    }

    /// Direct table lookup by membership bitmask.
    ///
    /// # Panics
    ///
    /// Panics if the mask has bits at or above `n`.
    pub fn lookup(&self, mask: u64) -> f64 {
        self.values[mask as usize]
    }
}

impl Game for TableGame {
    fn player_count(&self) -> usize {
        self.n
    }

    fn value(&self, coalition: &Coalition) -> f64 {
        let mut mask = 0u64;
        for p in coalition.iter() {
            mask |= 1 << p;
        }
        self.values[mask as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_demand_value_is_max_of_sums() {
        // p0: [4, 1], p1: [1, 4], p2: [2, 2]
        let g = PeakDemandGame::new(vec![vec![4.0, 1.0], vec![1.0, 4.0], vec![2.0, 2.0]]);
        assert_eq!(g.value(&Coalition::empty(3)), 0.0);
        assert_eq!(g.value(&Coalition::from_players(3, [0])), 4.0);
        assert_eq!(g.value(&Coalition::from_players(3, [0, 1])), 5.0);
        assert_eq!(g.value(&Coalition::grand(3)), 7.0);
    }

    #[test]
    fn incremental_matches_batch() {
        let g = PeakDemandGame::new(vec![vec![4.0, 1.0], vec![1.0, 4.0], vec![2.0, 2.0]]);
        let mut state = g.initial_state();
        let v1 = g.add_player(&mut state, 2);
        assert_eq!(v1, g.value(&Coalition::from_players(3, [2])));
        let v2 = g.add_player(&mut state, 0);
        assert_eq!(v2, g.value(&Coalition::from_players(3, [0, 2])));
        let v3 = g.add_player(&mut state, 1);
        assert_eq!(v3, g.value(&Coalition::grand(3)));
    }

    #[test]
    fn replay_adapter_agrees_with_direct_evaluation() {
        let g = PeakDemandGame::new(vec![vec![3.0], vec![2.0]]);
        let replay = Replay(g.clone());
        let mut s = replay.initial_state();
        assert_eq!(replay.add_player(&mut s, 1), 2.0);
        assert_eq!(replay.add_player(&mut s, 0), 5.0);
    }

    #[test]
    #[should_panic(expected = "2^n entries")]
    fn table_game_validates_size() {
        let _ = TableGame::new(2, vec![0.0, 1.0]);
    }

    #[test]
    fn replay_marginals_telescopes_and_counts() {
        let g = PeakDemandGame::new(vec![vec![4.0, 1.0], vec![1.0, 4.0], vec![2.0, 2.0]]);
        let mut marginals = vec![0.0; 3];
        let mut counters = EvalCounters::default();
        replay_marginals(&g, &[2, 0, 1], &mut marginals, &mut counters);
        let total: f64 = marginals.iter().sum();
        assert!((total - g.value(&Coalition::grand(3))).abs() < 1e-12);
        assert_eq!(counters.coalition_evals, 3);
        assert_eq!(counters.marginal_updates, 3);
    }

    #[test]
    fn counters_merge_by_summing() {
        let mut a = EvalCounters {
            coalition_evals: 3,
            marginal_updates: 3,
            batches: 1,
            wall_time_secs: 0.5,
            cache_hits: 2,
            cache_misses: 1,
        };
        let b = EvalCounters {
            coalition_evals: 7,
            marginal_updates: 6,
            batches: 2,
            wall_time_secs: 1.5,
            cache_hits: 1,
            cache_misses: 5,
        };
        a.merge(&b);
        assert_eq!(a.coalition_evals, 10);
        assert_eq!(a.marginal_updates, 9);
        assert_eq!(a.batches, 3);
        assert!((a.wall_time_secs - 2.0).abs() < 1e-12);
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.cache_misses, 6);
        assert!((a.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(EvalCounters::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn tree_backed_incremental_path_matches_the_scan_reference() {
        // Equality pin: the MaxTree-backed add_player must reproduce the
        // original dense-scan algorithm bit-for-bit on nonnegative
        // demands, across several permutations and a reused state.
        let demand = vec![
            vec![4.0, 1.0, 0.0, 2.0],
            vec![1.0, 4.0, 2.0, 0.0],
            vec![0.0, 0.0, 5.0, 5.0],
            vec![2.5, 0.5, 3.5, 0.25],
        ];
        let tree_game = PeakDemandGame::new(demand.clone());
        let scan_game = ScanPeak(PeakDemandGame::new(demand));
        let mut tree_state = tree_game.initial_state();
        let mut scan_state = scan_game.initial_state();
        for order in [[0usize, 1, 2, 3], [3, 2, 1, 0], [1, 3, 0, 2]] {
            tree_game.reset_state(&mut tree_state);
            scan_game.reset_state(&mut scan_state);
            for p in order {
                let a = tree_game.add_player(&mut tree_state, p);
                let b = scan_game.add_player(&mut scan_state, p);
                assert_eq!(a.to_bits(), b.to_bits(), "player {p} in {order:?}");
            }
        }
    }

    #[test]
    fn reset_state_reuses_allocations() {
        let g = PeakDemandGame::new(vec![vec![4.0, 1.0], vec![1.0, 4.0]]);
        let mut state = g.initial_state();
        let first = g.add_player(&mut state, 0);
        g.reset_state(&mut state);
        let second = g.add_player(&mut state, 0);
        assert_eq!(first.to_bits(), second.to_bits());
    }
}
