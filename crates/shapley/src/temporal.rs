//! Temporal Shapley: the scalable core of Fair-CO₂ (paper Section 5.1).
//!
//! Instead of casting each *workload* as a player (exponential), Temporal
//! Shapley casts each *time period* as a player in a peak game: the payoff
//! of a set of periods is the maximum of their peak demands (Eqs. 2–3),
//! because peak demand is the minimum capacity that must be provisioned.
//! Carbon is then attributed to periods in proportion to their Shapley
//! value times their resource-time (Eq. 5), and each period is split
//! recursively for a finer signal (Figure 4's 30 d → 3 d → 8 h → 1 h →
//! 5 min cascade).
//!
//! # The closed form
//!
//! The paper derives a sorted-order formula (Eq. 7) that avoids subset
//! enumeration. We implement the equivalent *level decomposition*: sort
//! peaks descending, `P₁ ≥ … ≥ P_n`, append `P_{n+1} = 0`; then
//!
//! ```text
//! max_{i∈S} P_i = Σ_k (P_k − P_{k+1}) · 1[S ∩ {1..k} ≠ ∅]
//! ```
//!
//! and the Shapley value of the indicator game `1[S∩T≠∅]` is `1/|T|` for
//! members of `T`. By linearity,
//!
//! ```text
//! φ_i = Σ_{k≥i} (P_k − P_{k+1}) / k
//! ```
//!
//! — exact, `O(n log n)`, and identical to enumerating Eq. 1 (property
//! tests in this module verify that).
//!
//! # The flat cascade
//!
//! [`TemporalShapley::attribute`] runs the hierarchy through the
//! zero-copy engine in [`crate::cascade`]: periods are index ranges over
//! the one shared demand buffer, peaks come from a sparse-table range
//! max, integrals from a fused per-level sweep, and every buffer lives
//! in a reusable [`CascadeScratch`]. The original per-period pipeline is
//! retained verbatim as [`TemporalShapley::attribute_per_period`]; the
//! flat engine's scalar kernels ([`TemporalShapley::attribute_scalar`])
//! are pinned **bit-for-bit** against it, and the default lane-parallel
//! kernels ([`crate::cascade::KernelMode::Lane`]) closeness-pinned
//! against the scalar ones (and bit-pinned against themselves across
//! thread counts) by property tests in `tests/temporal_cascade.rs`.

use serde::{Deserialize, Serialize};

use fairco2_trace::series::{SeriesError, TimeSeries};

use crate::cascade::{run_cascade, BillingQuery, CascadeScratch, IntensityIndex, KernelMode};
use crate::exact::exact_shapley;
use crate::game::PeakDemandGame;

/// Exact Shapley values of the peak game `v(S) = max_{i∈S} peaks[i]`.
///
/// Returns one value per input peak; values are non-negative, sum to the
/// maximum peak (efficiency), and tie-break symmetrically (equal peaks get
/// equal values).
///
/// # Panics
///
/// Panics if `peaks` is empty or contains a negative or non-finite value —
/// peak resource demand is a non-negative physical quantity.
pub fn peak_shapley(peaks: &[f64]) -> Vec<f64> {
    let mut order = Vec::with_capacity(peaks.len());
    let mut phi = Vec::with_capacity(peaks.len());
    peak_shapley_into(peaks, &mut order, &mut phi);
    phi
}

/// Allocation-free form of [`peak_shapley`]: writes the Shapley values
/// into `phi` (cleared first) using `order` as the sort buffer. The flat
/// cascade calls this once per parent period with reused buffers.
///
/// # Panics
///
/// Same conditions as [`peak_shapley`].
pub fn peak_shapley_into(peaks: &[f64], order: &mut Vec<usize>, phi: &mut Vec<f64>) {
    assert!(!peaks.is_empty(), "at least one period is required");
    assert!(
        peaks.iter().all(|p| p.is_finite() && *p >= 0.0),
        "peaks must be finite and non-negative"
    );
    let n = peaks.len();
    order.clear();
    order.extend(0..n);
    // Stable sort: equal peaks keep their period order, exactly like the
    // original owned-Vec implementation.
    order.sort_by(|&a, &b| peaks[b].total_cmp(&peaks[a]));

    phi.clear();
    phi.resize(n, 0.0);
    // Suffix-accumulate (P_k − P_{k+1})/k from the smallest peak upward.
    let mut suffix = 0.0f64;
    for k in (0..n).rev() {
        let next = if k + 1 < n { peaks[order[k + 1]] } else { 0.0 };
        suffix += (peaks[order[k]] - next) / (k + 1) as f64;
        phi[order[k]] = suffix;
    }
}

/// Configuration of the hierarchical attribution: how many children each
/// level splits into (the paper's example uses `[10, 9, 8, 12]`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalShapley {
    splits: Vec<usize>,
}

/// Result of a hierarchical Temporal Shapley attribution.
#[derive(Debug, Clone)]
pub struct TemporalAttribution {
    /// Prefix sums of `intensity · step` over the leaf signal:
    /// `carbon_prefix[k]` is the carbon one resource unit accrues over the
    /// first `k` samples, so any window query is one subtraction.
    carbon_prefix: Vec<f64>,
    /// Intensity signal after each hierarchy level (index 0 = coarsest),
    /// each expanded to the input sampling grid for easy comparison —
    /// the successive refinements of the paper's Figure 4.
    level_intensity: Vec<TimeSeries>,
    /// Carbon that could not be attributed because the demand was zero
    /// over an entire leaf period.
    stranded_carbon: f64,
    /// Coalition evaluations a naive subset-enumeration Shapley would
    /// have needed for the same hierarchy (the paper's "calculations").
    naive_subset_evaluations: f64,
    /// Marginal-contribution updates the closed form actually performed.
    closed_form_operations: u64,
}

impl TemporalAttribution {
    /// The finest-granularity carbon-intensity signal (gCO₂e per
    /// resource-unit-second), on the demand series' sampling grid —
    /// the last hierarchy level (stored once, not duplicated).
    pub fn leaf_intensity(&self) -> &TimeSeries {
        self.level_intensity
            .last()
            .expect("at least the root level exists")
    }

    /// Per-level intensity signals, coarsest first; the last entry equals
    /// [`TemporalAttribution::leaf_intensity`].
    pub fn level_intensity(&self) -> &[TimeSeries] {
        &self.level_intensity
    }

    /// Carbon stranded on zero-demand leaf periods.
    pub fn stranded_carbon(&self) -> f64 {
        self.stranded_carbon
    }

    /// Coalition evaluations a naive per-level subset enumeration would
    /// have required.
    pub fn naive_subset_evaluations(&self) -> f64 {
        self.naive_subset_evaluations
    }

    /// Arithmetic marginal updates the closed form performed.
    pub fn closed_form_operations(&self) -> u64 {
        self.closed_form_operations
    }

    /// Prefix sums of `intensity · step` over the leaf signal
    /// (`len() + 1` entries): the raw table behind
    /// [`TemporalAttribution::workload_carbon`].
    pub fn carbon_prefix(&self) -> &[f64] {
        &self.carbon_prefix
    }

    /// Assembles an attribution from cascade parts (the leaf signal is
    /// the last level).
    pub(crate) fn from_parts(
        level_intensity: Vec<TimeSeries>,
        carbon_prefix: Vec<f64>,
        stranded_carbon: f64,
        naive_subset_evaluations: f64,
        closed_form_operations: u64,
    ) -> Self {
        assert!(
            !level_intensity.is_empty(),
            "at least the root level exists"
        );
        Self {
            carbon_prefix,
            level_intensity,
            stranded_carbon,
            naive_subset_evaluations,
            closed_form_operations,
        }
    }

    /// Borrows the O(1) billing-query index over the leaf carbon prefix.
    /// Hoist this out of query loops: the borrow skips the per-call grid
    /// setup and feeds the batched entry points.
    pub fn intensity_index(&self) -> IntensityIndex<'_> {
        let leaf = self.leaf_intensity();
        IntensityIndex::new(leaf.start(), leaf.step(), &self.carbon_prefix)
    }

    /// Total carbon attributed to `[t0, t1)` given a workload that holds
    /// `allocation` resource units over that window (gCO₂e).
    ///
    /// This is the O(1)-per-workload lookup the paper highlights: once the
    /// intensity signal exists, a workload's share is just
    /// `∫ allocation · ȳ(t) dt`, answered from the precomputed prefix sums
    /// of `intensity · step` — two index clamps and one subtraction,
    /// independent of the series length. A sample at time `t` counts when
    /// `t ∈ [t0, t1)`, exactly as the original linear scan selected them.
    pub fn workload_carbon(&self, t0: i64, t1: i64, allocation: f64) -> f64 {
        self.intensity_index().carbon(t0, t1, allocation)
    }

    /// Answers a batch of `(t0, t1, allocation)` billing queries, one
    /// output per query, each bit-identical to the corresponding
    /// [`TemporalAttribution::workload_carbon`] call. This is the
    /// fleet-scale entry point: the grid parameters are resolved once
    /// for the whole batch and each query costs a few integer ops, so a
    /// single thread sustains millions of queries per second.
    pub fn workload_carbon_batch(&self, queries: &[BillingQuery]) -> Vec<f64> {
        let mut out = Vec::new();
        self.workload_carbon_batch_into(queries, &mut out);
        out
    }

    /// [`TemporalAttribution::workload_carbon_batch`] into a reusable
    /// output buffer (cleared first) — allocation-free once the buffer
    /// has grown to the batch size.
    pub fn workload_carbon_batch_into(&self, queries: &[BillingQuery], out: &mut Vec<f64>) {
        self.intensity_index().carbon_batch_into(queries, out);
    }
}

impl TemporalShapley {
    /// Creates a hierarchy with the given split ratios (empty = attribute
    /// the whole series as one period).
    ///
    /// # Panics
    ///
    /// Panics if any split ratio is zero or one — such a level would not
    /// divide anything.
    pub fn new(splits: Vec<usize>) -> Self {
        assert!(
            splits.iter().all(|&m| m >= 2),
            "split ratios must be at least 2"
        );
        Self { splits }
    }

    /// The paper's Figure 4 hierarchy for a 30-day, 5-minute trace:
    /// 30 d → 3 d → 8 h → 1 h → 5 min via ratios 10 · 9 · 8 · 12.
    pub fn paper_hierarchy() -> Self {
        Self::new(vec![10, 9, 8, 12])
    }

    /// The configured split ratios.
    pub fn splits(&self) -> &[usize] {
        &self.splits
    }

    /// Attributes `total_carbon` (gCO₂e — e.g. one amortized month of
    /// embodied carbon) over the demand series, producing the dynamic
    /// carbon-intensity signal.
    ///
    /// # Example
    ///
    /// ```
    /// use fairco2_shapley::temporal::TemporalShapley;
    /// use fairco2_trace::TimeSeries;
    ///
    /// // 12 hourly samples; the last four carry a demand spike.
    /// let mut demand = vec![10.0; 8];
    /// demand.extend([40.0; 4]);
    /// let series = TimeSeries::from_values(0, 3600, demand)?;
    /// let att = TemporalShapley::new(vec![3]).attribute(&series, 900.0)?;
    /// // The spike periods carry a higher carbon intensity.
    /// let quiet = att.leaf_intensity().value_at(0).unwrap();
    /// let spike = att.leaf_intensity().value_at(9 * 3600).unwrap();
    /// assert!(spike > quiet);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SeriesError`] if the hierarchy splits the
    /// series below one sample per period.
    pub fn attribute(
        &self,
        demand: &TimeSeries,
        total_carbon: f64,
    ) -> Result<TemporalAttribution, SeriesError> {
        let mut scratch = CascadeScratch::new();
        run_cascade(
            &self.splits,
            demand,
            total_carbon,
            1,
            KernelMode::Lane,
            &mut scratch,
        )?;
        Ok(scratch.into_attribution())
    }

    /// [`TemporalShapley::attribute`] through the retained scalar
    /// kernels ([`KernelMode::Scalar`]): per-period left-to-right sums
    /// and the serial prefix chain, bit-identical to
    /// [`TemporalShapley::attribute_per_period`]. This is the
    /// equality/closeness pin for the default lane-parallel path — use
    /// [`TemporalShapley::attribute`] everywhere else.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TemporalShapley::attribute`].
    pub fn attribute_scalar(
        &self,
        demand: &TimeSeries,
        total_carbon: f64,
    ) -> Result<TemporalAttribution, SeriesError> {
        let mut scratch = CascadeScratch::new();
        run_cascade(
            &self.splits,
            demand,
            total_carbon,
            1,
            KernelMode::Scalar,
            &mut scratch,
        )?;
        Ok(scratch.into_attribution())
    }

    /// [`TemporalShapley::attribute`] with the per-level Shapley splits
    /// fanned out over `threads` workers (parents within a level are
    /// independent). The in-order merge makes the result **bit-identical**
    /// to the serial path at any thread count; `threads == 0` clamps to 1.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TemporalShapley::attribute`].
    pub fn attribute_parallel(
        &self,
        demand: &TimeSeries,
        total_carbon: f64,
        threads: usize,
    ) -> Result<TemporalAttribution, SeriesError> {
        let mut scratch = CascadeScratch::new();
        run_cascade(
            &self.splits,
            demand,
            total_carbon,
            threads,
            KernelMode::Lane,
            &mut scratch,
        )?;
        Ok(scratch.into_attribution())
    }

    /// Runs the flat cascade into a caller-owned [`CascadeScratch`],
    /// reusing every buffer from the previous run — a repeated call on
    /// same-shaped inputs performs **no heap allocation** (with
    /// `threads <= 1`; the parallel path allocates small per-parent
    /// buffers). Read the results through the scratch accessors
    /// ([`CascadeScratch::leaf_intensity`],
    /// [`CascadeScratch::carbon_prefix`], …) or materialize a
    /// [`TemporalAttribution`] via [`CascadeScratch::to_attribution`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`TemporalShapley::attribute`]; the scratch
    /// contents are unspecified after an error.
    pub fn attribute_with_scratch(
        &self,
        demand: &TimeSeries,
        total_carbon: f64,
        threads: usize,
        scratch: &mut CascadeScratch,
    ) -> Result<(), SeriesError> {
        run_cascade(
            &self.splits,
            demand,
            total_carbon,
            threads,
            KernelMode::Lane,
            scratch,
        )
    }

    /// [`TemporalShapley::attribute_with_scratch`] through the retained
    /// scalar kernels; see [`TemporalShapley::attribute_scalar`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`TemporalShapley::attribute_with_scratch`].
    pub fn attribute_scalar_with_scratch(
        &self,
        demand: &TimeSeries,
        total_carbon: f64,
        threads: usize,
        scratch: &mut CascadeScratch,
    ) -> Result<(), SeriesError> {
        run_cascade(
            &self.splits,
            demand,
            total_carbon,
            threads,
            KernelMode::Scalar,
            scratch,
        )
    }

    /// The original per-period pipeline, retained verbatim as the
    /// reference implementation: it clones the demand into owned
    /// [`TimeSeries`] at every level and rescans each period for its peak
    /// and integral. The scalar flat cascade
    /// ([`TemporalShapley::attribute_scalar`]) is equality-pinned
    /// bit-for-bit against this path by the property tests in
    /// `tests/temporal_cascade.rs` and by `perf_report`, and the default
    /// lane path closeness-pinned against *that*; keep using
    /// [`TemporalShapley::attribute`] everywhere else.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SeriesError`] if the hierarchy splits the
    /// series below one sample per period.
    pub fn attribute_per_period(
        &self,
        demand: &TimeSeries,
        total_carbon: f64,
    ) -> Result<TemporalAttribution, SeriesError> {
        // Per-sample carbon assignment, refined level by level.
        let mut carbon_per_period: Vec<(TimeSeries, f64)> = vec![(demand.clone(), total_carbon)];
        let mut level_intensity = Vec::with_capacity(self.splits.len() + 1);
        let mut naive = 0.0f64;
        let mut ops = 0u64;
        let mut stranded = 0.0f64;

        level_intensity.push(intensity_signal(demand, &carbon_per_period, &mut stranded));

        for &m in &self.splits {
            let mut next: Vec<(TimeSeries, f64)> = Vec::with_capacity(carbon_per_period.len() * m);
            for (period, carbon) in &carbon_per_period {
                let parts = period.split(m)?;
                let peaks: Vec<f64> = parts.iter().map(TimeSeries::peak).collect();
                let phi = peak_shapley(&peaks);
                ops += (m * m.ilog2().max(1) as usize) as u64;
                naive += (m as f64) * 2f64.powi(m as i32);
                let q: Vec<f64> = parts.iter().map(TimeSeries::integral).collect();
                let weights = attribution_weights(&phi, &q, &parts);
                for (part, w) in parts.into_iter().zip(weights) {
                    next.push((part, carbon * w));
                }
            }
            carbon_per_period = next;
            let mut level_stranded = 0.0;
            level_intensity.push(intensity_signal(
                demand,
                &carbon_per_period,
                &mut level_stranded,
            ));
            stranded = level_stranded;
        }

        let carbon_prefix = {
            let leaf = level_intensity
                .last()
                .expect("at least the root level exists");
            let step = f64::from(leaf.step());
            let mut carbon_prefix = Vec::with_capacity(leaf.len() + 1);
            carbon_prefix.push(0.0);
            let mut acc = 0.0;
            for v in leaf.values() {
                acc += v * step;
                carbon_prefix.push(acc);
            }
            carbon_prefix
        };
        Ok(TemporalAttribution {
            carbon_prefix,
            level_intensity,
            stranded_carbon: stranded,
            naive_subset_evaluations: naive,
            closed_form_operations: ops,
        })
    }
}

/// Shares of a period's carbon given to its children: φ·q-proportional
/// (Eq. 5); falls back to q-proportional when every φ·q vanishes and to
/// duration-proportional when even total demand is zero.
fn attribution_weights(phi: &[f64], q: &[f64], parts: &[TimeSeries]) -> Vec<f64> {
    let phi_q: Vec<f64> = phi.iter().zip(q).map(|(&p, &qi)| p * qi).collect();
    let denom: f64 = phi_q.iter().sum();
    if denom > 0.0 {
        return phi_q.iter().map(|v| v / denom).collect();
    }
    let q_total: f64 = q.iter().sum();
    if q_total > 0.0 {
        return q.iter().map(|v| v / q_total).collect();
    }
    let d_total: f64 = parts.iter().map(TimeSeries::duration).sum();
    parts.iter().map(|p| p.duration() / d_total).collect()
}

/// Expands a per-period carbon assignment to a per-sample intensity signal
/// on the original grid. Zero-demand periods contribute zero intensity and
/// their carbon is accumulated into `stranded`.
fn intensity_signal(
    demand: &TimeSeries,
    periods: &[(TimeSeries, f64)],
    stranded: &mut f64,
) -> TimeSeries {
    let mut values = vec![0.0f64; demand.len()];
    let step = i64::from(demand.step());
    for (period, carbon) in periods {
        let q = period.integral();
        if q <= 0.0 {
            *stranded += carbon;
            continue;
        }
        let intensity = carbon / q;
        let first = ((period.start() - demand.start()) / step) as usize;
        for k in 0..period.len() {
            values[first + k] = intensity;
        }
    }
    TimeSeries::from_values(demand.start(), demand.step(), values)
        .expect("demand series is non-empty")
}

/// Reference implementation: exact Shapley of the peak game by subset
/// enumeration — used to validate [`peak_shapley`] and exposed for tests
/// and benchmarks of the "ground truth" cost.
///
/// # Errors
///
/// Propagates [`crate::exact::ExactError`] converted to a panic-free
/// result via the underlying solver.
pub fn peak_shapley_enumerated(peaks: &[f64]) -> Result<Vec<f64>, crate::exact::ExactError> {
    // One time step per player where only that player is active ⇒ the
    // coalition value is exactly the max of member peaks.
    let matrix: Vec<Vec<f64>> = (0..peaks.len())
        .map(|i| {
            let mut row = vec![0.0; peaks.len()];
            row[i] = peaks[i];
            row
        })
        .collect();
    exact_shapley(&PeakDemandGame::new(matrix))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_enumeration() {
        let cases: Vec<Vec<f64>> = vec![
            vec![10.0],
            vec![10.0, 6.0, 6.0],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
            vec![5.0, 5.0, 5.0, 5.0],
            vec![0.0, 3.0, 0.0, 7.0, 2.0, 7.0],
            vec![9.5, 0.1, 4.2, 4.2, 4.2, 8.8, 1.0],
        ];
        for peaks in cases {
            let fast = peak_shapley(&peaks);
            let slow = peak_shapley_enumerated(&peaks).unwrap();
            for (f, s) in fast.iter().zip(&slow) {
                assert!((f - s).abs() < 1e-9, "{peaks:?}: {f} vs {s}");
            }
        }
    }

    #[test]
    fn efficiency_sums_to_the_peak() {
        let peaks = [4.0, 9.0, 2.0, 9.0, 7.5];
        let phi = peak_shapley(&peaks);
        let total: f64 = phi.iter().sum();
        assert!((total - 9.0).abs() < 1e-12);
    }

    #[test]
    fn null_period_gets_zero() {
        let phi = peak_shapley(&[5.0, 0.0, 3.0]);
        assert_eq!(phi[1], 0.0);
    }

    #[test]
    fn higher_peak_never_gets_less() {
        let peaks = [1.0, 4.0, 2.0, 8.0, 8.0];
        let phi = peak_shapley(&peaks);
        assert!(phi[3] > phi[1] && phi[1] > phi[2] && phi[2] > phi[0]);
        assert!((phi[3] - phi[4]).abs() < 1e-12);
    }

    fn demo_series() -> TimeSeries {
        // 48 samples of 300 s with a clear peak structure.
        TimeSeries::from_fn(0, 300, 48, |t| {
            let x = t as f64 / 300.0;
            10.0 + 5.0 * (x / 8.0 * std::f64::consts::PI).sin().abs() + (x % 7.0)
        })
        .unwrap()
    }

    #[test]
    fn hierarchical_attribution_conserves_carbon() {
        let series = demo_series();
        let h = TemporalShapley::new(vec![4, 3]);
        let att = h.attribute(&series, 1000.0).unwrap();
        // Re-integrate intensity × demand over time: must equal the input
        // carbon minus stranded carbon.
        let total: f64 = att
            .leaf_intensity()
            .iter()
            .zip(series.iter())
            .map(|((_, y), (_, d))| y * d * 300.0)
            .sum();
        assert!(
            (total + att.stranded_carbon() - 1000.0).abs() < 1e-6,
            "reattributed {total}"
        );
    }

    #[test]
    fn higher_demand_periods_get_higher_intensity() {
        let mut values = vec![1.0; 24];
        values.extend(vec![10.0; 24]); // second half has 10× demand
        let series = TimeSeries::from_values(0, 300, values).unwrap();
        let att = TemporalShapley::new(vec![2])
            .attribute(&series, 100.0)
            .unwrap();
        let low = att.leaf_intensity().value_at(0).unwrap();
        let high = att.leaf_intensity().value_at(24 * 300).unwrap();
        assert!(high > low, "high {high} low {low}");
    }

    #[test]
    fn level_signals_refine_from_constant_to_dynamic() {
        let series = demo_series();
        let h = TemporalShapley::new(vec![4, 3]);
        let att = h.attribute(&series, 500.0).unwrap();
        assert_eq!(att.level_intensity().len(), 3);
        // Root level: a single intensity over all samples.
        let root = &att.level_intensity()[0];
        let first = root.values()[0];
        assert!(root.values().iter().all(|v| (v - first).abs() < 1e-12));
        // Finest level has at least as much variance as the root.
        let spread = |s: &TimeSeries| s.peak() - s.min();
        assert!(spread(&att.level_intensity()[2]) >= spread(root));
    }

    #[test]
    fn zero_demand_periods_strand_their_carbon() {
        let mut values = vec![0.0; 12];
        values.extend(vec![5.0; 12]);
        let series = TimeSeries::from_values(0, 300, values).unwrap();
        let att = TemporalShapley::new(vec![2])
            .attribute(&series, 100.0)
            .unwrap();
        // The zero-demand half strands nothing at the split level (its φ·q
        // weight is zero, so all carbon goes to the active half).
        assert_eq!(att.stranded_carbon(), 0.0);
        assert_eq!(att.leaf_intensity().value_at(0), Some(0.0));
        let active = att.leaf_intensity().value_at(12 * 300).unwrap();
        assert!(active > 0.0);
    }

    #[test]
    fn fully_idle_series_strands_everything() {
        let series = TimeSeries::constant(0, 300, 24, 0.0).unwrap();
        let att = TemporalShapley::new(vec![4])
            .attribute(&series, 100.0)
            .unwrap();
        assert!((att.stranded_carbon() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn workload_lookup_integrates_the_signal() {
        let series = demo_series();
        let att = TemporalShapley::new(vec![4])
            .attribute(&series, 1000.0)
            .unwrap();
        let whole = att.workload_carbon(0, series.end(), 1.0);
        let per_unit_total: f64 = att.leaf_intensity().integral();
        assert!((whole - per_unit_total).abs() < 1e-9);
        // Half the window attributes less than the whole.
        let half = att.workload_carbon(0, series.end() / 2, 1.0);
        assert!(half < whole);
        // Twice the allocation attributes twice the carbon.
        let double = att.workload_carbon(0, series.end(), 2.0);
        assert!((double - 2.0 * whole).abs() < 1e-9);
    }

    #[test]
    fn prefix_sum_window_query_matches_the_linear_scan() {
        // Pin the O(1) prefix-sum path to the original linear scan, which
        // kept every sample whose timestamp lies in [t0, t1).
        let linear_scan = |att: &TemporalAttribution, t0: i64, t1: i64, alloc: f64| -> f64 {
            let step = f64::from(att.leaf_intensity().step());
            att.leaf_intensity()
                .iter()
                .filter(|(t, _)| *t >= t0 && *t < t1)
                .map(|(_, intensity)| intensity * alloc * step)
                .sum()
        };
        let series = demo_series(); // starts at 0, step 300, 48 samples
        let att = TemporalShapley::new(vec![4, 3])
            .attribute(&series, 1000.0)
            .unwrap();
        let end = series.end();
        let windows = [
            (0, end),            // whole series
            (0, end / 2),        // aligned half
            (150, 4 * 300 + 10), // both ends off the sampling grid
            (-500, 299),         // starts before the series, ends mid-step
            (300, 300),          // empty window
            (700, 600),          // inverted window
            (end, end + 900),    // entirely past the end
            (-900, -300),        // entirely before the start
            (47 * 300, end + 1), // straddles the final sample
        ];
        for (t0, t1) in windows {
            for alloc in [0.0, 1.0, 2.5] {
                let fast = att.workload_carbon(t0, t1, alloc);
                let slow = linear_scan(&att, t0, t1, alloc);
                assert!(
                    (fast - slow).abs() <= 1e-9 * slow.abs().max(1.0),
                    "window [{t0}, {t1}) alloc {alloc}: fast {fast} vs scan {slow}"
                );
            }
        }
    }

    #[test]
    fn op_counters_show_the_scalability_gap() {
        let series =
            TimeSeries::from_fn(0, 300, 8640, |t| 100.0 + (t as f64 / 8640.0).sin() * 10.0)
                .unwrap();
        let att = TemporalShapley::paper_hierarchy()
            .attribute(&series, 1.0)
            .unwrap();
        assert!(att.naive_subset_evaluations() > att.closed_form_operations() as f64);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_peaks_panic() {
        let _ = peak_shapley(&[1.0, -2.0]);
    }
}
