//! Public entry points for the lane-parallel inner-loop kernels.
//!
//! The cascade ([`crate::cascade`]) runs its kernels at the frozen
//! canonical parameters — [`CANONICAL_LANES`] accumulator lanes and
//! [`PREFIX_BLOCK`]-sample prefix blocks — because those constants *are*
//! part of the pinned reduction: changing them changes which
//! reassociated sum every consumer (streaming engine, BENCH artifacts)
//! reproduces. This module re-exposes the same kernels with the lane
//! count and block length as const generics, so proptests and Criterion
//! benches can pin the kernels' contracts at *other* parameters — the
//! awkward lengths `0`, `1`, `K−1`, `K`, `K+1`, non-multiples of `K` —
//! without touching the canonical paths.
//!
//! Contracts (verified in `tests/kernel_lanes.rs`):
//!
//! * [`level_sums_lanes`] produces **bit-identical leaf peaks** to
//!   [`level_sums_scalar`] at every `K` (`max` is associative and
//!   operand-selecting), and per-period sums within the documented
//!   ≤ O(n·ε) relative reassociation bound;
//! * [`prefix_blocked`] is **bit-identical** to [`prefix_scalar`]
//!   whenever the signal fits one block (`n ≤ B`), and within one
//!   `local + carry` reassociation per element beyond that;
//! * both lane kernels are *deterministic in the data length alone* —
//!   lane assignment and combine order never depend on the values.

use crate::cascade::{fill_bounds, fill_level_sums_scalar, fill_prefix_blocked_sized, lane_sweep};
use fairco2_trace::series::SeriesError;

pub use crate::cascade::{
    combine_lanes, combine_lanes_max, KernelMode, CANONICAL_LANES, PREFIX_BLOCK,
};

/// Derives every hierarchy level's period bounds for `samples` samples
/// under `splits`, using the same "earlier chunks get the remainder"
/// rule as `TimeSeries::split`. `bounds[level]` holds `parts + 1` sample
/// indices; level 0 is the whole window, the last level the leaves.
///
/// # Errors
///
/// Returns [`SeriesError::OutOfRange`] if any period would be split into
/// more parts than it has samples.
pub fn hierarchy_bounds(samples: usize, splits: &[usize]) -> Result<Vec<Vec<usize>>, SeriesError> {
    let mut bounds = Vec::new();
    fill_bounds(&mut bounds, samples, splits)?;
    Ok(bounds)
}

/// The retained scalar fused sweep: per-period left-to-right sums and
/// peaks, one serial dependency chain per level. `q[level]` receives
/// each of the level's period integrals (`Σ value · step`), and
/// `leaf_peaks` each leaf period's maximum. Buffers are cleared and
/// refilled; `bounds` comes from [`hierarchy_bounds`].
pub fn level_sums_scalar(
    values: &[f64],
    step: f64,
    bounds: &[Vec<usize>],
    q: &mut Vec<Vec<f64>>,
    leaf_peaks: &mut Vec<f64>,
) {
    let mut acc = Vec::new();
    let mut next = Vec::new();
    fill_level_sums_scalar(values, step, bounds, q, &mut acc, &mut next, leaf_peaks);
}

/// The lane-parallel sweep at an arbitrary power-of-two lane count `K`:
/// within each leaf, lane `j` accumulates the samples at within-leaf
/// offsets `≡ j (mod K)`, the lane vector collapses through
/// [`combine_lanes`] / [`combine_lanes_max`], and every level
/// accumulates whole leaf sums left-to-right. At
/// `K = `[`CANONICAL_LANES`] this is exactly the cascade's default
/// kernel.
///
/// # Panics
///
/// Panics if `K` is not a power of two.
pub fn level_sums_lanes<const K: usize>(
    values: &[f64],
    step: f64,
    bounds: &[Vec<usize>],
    q: &mut Vec<Vec<f64>>,
    leaf_peaks: &mut Vec<f64>,
) {
    let levels = bounds.len();
    while q.len() < levels {
        q.push(Vec::new());
    }
    for sums in q.iter_mut() {
        sums.clear();
    }
    leaf_peaks.clear();
    let mut acc = vec![0.0f64; levels];
    let mut next = vec![1usize; levels];
    lane_sweep::<K>(values, step, bounds, q, &mut acc, &mut next, leaf_peaks);
}

/// The retained scalar prefix: one serial chain
/// `prefix[k] = prefix[k−1] + intensity[k−1] · step` over the whole
/// signal, `prefix[0] = 0`. This is the accumulation order of the fused
/// leaf fill the cascade's scalar mode uses.
pub fn prefix_scalar(intensity: &[f64], step: f64, prefix: &mut Vec<f64>) {
    if prefix.len() != intensity.len() + 1 {
        prefix.clear();
        prefix.resize(intensity.len() + 1, 0.0);
    }
    prefix[0] = 0.0;
    let mut acc = 0.0f64;
    for (slot, &v) in prefix[1..].iter_mut().zip(intensity) {
        acc += v * step;
        *slot = acc;
    }
}

/// The blocked prefix at an arbitrary block length `B`: a serial local
/// prefix chain restarted at every multiple of `B`, with each block's
/// running carry folded in at the store (`out = local + carry`) in a
/// single pass over the signal. Bit-identical to [`prefix_scalar`] when
/// `intensity.len() ≤ B`; one `local + carry` reassociation per element
/// beyond that. At `B = `[`PREFIX_BLOCK`] this is exactly the cascade's
/// default kernel.
///
/// # Panics
///
/// Panics if `B == 0`.
pub fn prefix_blocked<const B: usize>(intensity: &[f64], step: f64, prefix: &mut Vec<f64>) {
    fill_prefix_blocked_sized::<B>(intensity, step, prefix);
}
