//! Executable checks of the four Shapley fairness axioms the paper relies
//! on (Section 4): null player, symmetry, efficiency, and linearity.
//!
//! These are used by the property-test suite to validate every solver, and
//! exported so downstream attribution methods can be audited the same way.

use crate::cache::CachedGame;
use crate::coalition::Coalition;
use crate::game::{Game, GameStats};

/// Outcome of an axiom check.
#[derive(Debug, Clone, PartialEq)]
pub enum AxiomCheck {
    /// The axiom holds within tolerance.
    Holds,
    /// The axiom is violated; carries a human-readable explanation.
    Violated(String),
}

impl AxiomCheck {
    /// Whether the axiom holds.
    pub fn holds(&self) -> bool {
        matches!(self, AxiomCheck::Holds)
    }
}

/// **Efficiency**: the attribution fully distributes the grand-coalition
/// cost — carbon is neither over- nor under-attributed.
pub fn check_efficiency<G: Game>(game: &G, phi: &[f64], tol: f64) -> AxiomCheck {
    let grand = game.value(&Coalition::grand(game.player_count()));
    let total: f64 = phi.iter().sum();
    if (total - grand).abs() <= tol * grand.abs().max(1.0) {
        AxiomCheck::Holds
    } else {
        AxiomCheck::Violated(format!("Σφ = {total} but v(N) = {grand}"))
    }
}

/// **Null player**: a player whose marginal contribution is zero to every
/// coalition must be attributed exactly zero.
///
/// The check verifies the premise by enumeration (only feasible for small
/// games) and then tests the attribution.
pub fn check_null_player<G: Game>(game: &G, phi: &[f64], player: usize, tol: f64) -> AxiomCheck {
    let n = game.player_count();
    assert!(
        n <= 20,
        "null-player verification enumerates 2^n coalitions"
    );
    let bit = 1u64 << player;
    for mask in 0u64..1 << n {
        if mask & bit != 0 {
            continue;
        }
        let without = game.value(&Coalition::from_mask(n, mask));
        let with = game.value(&Coalition::from_mask(n, mask | bit));
        if (with - without).abs() > tol {
            return AxiomCheck::Violated(format!(
                "player {player} is not null: marginal {} on {mask:b}",
                with - without
            ));
        }
    }
    if phi[player].abs() <= tol {
        AxiomCheck::Holds
    } else {
        AxiomCheck::Violated(format!(
            "null player {player} was attributed {}",
            phi[player]
        ))
    }
}

/// **Symmetry**: two players that contribute identically to every
/// coalition must receive identical attributions.
///
/// Verifies the equivalence by enumeration (small games only), then tests
/// the attribution.
pub fn check_symmetry<G: Game>(game: &G, phi: &[f64], a: usize, b: usize, tol: f64) -> AxiomCheck {
    let n = game.player_count();
    assert!(n <= 20, "symmetry verification enumerates 2^n coalitions");
    let (bit_a, bit_b) = (1u64 << a, 1u64 << b);
    for mask in 0u64..1 << n {
        if mask & (bit_a | bit_b) != 0 {
            continue;
        }
        let with_a = game.value(&Coalition::from_mask(n, mask | bit_a));
        let with_b = game.value(&Coalition::from_mask(n, mask | bit_b));
        if (with_a - with_b).abs() > tol {
            return AxiomCheck::Violated(format!(
                "players {a} and {b} are not equivalent on {mask:b}"
            ));
        }
    }
    if (phi[a] - phi[b]).abs() <= tol {
        AxiomCheck::Holds
    } else {
        AxiomCheck::Violated(format!(
            "equivalent players received {} and {}",
            phi[a], phi[b]
        ))
    }
}

/// Audits several axioms against one game through a shared
/// [`CoalitionCache`](crate::cache::CoalitionCache).
///
/// The null-player and symmetry checks each enumerate `2ⁿ` coalition
/// values; auditing several players therefore re-evaluates heavily
/// overlapping mask sets. The audit routes every check through one
/// [`CachedGame`], so each distinct coalition is valued at most once
/// across the whole audit, and [`AxiomAudit::stats`] reports how much
/// work the cache absorbed.
pub struct AxiomAudit<'g, G> {
    cached: CachedGame<'g, G>,
}

impl<'g, G: Game> AxiomAudit<'g, G> {
    /// Wraps `game` with a fresh cache sized for its player count.
    ///
    /// # Panics
    ///
    /// Panics if the game has more than 64 players (the cache keys
    /// coalitions by `u64` mask).
    pub fn new(game: &'g G) -> Self {
        Self {
            cached: CachedGame::new(game),
        }
    }

    /// [`check_efficiency`] through the shared cache.
    pub fn efficiency(&self, phi: &[f64], tol: f64) -> AxiomCheck {
        check_efficiency(&self.cached, phi, tol)
    }

    /// [`check_null_player`] through the shared cache.
    pub fn null_player(&self, phi: &[f64], player: usize, tol: f64) -> AxiomCheck {
        check_null_player(&self.cached, phi, player, tol)
    }

    /// [`check_symmetry`] through the shared cache.
    pub fn symmetry(&self, phi: &[f64], a: usize, b: usize, tol: f64) -> AxiomCheck {
        check_symmetry(&self.cached, phi, a, b, tol)
    }

    /// Evaluations, hits, and misses accumulated across all checks so far.
    pub fn stats(&self) -> GameStats {
        self.cached.cache_stats()
    }

    /// Fraction of lookups served from the cache so far.
    pub fn hit_rate(&self) -> f64 {
        self.cached.hit_rate()
    }
}

/// **Linearity**: the attribution of a sum game is the sum of the
/// attributions — the property that lets the paper decompose data-center
/// attribution into rack- or cluster-scale subproblems.
pub fn check_linearity(
    phi_sum_game: &[f64],
    phi_left: &[f64],
    phi_right: &[f64],
    tol: f64,
) -> AxiomCheck {
    for (i, ((s, l), r)) in phi_sum_game.iter().zip(phi_left).zip(phi_right).enumerate() {
        if (s - (l + r)).abs() > tol {
            return AxiomCheck::Violated(format!(
                "player {i}: φ(v+w) = {s} but φ(v)+φ(w) = {}",
                l + r
            ));
        }
    }
    AxiomCheck::Holds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_shapley;
    use crate::game::PeakDemandGame;

    #[test]
    fn exact_solver_satisfies_all_axioms() {
        let g = PeakDemandGame::new(vec![
            vec![4.0, 1.0],
            vec![1.0, 4.0],
            vec![0.0, 0.0], // null player
            vec![1.0, 4.0], // symmetric to player 1
        ]);
        let phi = exact_shapley(&g).unwrap();
        assert!(check_efficiency(&g, &phi, 1e-9).holds());
        assert!(check_null_player(&g, &phi, 2, 1e-9).holds());
        assert!(check_symmetry(&g, &phi, 1, 3, 1e-9).holds());
    }

    #[test]
    fn audit_agrees_with_free_functions_and_shares_the_cache() {
        let g = PeakDemandGame::new(vec![
            vec![4.0, 1.0],
            vec![1.0, 4.0],
            vec![0.0, 0.0], // null player
            vec![1.0, 4.0], // symmetric to player 1
        ]);
        let phi = exact_shapley(&g).unwrap();
        let audit = AxiomAudit::new(&g);
        assert_eq!(
            audit.efficiency(&phi, 1e-9),
            check_efficiency(&g, &phi, 1e-9)
        );
        assert_eq!(
            audit.null_player(&phi, 2, 1e-9),
            check_null_player(&g, &phi, 2, 1e-9)
        );
        let before = audit.stats();
        // The symmetry sweep revisits masks the null-player sweep already
        // valued; the shared cache serves those without touching the game.
        assert_eq!(
            audit.symmetry(&phi, 1, 3, 1e-9),
            check_symmetry(&g, &phi, 1, 3, 1e-9)
        );
        let after = audit.stats();
        assert!(
            after.hits > before.hits,
            "symmetry check should hit masks cached by earlier checks: {before:?} → {after:?}"
        );
        assert!(audit.hit_rate() > 0.0);
    }

    #[test]
    fn audit_detects_violations_like_the_free_functions() {
        let g = PeakDemandGame::new(vec![vec![4.0], vec![2.0]]);
        let audit = AxiomAudit::new(&g);
        assert!(!audit.efficiency(&[1.0, 1.0], 1e-9).holds());
        let phi = exact_shapley(&g).unwrap();
        assert!(!audit.null_player(&phi, 1, 1e-9).holds());
    }

    #[test]
    fn linearity_of_the_shapley_operator() {
        let v = PeakDemandGame::new(vec![vec![4.0, 1.0], vec![1.0, 4.0], vec![2.0, 3.0]]);
        let w = PeakDemandGame::new(vec![vec![1.0, 2.0], vec![5.0, 0.0], vec![0.5, 0.5]]);
        // Sum game evaluated via a wrapper.
        struct Sum(PeakDemandGame, PeakDemandGame);
        impl Game for Sum {
            fn player_count(&self) -> usize {
                self.0.player_count()
            }
            fn value(&self, c: &Coalition) -> f64 {
                self.0.value(c) + self.1.value(c)
            }
        }
        let sum = Sum(v.clone(), w.clone());
        let phi_sum = exact_shapley(&sum).unwrap();
        let phi_v = exact_shapley(&v).unwrap();
        let phi_w = exact_shapley(&w).unwrap();
        assert!(check_linearity(&phi_sum, &phi_v, &phi_w, 1e-9).holds());
    }

    #[test]
    fn violations_are_reported() {
        let g = PeakDemandGame::new(vec![vec![4.0], vec![2.0]]);
        let bad = vec![1.0, 1.0];
        assert!(!check_efficiency(&g, &bad, 1e-9).holds());
        let msg = match check_efficiency(&g, &bad, 1e-9) {
            AxiomCheck::Violated(m) => m,
            AxiomCheck::Holds => unreachable!(),
        };
        assert!(msg.contains("v(N)"));
    }

    #[test]
    fn non_null_player_premise_is_detected() {
        let g = PeakDemandGame::new(vec![vec![4.0], vec![2.0]]);
        let phi = exact_shapley(&g).unwrap();
        assert!(!check_null_player(&g, &phi, 1, 1e-9).holds());
    }
}
