//! The theoretical limits of Temporal Shapley (paper Section 5.1): the
//! *unit resource-time approximation* and its over-attribution of
//! long-running workloads — plus the discounting fix the paper leaves to
//! future work.
//!
//! Setup (the paper's): `n` workloads over `m` time intervals. `k`
//! short-lived workloads fit entirely inside interval 1; the other
//! `n − k` run for the whole horizon. Within interval 1 every workload
//! has equal demand (normalized total 1); intervals `2..m` carry only the
//! long-running workloads at aggregate demand `p ≪ 1`.
//!
//! Temporal Shapley weights the intervals `φ₁ = 1 − (m−1)p/m` and
//! `φ_j = p/m`; the later intervals' carbon is split among *fewer*
//! workloads, so long-running workloads are charged extra — the paper's
//! `C·p·(m−1)/((n−k)·m)` term. Because the scenario has only two
//! equivalence classes, the **workload-level ground truth** Shapley value
//! is computable exactly in `O(n·m)` via hypergeometric prefix
//! compositions, so the distortion can be measured against the true fair
//! attribution rather than a heuristic baseline — and a billing discount
//! for long-running workloads can be solved for that removes it.

use serde::{Deserialize, Serialize};

use crate::temporal::peak_shapley;

/// How interval carbon is derived from the interval Shapley weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntensityConvention {
    /// Interval carbon ∝ `φ_j · q_j` — the production rule of the
    /// paper's Eq. 5 (`ȳ_i = φ_i / Σ φ_k q_k · C`, charged per
    /// resource-time).
    Eq5,
    /// Interval carbon ∝ `φ_j` alone — the convention the Section 5.1
    /// analysis uses (its printed formulas follow from this), which
    /// over-attributes long-running workloads more strongly.
    ProportionalToPhi,
}

/// The paper's analytical scenario.
///
/// # Example
///
/// ```
/// use fairco2_shapley::unit_time::{IntensityConvention, UnitTimeScenario};
///
/// let s = UnitTimeScenario {
///     workloads: 100,
///     short_lived: 90,
///     intervals: 12,
///     long_peak: 0.2,
///     total_carbon: 1000.0,
/// };
/// // Under the paper's convention long jobs are overcharged…
/// assert!(s.over_attribution(IntensityConvention::ProportionalToPhi) > 2.0);
/// // …and the solved discount removes the distortion.
/// let delta = s.equalizing_discount(IntensityConvention::ProportionalToPhi);
/// let fixed = s.temporal_attribution(IntensityConvention::ProportionalToPhi, delta);
/// let truth = s.ground_truth();
/// assert!((fixed.long_each / truth.long_each - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitTimeScenario {
    /// Total workloads `n`.
    pub workloads: usize,
    /// Short-lived workloads `k` (`k < n`).
    pub short_lived: usize,
    /// Time intervals `m ≥ 2`.
    pub intervals: usize,
    /// Aggregate demand of the long-running workloads in intervals
    /// `2..m`, relative to interval 1's unit peak (`0 < p < 1`).
    pub long_peak: f64,
    /// Embodied carbon to attribute over the horizon (gCO₂e).
    pub total_carbon: f64,
}

/// Per-class attribution outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassAttribution {
    /// Carbon attributed to each short-lived workload (gCO₂e).
    pub short_each: f64,
    /// Carbon attributed to each long-running workload (gCO₂e).
    pub long_each: f64,
}

impl UnitTimeScenario {
    fn validate(&self) {
        assert!(self.workloads >= 2, "need at least two workloads");
        assert!(
            self.short_lived >= 1 && self.short_lived < self.workloads,
            "short-lived count must be in 1..n"
        );
        assert!(self.intervals >= 2, "need at least two intervals");
        assert!(
            self.long_peak > 0.0 && self.long_peak < 1.0,
            "long-interval peak must be in (0, 1)"
        );
        assert!(self.total_carbon > 0.0, "carbon must be positive");
    }

    /// Interval Shapley weights `φ` via the peak game: interval 1 has
    /// unit peak, intervals `2..m` peak `p`.
    pub fn interval_weights(&self) -> Vec<f64> {
        self.validate();
        let mut peaks = vec![self.long_peak; self.intervals];
        peaks[0] = 1.0;
        peak_shapley(&peaks)
    }

    /// Temporal Shapley attribution under a convention, with an optional
    /// billing *discount* `δ ∈ [0, 1)` applied to long-running workloads
    /// inside shared intervals (`δ = 0` reproduces the paper's analysis).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    pub fn temporal_attribution(
        &self,
        convention: IntensityConvention,
        discount: f64,
    ) -> ClassAttribution {
        self.validate();
        assert!((0.0..1.0).contains(&discount), "discount must be in [0, 1)");
        let phi = self.interval_weights();
        let k = self.short_lived as f64;
        let long = (self.workloads - self.short_lived) as f64;

        let weights: Vec<f64> = match convention {
            IntensityConvention::Eq5 => {
                // q₁ = 1 (unit demand × unit time), q_j = p.
                phi.iter()
                    .enumerate()
                    .map(|(j, f)| f * if j == 0 { 1.0 } else { self.long_peak })
                    .collect()
            }
            IntensityConvention::ProportionalToPhi => phi,
        };
        let denom: f64 = weights.iter().sum();
        let carbon: Vec<f64> = weights
            .iter()
            .map(|w| self.total_carbon * w / denom)
            .collect();

        // Nominal split: interval 1 equally across everyone; later
        // intervals across the long-running jobs only.
        let n = k + long;
        let short_nominal = carbon[0] / n;
        let later: f64 = carbon[1..].iter().sum();
        let long_nominal = carbon[0] / n + later / long;
        // Discount: long-running jobs are rebated a fraction δ of their
        // nominal bill; the shortfall is redistributed equally (every
        // workload shares interval 1 equally), preserving efficiency.
        let shortfall = long * discount * long_nominal;
        let short_each = short_nominal + shortfall / n;
        let long_each = (1.0 - discount) * long_nominal + shortfall / n;
        ClassAttribution {
            short_each,
            long_each,
        }
    }

    /// The paper's closed-form shares (Section 5.1, the
    /// [`IntensityConvention::ProportionalToPhi`] convention):
    /// short ∝ `(C/n)·[1 − (m−1)p/m]`, long adds
    /// `C·p·(m−1)/((n−k)·m)`.
    pub fn paper_formula(&self) -> ClassAttribution {
        self.validate();
        let n = self.workloads as f64;
        let k = self.short_lived as f64;
        let m = self.intervals as f64;
        let p = self.long_peak;
        let short_each = self.total_carbon / n * (1.0 - (m - 1.0) / m * p);
        let long_each = short_each + self.total_carbon * p * (m - 1.0) / ((n - k) * m);
        ClassAttribution {
            short_each,
            long_each,
        }
    }

    /// The exact **workload-level** ground truth: the Shapley value of
    /// the peak game where every workload is a player, computed by class
    /// symmetry with hypergeometric prefix compositions in `O(n²)`.
    ///
    /// Coalition value: `v(σ, λ) = max((σ+λ)/n, p·λ/(n−k))` for `σ`
    /// short and `λ` long members (interval-1 demand is `1/n` per
    /// workload; later demand `p/(n−k)` per long workload).
    pub fn ground_truth(&self) -> ClassAttribution {
        self.validate();
        let n = self.workloads;
        let k = self.short_lived;
        let v = |sigma: usize, lambda: usize| -> f64 {
            let interval1 = (sigma + lambda) as f64 / n as f64;
            let later = self.long_peak * lambda as f64 / (n - k) as f64;
            interval1.max(later)
        };
        // φ_class = (1/n) Σ_s E_{s-subset of others}[Δ], composition of
        // the subset hypergeometric in (#short others, #long others).
        let phi_for = |short_player: bool| -> f64 {
            let (s_others, l_others) = if short_player {
                (k - 1, n - k)
            } else {
                (k, n - k - 1)
            };
            let mut acc = 0.0;
            for s in 0..n {
                // Hypergeometric over λ = #long among the s predecessors.
                let l_min = s.saturating_sub(s_others);
                let l_max = s.min(l_others);
                // P(λ = l_min), then recurrence.
                let mut prob = hyper_start(l_others, s_others, s, l_min);
                let mut expect = 0.0;
                for l in l_min..=l_max {
                    let sigma = s - l;
                    let delta = if short_player {
                        v(sigma + 1, l) - v(sigma, l)
                    } else {
                        v(sigma, l + 1) - v(sigma, l)
                    };
                    expect += prob * delta;
                    // P(l+1)/P(l) = (L−l)(s−l) / ((l+1)(S−s+l+1))
                    if l < l_max {
                        prob *= (l_others - l) as f64 * (s - l) as f64
                            / ((l + 1) as f64 * (s_others + l + 1 - s) as f64);
                    }
                }
                acc += expect;
            }
            acc / n as f64
        };
        let phi_short = phi_for(true);
        let phi_long = phi_for(false);
        // Efficiency: total φ equals v(N) = 1; scale to the carbon pool.
        ClassAttribution {
            short_each: self.total_carbon * phi_short,
            long_each: self.total_carbon * phi_long,
        }
    }

    /// Over-attribution of long-running workloads by Temporal Shapley,
    /// relative to the exact ground truth (`1.0` = fair, `> 1` =
    /// overcharged — the paper's finding).
    pub fn over_attribution(&self, convention: IntensityConvention) -> f64 {
        let temporal = self.temporal_attribution(convention, 0.0);
        let truth = self.ground_truth();
        temporal.long_each / truth.long_each
    }

    /// The billing discount that aligns long-running workloads' temporal
    /// attribution with the ground truth, found by bisection (the
    /// paper's suggested future-work mitigation, made concrete).
    pub fn equalizing_discount(&self, convention: IntensityConvention) -> f64 {
        self.validate();
        let truth = self.ground_truth();
        let mut lo = 0.0f64;
        let mut hi = 1.0 - 1e-9;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            let att = self.temporal_attribution(convention, mid);
            if att.long_each > truth.long_each {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// `P(λ = l)` for a hypergeometric draw of `s` from `l_others` long and
/// `s_others` short, evaluated at the smallest feasible `l` by a
/// numerically stable product.
fn hyper_start(l_others: usize, s_others: usize, s: usize, l: usize) -> f64 {
    // P = C(L, l)·C(S, s−l) / C(L+S, s), computed in log space.
    let ln_choose = |n: usize, k: usize| -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        let mut acc = 0.0;
        for i in 0..k {
            acc += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
        }
        acc
    };
    (ln_choose(l_others, l) + ln_choose(s_others, s - l) - ln_choose(l_others + s_others, s)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_shapley;
    use crate::game::PeakDemandGame;

    fn scenario() -> UnitTimeScenario {
        UnitTimeScenario {
            workloads: 100,
            short_lived: 90,
            intervals: 12,
            long_peak: 0.2,
            total_carbon: 1000.0,
        }
    }

    #[test]
    fn interval_weights_match_the_paper() {
        let s = scenario();
        let phi = s.interval_weights();
        let m = s.intervals as f64;
        let p = s.long_peak;
        assert!((phi[0] - (1.0 - (m - 1.0) / m * p)).abs() < 1e-12);
        for &f in &phi[1..] {
            assert!((f - p / m).abs() < 1e-12);
        }
    }

    #[test]
    fn phi_convention_matches_the_paper_formula() {
        let s = scenario();
        let got = s.temporal_attribution(IntensityConvention::ProportionalToPhi, 0.0);
        let paper = s.paper_formula();
        // Identical ratios (the paper drops the global normalization).
        let got_ratio = got.long_each / got.short_each;
        let paper_ratio = paper.long_each / paper.short_each;
        assert!(
            (got_ratio - paper_ratio).abs() < 1e-9,
            "{got_ratio} vs {paper_ratio}"
        );
    }

    #[test]
    fn temporal_attribution_is_efficient() {
        let s = scenario();
        for conv in [
            IntensityConvention::Eq5,
            IntensityConvention::ProportionalToPhi,
        ] {
            let a = s.temporal_attribution(conv, 0.0);
            let total = a.short_each * s.short_lived as f64
                + a.long_each * (s.workloads - s.short_lived) as f64;
            assert!((total - s.total_carbon).abs() < 1e-6, "{conv:?}");
        }
    }

    #[test]
    fn ground_truth_matches_enumeration_on_small_instances() {
        let s = UnitTimeScenario {
            workloads: 10,
            short_lived: 7,
            intervals: 4,
            long_peak: 0.3,
            total_carbon: 100.0,
        };
        let truth = s.ground_truth();
        // Build the explicit per-workload peak game and enumerate.
        let n = s.workloads;
        let k = s.short_lived;
        let mut demand = Vec::new();
        for _ in 0..k {
            let mut row = vec![0.0; s.intervals];
            row[0] = 1.0 / n as f64;
            demand.push(row);
        }
        for _ in k..n {
            let mut row = vec![s.long_peak / (n - k) as f64; s.intervals];
            row[0] = 1.0 / n as f64;
            demand.push(row);
        }
        let phi = exact_shapley(&PeakDemandGame::new(demand)).unwrap();
        let exact_short = 100.0 * phi[0];
        let exact_long = 100.0 * phi[n - 1];
        assert!(
            (truth.short_each - exact_short).abs() < 1e-9,
            "{} vs {exact_short}",
            truth.short_each
        );
        assert!(
            (truth.long_each - exact_long).abs() < 1e-9,
            "{} vs {exact_long}",
            truth.long_each
        );
    }

    #[test]
    fn ground_truth_is_efficient() {
        let s = scenario();
        let t = s.ground_truth();
        let total = t.short_each * s.short_lived as f64
            + t.long_each * (s.workloads - s.short_lived) as f64;
        assert!((total - s.total_carbon).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn long_jobs_are_overcharged_under_the_phi_convention() {
        // The paper's claim, measured against the true ground truth.
        let s = scenario();
        let over = s.over_attribution(IntensityConvention::ProportionalToPhi);
        assert!(over > 1.2, "over-attribution {over}");
        // The distortion grows as short-lived workloads dominate (K → N).
        let fewer_long = UnitTimeScenario {
            short_lived: 96,
            ..scenario()
        };
        let over_more = fewer_long.over_attribution(IntensityConvention::ProportionalToPhi);
        assert!(over_more > over, "{over_more} vs {over}");
    }

    #[test]
    fn eq5_convention_softens_the_distortion() {
        let s = scenario();
        let phi_conv = s.over_attribution(IntensityConvention::ProportionalToPhi);
        let eq5 = s.over_attribution(IntensityConvention::Eq5);
        assert!(
            (eq5 - 1.0).abs() < (phi_conv - 1.0).abs(),
            "eq5 {eq5} phi {phi_conv}"
        );
    }

    #[test]
    fn equalizing_discount_restores_ground_truth_for_long_jobs() {
        let s = scenario();
        let conv = IntensityConvention::ProportionalToPhi;
        let delta = s.equalizing_discount(conv);
        assert!(delta > 0.0 && delta < 1.0, "delta {delta}");
        let fixed = s.temporal_attribution(conv, delta);
        let truth = s.ground_truth();
        assert!(
            (fixed.long_each / truth.long_each - 1.0).abs() < 1e-6,
            "ratio {}",
            fixed.long_each / truth.long_each
        );
        // Efficiency survives discounting.
        let total = fixed.short_each * s.short_lived as f64
            + fixed.long_each * (s.workloads - s.short_lived) as f64;
        assert!((total - s.total_carbon).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn out_of_range_peak_panics() {
        let _ = UnitTimeScenario {
            long_peak: 1.5,
            ..scenario()
        }
        .interval_weights();
    }
}
