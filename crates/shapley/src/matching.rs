//! Exact polynomial-time Shapley values for *pairwise matching games* —
//! the structure of the paper's colocation scenarios.
//!
//! A scenario is a set of workloads, each occupying half a node; the
//! scheduler pairs them onto nodes. The paper's ground truth "permutes
//! across all possible colocations", i.e. the characteristic function of
//! a coalition `S` is the **expected** total carbon of running `S` under a
//! uniformly random perfect matching of its members (with one member left
//! isolated when `|S|` is odd).
//!
//! Writing `A_i` for workload `i`'s cost when isolated on a node and
//! `D_{ij}` for the *total* cost of a node colocating `i` and `j`, the
//! matching probabilities give the closed form
//!
//! ```text
//! v(S) = 1/(m−1) · W(S)                     m = |S| even
//! v(S) = 1/m · (W(S) + A(S))                m odd
//! ```
//!
//! with `W(S) = Σ_{i<j∈S} D_{ij}` and `A(S) = Σ_{i∈S} A_i` (in a uniform
//! random matching each pair `{i,j}` co-occurs with probability `1/(m−1)`
//! for even `m` and `1/m` for odd `m`, and each player is the isolated
//! one with probability `1/m`).
//!
//! Because `v` is a linear function of subset sums, the expectation of a
//! player's marginal contribution over uniformly random coalitions of each
//! size has a closed form, and the **exact** Shapley value is computable
//! in `O(n²)` — no enumeration, no sampling. This is what lets the
//! reproduction use true ground truth for 100-workload colocation sets
//! where `2¹⁰⁰` enumeration is unthinkable.

use crate::coalition::Coalition;
use crate::exact::DeltaGame;
use crate::game::Game;

/// A pairwise matching game: per-player isolated costs plus a symmetric
/// pairwise cost matrix.
///
/// # Example
///
/// ```
/// use fairco2_shapley::MatchingGame;
///
/// // Two tenants: alone they cost 3 and 2; sharing a node costs 4.
/// let game = MatchingGame::new(
///     vec![3.0, 2.0],
///     vec![vec![0.0, 4.0], vec![4.0, 0.0]],
/// );
/// let phi = game.shapley();
/// // φ₀ = ½(A₀ + D − A₁) = 2.5, φ₁ = 1.5 — and they sum to v({0,1}) = 4.
/// assert!((phi[0] - 2.5).abs() < 1e-12);
/// assert!((phi[0] + phi[1] - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct MatchingGame {
    isolated: Vec<f64>,
    pair: Vec<Vec<f64>>,
}

impl MatchingGame {
    /// Builds the game from isolated costs `A_i` and the symmetric matrix
    /// of pair costs `D_{ij}` (total cost of a node running both `i` and
    /// `j`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square of matching dimension, not
    /// symmetric, or has a non-zero diagonal.
    pub fn new(isolated: Vec<f64>, pair: Vec<Vec<f64>>) -> Self {
        let n = isolated.len();
        assert!(n > 0, "game needs at least one player");
        assert_eq!(pair.len(), n, "pair matrix must be n×n");
        for (i, row) in pair.iter().enumerate() {
            assert_eq!(row.len(), n, "pair matrix must be n×n");
            assert_eq!(row[i], 0.0, "pair matrix diagonal must be zero");
            for (j, &v) in row.iter().enumerate() {
                assert!(
                    (v - pair[j][i]).abs() < 1e-9,
                    "pair matrix must be symmetric at ({i}, {j})"
                );
            }
        }
        Self { isolated, pair }
    }

    /// Isolated cost of player `i`.
    pub fn isolated_cost(&self, i: usize) -> f64 {
        self.isolated[i]
    }

    /// Pair cost of players `i` and `j`.
    pub fn pair_cost(&self, i: usize, j: usize) -> f64 {
        self.pair[i][j]
    }

    /// Matching-probability coefficients `(p_m, q_m)` such that
    /// `v = p·W + q·A` for a coalition of size `m`.
    fn coefficients(m: usize) -> (f64, f64) {
        match m {
            0 => (0.0, 0.0),
            m if m % 2 == 0 => (1.0 / (m as f64 - 1.0), 0.0),
            m => (1.0 / m as f64, 1.0 / m as f64),
        }
    }

    /// Exact Shapley values in `O(n²)`.
    ///
    /// Derivation: for player `i` and coalition size `s`, the expectation
    /// of `v(S∪{i}) − v(S)` over uniformly random `S ⊆ N∖{i}` of size `s`
    /// needs only `E[W(S)]`, `E[Σ_{j∈S} D_{ij}]`, and `E[A(S)]`, each a
    /// hypergeometric scaling of full-population sums.
    pub fn shapley(&self) -> Vec<f64> {
        let n = self.isolated.len();
        let mean_pair: Vec<f64> = (0..n)
            .map(|i| {
                if n == 1 {
                    0.0
                } else {
                    self.pair[i].iter().sum::<f64>() / (n as f64 - 1.0)
                }
            })
            .collect();
        shapley_from_moments(&self.isolated, &mean_pair)
    }
}

/// Exact matching-game Shapley values from *first moments only*: each
/// player's isolated cost `A_i` and its mean pair cost
/// `D̄_i = E_j[D_{ij}]` over the other players.
///
/// The exact `O(n²)` solver above only ever touches the pair matrix
/// through row sums, so the Shapley value is a function of these moments
/// — which is precisely what makes Fair-CO₂'s interference adjustment
/// possible: the moments can be *estimated from historical colocation
/// telemetry* and plugged in here, yielding the game's exact value at the
/// estimated moments in `O(n)` per player.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn shapley_from_moments(isolated: &[f64], mean_pair_cost: &[f64]) -> Vec<f64> {
    let n = isolated.len();
    assert_eq!(n, mean_pair_cost.len(), "moment slices must align");
    assert!(n > 0, "at least one player is required");
    if n == 1 {
        return vec![isolated[0]];
    }
    let row_sum: Vec<f64> = mean_pair_cost
        .iter()
        .map(|d| d * (n as f64 - 1.0))
        .collect();
    let w_total: f64 = row_sum.iter().sum::<f64>() / 2.0;
    let a_total: f64 = isolated.iter().sum();

    let mut phi = vec![0.0f64; n];
    for (i, phi_i) in phi.iter_mut().enumerate() {
        let d_i = row_sum[i];
        let w_rest = w_total - d_i; // W(N∖{i})
        let a_rest = a_total - isolated[i];
        let mut acc = 0.0;
        for s in 0..n {
            let sf = s as f64;
            // E[W(S)] over s-subsets of the n−1 other players.
            let e_w = if s >= 2 {
                w_rest * sf * (sf - 1.0) / ((n as f64 - 1.0) * (n as f64 - 2.0))
            } else {
                0.0
            };
            let e_r = d_i * sf / (n as f64 - 1.0);
            let e_a = a_rest * sf / (n as f64 - 1.0);
            let (p_new, q_new) = MatchingGame::coefficients(s + 1);
            let (p_old, q_old) = MatchingGame::coefficients(s);
            acc += p_new * (e_w + e_r) + q_new * (e_a + isolated[i]) - p_old * e_w - q_old * e_a;
        }
        *phi_i = acc / n as f64;
    }
    phi
}

impl Game for MatchingGame {
    fn player_count(&self) -> usize {
        self.isolated.len()
    }

    fn value(&self, coalition: &Coalition) -> f64 {
        let members: Vec<usize> = coalition.iter().collect();
        let m = members.len();
        let (p, q) = Self::coefficients(m);
        let mut w = 0.0;
        for (a, &i) in members.iter().enumerate() {
            for &j in &members[a + 1..] {
                w += self.pair[i][j];
            }
        }
        let a_sum: f64 = members.iter().map(|&i| self.isolated[i]).sum();
        p * w + q * a_sum
    }
}

impl DeltaGame for MatchingGame {
    /// `(members, m, W, A)` of the current coalition.
    type State = (Vec<bool>, usize, f64, f64);

    fn initial_state(&self) -> Self::State {
        (vec![false; self.isolated.len()], 0, 0.0, 0.0)
    }

    fn toggle(&self, (members, m, w, a): &mut Self::State, player: usize) -> f64 {
        let cross: f64 = members
            .iter()
            .enumerate()
            .filter(|&(j, &inside)| inside && j != player)
            .map(|(j, _)| self.pair[player][j])
            .sum();
        if members[player] {
            members[player] = false;
            *m -= 1;
            *w -= cross;
            *a -= self.isolated[player];
        } else {
            members[player] = true;
            *m += 1;
            *w += cross;
            *a += self.isolated[player];
        }
        let (p, q) = Self::coefficients(*m);
        p * *w + q * *a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_shapley, exact_shapley_fast};

    fn demo(n: usize, seed: u64) -> MatchingGame {
        // Small deterministic pseudo-random instance.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let isolated: Vec<f64> = (0..n).map(|_| 1.0 + next()).collect();
        let mut pair = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                // Colocation is cheaper than two isolated nodes but dearer
                // than one: realistic amortization + interference.
                let cost = 0.6 * (isolated[i] + isolated[j]) * (1.0 + 0.4 * next());
                pair[i][j] = cost;
                pair[j][i] = cost;
            }
        }
        MatchingGame::new(isolated, pair)
    }

    #[test]
    fn two_players_match_hand_computation() {
        let g = MatchingGame::new(vec![3.0, 2.0], vec![vec![0.0, 4.0], vec![4.0, 0.0]]);
        let phi = g.shapley();
        // φ_0 = ½(A_0 + D − A_1) = ½(3 + 4 − 2) = 2.5; φ_1 = 1.5.
        assert!((phi[0] - 2.5).abs() < 1e-12);
        assert!((phi[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn closed_form_matches_enumeration() {
        for n in 1..=9 {
            let g = demo(n, n as u64);
            let analytic = g.shapley();
            let enumerated = exact_shapley(&g).unwrap();
            for (a, e) in analytic.iter().zip(&enumerated) {
                assert!((a - e).abs() < 1e-9, "n={n}: analytic {a} vs exact {e}");
            }
        }
    }

    #[test]
    fn delta_game_matches_direct_value() {
        let g = demo(7, 3);
        let fast = exact_shapley_fast(&g).unwrap();
        let plain = exact_shapley(&g).unwrap();
        for (a, b) in fast.iter().zip(&plain) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn efficiency_holds_at_scale() {
        let g = demo(60, 9);
        let phi = g.shapley();
        let grand = g.value(&Coalition::grand(60));
        let total: f64 = phi.iter().sum();
        assert!(
            (total - grand).abs() < 1e-6 * grand.abs().max(1.0),
            "Σφ={total} v(N)={grand}"
        );
    }

    #[test]
    fn symmetric_players_get_equal_shares() {
        // Three identical players.
        let iso = vec![2.0; 3];
        let pair = vec![
            vec![0.0, 3.0, 3.0],
            vec![3.0, 0.0, 3.0],
            vec![3.0, 3.0, 0.0],
        ];
        let phi = MatchingGame::new(iso, pair).shapley();
        assert!((phi[0] - phi[1]).abs() < 1e-12);
        assert!((phi[1] - phi[2]).abs() < 1e-12);
    }

    #[test]
    fn singleton_game_is_its_isolated_cost() {
        let g = MatchingGame::new(vec![5.5], vec![vec![0.0]]);
        assert_eq!(g.shapley(), vec![5.5]);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_is_rejected() {
        let _ = MatchingGame::new(vec![1.0, 1.0], vec![vec![0.0, 2.0], vec![3.0, 0.0]]);
    }
}
