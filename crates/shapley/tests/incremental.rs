//! The streaming engine's contract: every closed window is
//! **bit-identical** to the frozen cascade on the same slice, and the
//! operation count is amortized `O(levels)` per sample — pinned by an
//! exact operation counter, not timing.

use fairco2_shapley::incremental::IncrementalCascade;
use fairco2_shapley::temporal::TemporalShapley;
use fairco2_trace::series::TimeSeries;
use proptest::prelude::*;

/// Deterministic pseudo-random demand: quantized to eighths so peak ties
/// (the hard case for max-fold ordering) occur constantly, with exact
/// dyadic fractions so float error cannot mask ordering bugs.
fn demand(global_index: u64, seed: u64) -> f64 {
    let mut x = global_index
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seed);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 32;
    ((x >> 16) % 16) as f64 / 8.0
}

fn carbon_for_window(w: u64) -> f64 {
    1000.0 + 125.0 * w as f64
}

/// Streams `windows` windows through the incremental engine and checks
/// each against `TemporalShapley::attribute` on the same slice, bit for
/// bit.
fn assert_stream_matches_frozen(splits: &[usize], leaf_samples: usize, windows: u64, seed: u64) {
    let step = 300;
    let mut engine = IncrementalCascade::new(splits, leaf_samples, step).unwrap();
    let frozen = TemporalShapley::new(splits.to_vec());
    let window_samples = engine.window_samples();

    for w in 0..windows {
        let mut slice = Vec::with_capacity(window_samples);
        for i in 0..window_samples {
            let value = demand(w * window_samples as u64 + i as u64, seed);
            slice.push(value);
            let closed = engine.push(value);
            assert_eq!(closed, i + 1 == window_samples, "window fill bookkeeping");
        }
        let total_carbon = carbon_for_window(w);
        let streamed = engine.close_window(total_carbon);

        let series = TimeSeries::from_values(0, step, slice).unwrap();
        let reference = frozen.attribute(&series, total_carbon).unwrap();

        assert_eq!(
            streamed.carbon_prefix.len(),
            reference.carbon_prefix().len(),
            "prefix length, splits {splits:?} window {w}"
        );
        for (i, (s, r)) in streamed
            .carbon_prefix
            .iter()
            .zip(reference.carbon_prefix())
            .enumerate()
        {
            assert_eq!(
                s.to_bits(),
                r.to_bits(),
                "carbon_prefix[{i}] splits {splits:?} window {w}: {s} vs {r}"
            );
        }
        for (i, (s, r)) in streamed
            .leaf_intensity
            .iter()
            .zip(reference.leaf_intensity().values())
            .enumerate()
        {
            assert_eq!(
                s.to_bits(),
                r.to_bits(),
                "leaf_intensity[{i}] splits {splits:?} window {w}: {s} vs {r}"
            );
        }
        assert_eq!(
            streamed.stranded_carbon.to_bits(),
            reference.stranded_carbon().to_bits(),
            "stranded carbon, splits {splits:?} window {w}"
        );
        assert_eq!(streamed.total_carbon, total_carbon);
    }
    assert_eq!(engine.windows_closed(), windows);
}

#[test]
fn streamed_windows_match_the_frozen_cascade_bit_for_bit() {
    // Shapes cover: root-only, one split, uneven two-level, deep
    // hierarchy, and wide fan-out (ties in wide peak games).
    assert_stream_matches_frozen(&[], 5, 4, 1);
    assert_stream_matches_frozen(&[2], 3, 4, 2);
    assert_stream_matches_frozen(&[3, 2], 2, 5, 3);
    assert_stream_matches_frozen(&[2, 3, 2], 2, 3, 4);
    assert_stream_matches_frozen(&[7], 4, 3, 5);
    assert_stream_matches_frozen(&[2, 2, 2, 2], 1, 3, 6);
}

#[test]
fn zero_demand_windows_strand_identically() {
    let splits = [3, 2];
    let step = 300;
    let mut engine = IncrementalCascade::new(&splits, 2, step).unwrap();
    let frozen = TemporalShapley::new(splits.to_vec());
    let n = engine.window_samples();

    // A window that is entirely zero demand, then one with zero-demand
    // leaf periods embedded in live ones.
    let windows = [vec![0.0; n], {
        let mut v = vec![0.0; n];
        v[0] = 2.0;
        v[n - 1] = 4.0;
        v
    }];
    for (w, slice) in windows.iter().enumerate() {
        for &v in slice {
            engine.push(v);
        }
        let streamed = engine.close_window(900.0);
        let series = TimeSeries::from_values(0, step, slice.clone()).unwrap();
        let reference = frozen.attribute(&series, 900.0).unwrap();
        assert_eq!(
            streamed.stranded_carbon.to_bits(),
            reference.stranded_carbon().to_bits(),
            "window {w}"
        );
        for (s, r) in streamed.carbon_prefix.iter().zip(reference.carbon_prefix()) {
            assert_eq!(s.to_bits(), r.to_bits(), "window {w}");
        }
    }
}

/// The complexity pin. Wall-clock proves nothing on shared CI machines;
/// the engine instead counts every primitive float operation. Amortized
/// O(log n): after `k` windows the counter is exactly `k ·` the
/// one-window cost — per-sample work is a constant set by the hierarchy
/// shape, independent of how much history the stream has ingested.
#[test]
fn operation_count_is_amortized_constant_per_sample() {
    let splits = [4, 3, 2];
    let leaf_samples = 5;
    let mut engine = IncrementalCascade::new(&splits, leaf_samples, 300).unwrap();
    let n = engine.window_samples() as u64;

    let mut per_window = Vec::new();
    let mut last = 0u64;
    for w in 0..6u64 {
        for i in 0..n {
            engine.push(demand(w * n + i, 9));
        }
        engine.close_window(carbon_for_window(w));
        per_window.push(engine.ops() - last);
        last = engine.ops();
    }
    // Every window costs exactly the same number of operations…
    for (w, &ops) in per_window.iter().enumerate() {
        assert_eq!(ops, per_window[0], "window {w} cost drifted");
    }
    // …so the per-sample amortized cost never grows with stream length.
    assert_eq!(engine.ops(), per_window[0] * 6);

    // And that constant is O(levels), not O(window): generously bounded
    // by a small multiple of levels plus the per-window close. Under the
    // lane canonical a plain push is 2 ops and each leaf boundary pays a
    // ≤ 3·levels + 6 collapse burst (see the push-cost test below), so
    // n·(3·levels + 8) over-covers the push side. With levels = 4 and
    // n = 120 this asserts ~O(log n) per sample, far below the O(n) a
    // rescan-per-sample implementation would show.
    let levels = (splits.len() + 1) as u64;
    let close_cost: u64 = {
        // split passes: per parent m·log2(m)+3m ops, plus the leaf fill
        // and blocked prefix (counted as 3 ops per sample).
        let mut cost = 3 * n + 1;
        let mut parents = 1u64;
        for &m in &splits {
            let m64 = m as u64;
            cost += parents * (m64 * u64::from(m.ilog2().max(1)) + 3 * m64);
            parents *= m64;
        }
        cost
    };
    assert!(
        per_window[0] <= n * (3 * levels + 8) + close_cost,
        "per-window ops {} exceed the O(levels)-per-sample budget {}",
        per_window[0],
        n * (3 * levels + 8) + close_cost
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random hierarchy shape, leaf size, stream length, and demand
    /// seed: the streamed windows always match the frozen cascade bit
    /// for bit.
    #[test]
    fn random_streams_match_the_frozen_cascade(
        shape in 0usize..6,
        leaf_samples in 1usize..5,
        windows in 1u64..4,
        seed in 0u64..(1 << 48),
    ) {
        const SHAPES: [&[usize]; 6] = [&[], &[2], &[3], &[2, 2], &[3, 2], &[2, 4]];
        assert_stream_matches_frozen(SHAPES[shape], leaf_samples, windows, seed);
    }
}

/// Pushing one sample performs O(levels) work in the worst case — the
/// tail repair never walks more than the hierarchy height.
///
/// Re-derived for the lane canonical (this bound was `3·levels + 1`
/// when every push replayed `levels` scalar adds): a plain push is now
/// 2 ops (one lane add, one lane max); the worst push also closes a
/// leaf, paying the lane collapse — `2·(CANONICAL_LANES − 1) = 6` ops
/// for the two pair trees — plus ≤ `levels − 2` tail-repair maxes,
/// `levels` leaf-sum adds, and ≤ `levels` integral closes:
/// `2 + 6 + (levels − 2) + 2·levels = 3·levels + 6`.
#[test]
fn single_push_cost_is_bounded_by_the_hierarchy_height() {
    let splits = [2, 2, 2];
    let mut engine = IncrementalCascade::new(&splits, 2, 300).unwrap();
    let levels = (splits.len() + 1) as u64;
    let n = engine.window_samples();
    let mut max_push = 0;
    for i in 0..n {
        let before = engine.ops();
        engine.push(1.0 + i as f64);
        max_push = max_push.max(engine.ops() - before);
    }
    assert!(
        max_push <= 3 * levels + 6,
        "one push cost {max_push} exceeds 3·levels+6 = {}",
        3 * levels + 6
    );
}
