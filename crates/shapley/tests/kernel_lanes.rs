//! Property pins for the lane-parallel kernels against their retained
//! scalar counterparts, at several lane counts / block lengths and at
//! the awkward data lengths (0, 1, K−1, K, K+1, non-multiples of K).
//!
//! Two kinds of pin, matching the kernels' documented contracts:
//!
//! * **exact-bit** where the lane split preserves operand selection or
//!   operand order — leaf peaks (`max` is associative and returns one of
//!   its operands), the blocked prefix within one block, and the paired
//!   permutation replay (interleaving two chains never reorders either
//!   chain's arithmetic);
//! * **≤ O(n·ε) relative closeness** where the split reassociates a sum
//!   — per-period lane sums versus the serial chain, and the blocked
//!   prefix across block boundaries (one `local + carry` reassociation
//!   per element). The asserted tolerance of `1e-11` relative is ~two
//!   orders looser than the worst `n·ε ≈ 2e-13` bound at the lengths
//!   generated here, so the tests stay deterministic without masking a
//!   wrong-partition bug (any mis-assigned sample shifts a sum by a
//!   *relative* amount far above 1e-11 for the value ranges drawn).

use fairco2_shapley::game::{
    replay_marginals_into, replay_marginals_paired_into, EvalCounters, IncrementalGame,
    PeakDemandGame,
};
use fairco2_shapley::kernels::{
    hierarchy_bounds, level_sums_lanes, level_sums_scalar, prefix_blocked, prefix_scalar,
};
use proptest::prelude::*;

/// Demand values with mixed magnitudes and signs-of-error exposure:
/// dyadic quanta scaled across several decades so reassociation shows up
/// in the last ulps but any partition bug shows up at full magnitude.
fn demand_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        (0u32..4000u32, 0u32..3u32).prop_map(|(q, scale)| {
            let base = q as f64 / 8.0;
            base * [1.0, 1e3, 1e-3][scale as usize]
        }),
        len..=len,
    )
}

/// Awkward lengths around a lane count / block length `k`, plus
/// non-multiples.
fn awkward_lengths(k: usize) -> Vec<usize> {
    let mut lens = vec![0, 1, k.saturating_sub(1), k, k + 1, 2 * k + 3, 7 * k + 5];
    lens.dedup();
    lens
}

fn assert_close(label: &str, a: f64, b: f64) {
    let scale = a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
    assert!(
        (a - b).abs() <= 1e-11 * scale,
        "{label}: scalar {a} vs lane {b}"
    );
}

/// Runs both sweeps on one flat (root-only) leaf of every awkward length
/// and checks the pins. Exercised at K ∈ {2, 4, 8} below.
fn check_sweep_flat<const K: usize>(values: &[f64]) {
    let bounds = hierarchy_bounds(values.len(), &[]).unwrap();
    let step = 300.0;
    let (mut q_s, mut q_l) = (Vec::new(), Vec::new());
    let (mut peaks_s, mut peaks_l) = (Vec::new(), Vec::new());
    level_sums_scalar(values, step, &bounds, &mut q_s, &mut peaks_s);
    level_sums_lanes::<K>(values, step, &bounds, &mut q_l, &mut peaks_l);
    assert_eq!(q_s[0].len(), q_l[0].len());
    for (i, (s, l)) in q_s[0].iter().zip(&q_l[0]).enumerate() {
        assert_close(&format!("K={K} n={} q[{i}]", values.len()), *s, *l);
    }
    assert_eq!(peaks_s.len(), peaks_l.len());
    for (i, (s, l)) in peaks_s.iter().zip(&peaks_l).enumerate() {
        assert_eq!(
            s.to_bits(),
            l.to_bits(),
            "K={K} n={} peak[{i}]: {s} vs {l}",
            values.len()
        );
    }
}

/// Same pins on a two-level hierarchy whose uneven split puts leaves at
/// lengths both above and below `K` (the remainder rule gives earlier
/// leaves the extra samples).
fn check_sweep_split<const K: usize>(values: &[f64], parts: usize) {
    if values.len() < parts || parts == 0 {
        return;
    }
    let bounds = hierarchy_bounds(values.len(), &[parts]).unwrap();
    let step = 300.0;
    let (mut q_s, mut q_l) = (Vec::new(), Vec::new());
    let (mut peaks_s, mut peaks_l) = (Vec::new(), Vec::new());
    level_sums_scalar(values, step, &bounds, &mut q_s, &mut peaks_s);
    level_sums_lanes::<K>(values, step, &bounds, &mut q_l, &mut peaks_l);
    for level in 0..2 {
        for (i, (s, l)) in q_s[level].iter().zip(&q_l[level]).enumerate() {
            assert_close(&format!("K={K} split={parts} q[{level}][{i}]"), *s, *l);
        }
    }
    for (i, (s, l)) in peaks_s.iter().zip(&peaks_l).enumerate() {
        assert_eq!(s.to_bits(), l.to_bits(), "K={K} split={parts} peak[{i}]");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn lane_sweep_matches_scalar_at_awkward_lengths(seed_len in 0usize..64) {
        for k in [2usize, 4, 8] {
            for n in awkward_lengths(k) {
                let n = n + seed_len % 3; // jitter off the exact boundary too
                let values: Vec<f64> = (0..n)
                    .map(|i| ((i * 37 + seed_len * 101) % 4001) as f64 / 8.0)
                    .collect();
                match k {
                    2 => check_sweep_flat::<2>(&values),
                    4 => check_sweep_flat::<4>(&values),
                    _ => check_sweep_flat::<8>(&values),
                }
            }
        }
    }

    #[test]
    fn lane_sweep_matches_scalar_on_random_hierarchies(
        values in demand_vec(97),
        parts in 1usize..12,
    ) {
        check_sweep_split::<2>(&values, parts);
        check_sweep_split::<4>(&values, parts);
        check_sweep_split::<8>(&values, parts);
    }

    #[test]
    fn blocked_prefix_is_bit_identical_within_one_block(
        values in demand_vec(16),
    ) {
        // n = 16 ≤ B for every B tried: a single block, no carry, and
        // the local chain IS the scalar chain.
        let step = 300.0;
        let (mut scalar, mut blocked) = (Vec::new(), Vec::new());
        prefix_scalar(&values, step, &mut scalar);
        for b in [16usize, 1024] {
            match b {
                16 => prefix_blocked::<16>(&values, step, &mut blocked),
                _ => prefix_blocked::<1024>(&values, step, &mut blocked),
            }
            prop_assert_eq!(scalar.len(), blocked.len());
            for (i, (s, l)) in scalar.iter().zip(&blocked).enumerate() {
                prop_assert_eq!(s.to_bits(), l.to_bits(), "B={} prefix[{}]", b, i);
            }
        }
    }

    #[test]
    fn blocked_prefix_stays_close_across_blocks(seed in 0u64..1000) {
        let step = 300.0;
        for b in [4usize, 16] {
            for n in awkward_lengths(b).into_iter().chain([3 * b + 7]) {
                let values: Vec<f64> = (0..n)
                    .map(|i| ((i as u64 * 31 + seed * 7) % 4001) as f64 / 8.0)
                    .collect();
                let (mut scalar, mut blocked) = (Vec::new(), Vec::new());
                prefix_scalar(&values, step, &mut scalar);
                match b {
                    4 => prefix_blocked::<4>(&values, step, &mut blocked),
                    _ => prefix_blocked::<16>(&values, step, &mut blocked),
                }
                prop_assert_eq!(scalar.len(), blocked.len());
                for (i, (s, l)) in scalar.iter().zip(&blocked).enumerate() {
                    let scale = s.abs().max(l.abs()).max(f64::MIN_POSITIVE);
                    prop_assert!(
                        (s - l).abs() <= 1e-11 * scale,
                        "B={} n={} prefix[{}]: {} vs {}", b, n, i, s, l
                    );
                    // Zero stays exactly zero: an all-zero prefix head
                    // must not pick up carry noise.
                    if *s == 0.0 {
                        prop_assert_eq!(l.to_bits(), 0.0f64.to_bits());
                    }
                }
            }
        }
    }

    /// The paired antithetic replay must be bit-identical to two
    /// sequential replays for any demand matrix and permutation — same
    /// marginals, same counter charges.
    #[test]
    fn paired_replay_is_exact_for_random_games(
        rows in prop::collection::vec(
            prop::collection::vec(0u32..32u32, 4..=4).prop_map(
                |r| r.into_iter().map(|v| v as f64 / 4.0).collect::<Vec<f64>>()
            ),
            2..7,
        ),
        perm_seed in 0u64..10_000,
    ) {
        let n = rows.len();
        let game = PeakDemandGame::new(rows);
        // A deterministic permutation from the seed (Fisher-Yates with a
        // tiny LCG keeps the test free of rand plumbing).
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = perm_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }

        let mut state_a = game.initial_state();
        let mut state_b = game.initial_state();
        let (mut fwd_seq, mut rev_seq) = (vec![0.0; n], vec![0.0; n]);
        let (mut fwd_pair, mut rev_pair) = (vec![0.0; n], vec![0.0; n]);

        let mut seq = EvalCounters::default();
        replay_marginals_into(&game, &order, &mut state_a, &mut fwd_seq, &mut seq);
        let reversed: Vec<usize> = order.iter().rev().copied().collect();
        replay_marginals_into(&game, &reversed, &mut state_a, &mut rev_seq, &mut seq);

        let mut pair = EvalCounters::default();
        replay_marginals_paired_into(
            &game, &order, &mut state_a, &mut state_b,
            &mut fwd_pair, &mut rev_pair, &mut pair,
        );
        for p in 0..n {
            prop_assert_eq!(fwd_seq[p].to_bits(), fwd_pair[p].to_bits(), "forward[{}]", p);
            prop_assert_eq!(rev_seq[p].to_bits(), rev_pair[p].to_bits(), "reverse[{}]", p);
        }
        prop_assert_eq!(seq.coalition_evals, pair.coalition_evals);
        prop_assert_eq!(seq.marginal_updates, pair.marginal_updates);
    }
}

/// Non-proptest edge pins: the empty signal and the single sample, at
/// every kernel parameter, with exact expectations.
#[test]
fn empty_and_singleton_signals_are_exact() {
    let step = 300.0;
    for values in [vec![], vec![2.5f64]] {
        let bounds = hierarchy_bounds(values.len(), &[]).unwrap();
        let (mut q_s, mut q_l) = (Vec::new(), Vec::new());
        let (mut peaks_s, mut peaks_l) = (Vec::new(), Vec::new());
        level_sums_scalar(&values, step, &bounds, &mut q_s, &mut peaks_s);
        level_sums_lanes::<4>(&values, step, &bounds, &mut q_l, &mut peaks_l);
        // One root period either way; empty → sum 0, peak −∞ on both.
        assert_eq!(q_s[0].len(), 1);
        assert_eq!(q_s[0][0].to_bits(), q_l[0][0].to_bits());
        assert_eq!(peaks_s[0].to_bits(), peaks_l[0].to_bits());

        let (mut p_s, mut p_l) = (Vec::new(), Vec::new());
        prefix_scalar(&values, step, &mut p_s);
        prefix_blocked::<4>(&values, step, &mut p_l);
        assert_eq!(p_s.len(), values.len() + 1);
        for (a, b) in p_s.iter().zip(&p_l) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
