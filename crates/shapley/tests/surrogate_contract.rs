//! Property tests for the surrogate attributor's serving contract: every
//! outcome (served or fallen back) satisfies the efficiency axiom, a zero
//! tolerance collapses bit-for-bit to [`sampled_shapley_cached`], and
//! fallback decisions are invariant to how trials are partitioned across
//! threads.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use fairco2_shapley::axioms::check_efficiency;
use fairco2_shapley::exact::exact_shapley;
use fairco2_shapley::game::{Game, PeakDemandGame};
use fairco2_shapley::sampled::{sampled_shapley_cached, SampleConfig};
use fairco2_shapley::surrogate::{
    SurrogateAttributor, SurrogateModel, SurrogateScratch, SurrogateTrainer,
};

const MAX_PLAYERS: usize = 6;
const MAX_STEPS: usize = 5;

/// Deterministic training corpus: enough varied small games to fit the
/// cross-fitted model once for the whole test binary.
fn trained_model() -> &'static SurrogateModel {
    static MODEL: OnceLock<SurrogateModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let mut trainer = SurrogateTrainer::new();
        for shift in 0..80usize {
            let n = 2 + shift % 5;
            let steps = 2 + shift % 4;
            let mut demand = vec![vec![0.0; steps]; n];
            for (p, row) in demand.iter_mut().enumerate() {
                for (t, d) in row.iter_mut().enumerate() {
                    *d = ((p * 7 + t * 5 + shift * 3) % 11) as f64;
                }
            }
            let game = PeakDemandGame::new(demand);
            if let Ok(truth) = exact_shapley(&game) {
                trainer.record(&game, &truth);
            }
        }
        trainer.fit(1e-6).expect("training corpus fits")
    })
}

/// Builds a game from a flat demand pool; the first entry is forced
/// positive so `v(N) > 0`.
fn pool_game(pool: &[f64], n: usize, steps: usize) -> PeakDemandGame {
    let mut demand = vec![vec![0.0; steps]; n];
    for (p, row) in demand.iter_mut().enumerate() {
        for (t, d) in row.iter_mut().enumerate() {
            *d = pool[p * steps + t];
        }
    }
    demand[0][0] += 1.0;
    PeakDemandGame::new(demand)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Served or fallen back, every outcome satisfies the efficiency
    /// axiom: served values are conservation-renormalized (exact to
    /// 1e-9), and the sampled fallback's per-permutation marginals
    /// telescope to `v(N)`, so its estimates are efficient to FP error.
    #[test]
    fn every_outcome_satisfies_efficiency(
        pool in prop::collection::vec(0.0f64..10.0, MAX_PLAYERS * MAX_STEPS),
        n in 2usize..=MAX_PLAYERS,
        steps in 2usize..=MAX_STEPS,
        tol in (0usize..4).prop_map(|i| [0.005, 0.02, 0.1, 0.5][i]),
        trial in 0u64..1000,
    ) {
        let game = pool_game(&pool, n, steps);
        let attributor = SurrogateAttributor::new(trained_model().clone(), tol);
        let mut scratch = SurrogateScratch::new();
        let outcome = attributor.attribute_with(&game, trial, &mut scratch);
        prop_assert!(outcome.values.iter().all(|v| v.is_finite()));
        if outcome.fell_back {
            prop_assert!(check_efficiency(&game, &outcome.values, 1e-6).holds());
        } else {
            prop_assert!(outcome.residual_bound() <= tol, "served above tolerance");
            prop_assert!(check_efficiency(&game, &outcome.values, 1e-9).holds());
        }
    }

    /// A zero tolerance disables the surrogate entirely: every trial
    /// falls back, bit-identical to calling [`sampled_shapley_cached`]
    /// directly with the attributor's per-trial seed.
    #[test]
    fn zero_tolerance_collapses_to_sampled(
        pool in prop::collection::vec(0.0f64..10.0, MAX_PLAYERS * MAX_STEPS),
        n in 2usize..=MAX_PLAYERS,
        steps in 2usize..=MAX_STEPS,
        trial in 0u64..1000,
    ) {
        let game = pool_game(&pool, n, steps);
        let attributor = SurrogateAttributor::new(trained_model().clone(), 0.0);
        let mut scratch = SurrogateScratch::new();
        let outcome = attributor.attribute_with(&game, trial, &mut scratch);
        prop_assert!(outcome.fell_back);
        let mut rng =
            StdRng::seed_from_u64(SurrogateAttributor::DEFAULT_SEED.wrapping_add(trial));
        let direct = sampled_shapley_cached(&game, &SampleConfig::default(), &mut rng);
        prop_assert_eq!(outcome.values.len(), direct.values.len());
        for (a, b) in outcome.values.iter().zip(&direct.values) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "fallback bit-identity");
        }
    }

    /// Attribution is a pure function of `(model, game, trial)`: chunking
    /// a batch of trials across worker threads changes neither the
    /// fallback decisions (count included) nor a single served bit.
    #[test]
    fn fallback_decisions_are_thread_invariant(
        pools in prop::collection::vec(
            prop::collection::vec(0.0f64..10.0, MAX_PLAYERS * MAX_STEPS),
            4..10,
        ),
        n in 2usize..=MAX_PLAYERS,
        steps in 2usize..=MAX_STEPS,
        tol in (0usize..3).prop_map(|i| [0.02, 0.1, 0.5][i]),
    ) {
        let games: Vec<PeakDemandGame> =
            pools.iter().map(|pool| pool_game(pool, n, steps)).collect();
        let attributor = SurrogateAttributor::new(trained_model().clone(), tol);

        let run = |threads: usize| -> Vec<(bool, Vec<u64>)> {
            let mut out: Vec<Option<(bool, Vec<u64>)>> = vec![None; games.len()];
            std::thread::scope(|scope| {
                let chunk = games.len().div_ceil(threads);
                for (w, (games_chunk, out_chunk)) in games
                    .chunks(chunk)
                    .zip(out.chunks_mut(chunk))
                    .enumerate()
                {
                    let attributor = &attributor;
                    scope.spawn(move || {
                        let mut scratch = SurrogateScratch::new();
                        for (i, (game, slot)) in
                            games_chunk.iter().zip(out_chunk.iter_mut()).enumerate()
                        {
                            let trial = (w * chunk + i) as u64;
                            let o = attributor.attribute_with(game, trial, &mut scratch);
                            *slot = Some((
                                o.fell_back,
                                o.values.iter().map(|v| v.to_bits()).collect(),
                            ));
                        }
                    });
                }
            });
            out.into_iter().map(|o| o.expect("all trials ran")).collect()
        };

        let serial = run(1);
        for threads in [2usize, 4] {
            let parallel = run(threads);
            let serial_fallbacks = serial.iter().filter(|(f, _)| *f).count();
            let parallel_fallbacks = parallel.iter().filter(|(f, _)| *f).count();
            prop_assert_eq!(serial_fallbacks, parallel_fallbacks, "fallback count");
            prop_assert_eq!(&serial, &parallel, "per-trial decisions and bits");
        }
    }
}

/// The grand value reported by every outcome is the game's own `v(N)`
/// bit for bit — the anchor both the efficiency gap and the harvest
/// normalization rely on.
#[test]
fn outcome_grand_value_matches_game() {
    let mut demand = vec![vec![0.0; 4]; 3];
    for (p, row) in demand.iter_mut().enumerate() {
        for (t, d) in row.iter_mut().enumerate() {
            *d = ((p * 3 + t * 2) % 5) as f64 + 0.5;
        }
    }
    let game = PeakDemandGame::new(demand);
    let attributor = SurrogateAttributor::new(trained_model().clone(), 0.1);
    let outcome = attributor.attribute(&game, 0);
    let direct = game.value(&fairco2_shapley::coalition::Coalition::grand(3));
    assert_eq!(outcome.grand_value.to_bits(), direct.to_bits());
}
