//! Game-theoretic contracts of [`NetworkCarbonGame`], property-tested
//! over random small networks with integer capacities/demands and integer
//! link prices (the exact-arithmetic regime):
//!
//! * **Monotonicity**: growing a coalition never lowers `v` — including
//!   across the feasibility boundary, where the default penalty rate
//!   (sum of link prices) dominates any routable cost.
//! * **Efficiency**: exact Shapley shares sum to `v(N)` within 1e-9.
//! * **Null player**: a tenant with zero traffic gets a zero share.

use fairco2_shapley::coalition::Coalition;
use fairco2_shapley::exact::exact_shapley;
use fairco2_shapley::game::Game;
use fairco2_shapley::netgame::{Link, Network, NetworkCarbonGame};
use proptest::prelude::*;

/// Builds a layered network: nodes `0..nodes-1` inject, the last node is
/// the egress; every non-egress node gets a direct link to the egress and
/// a forward chain link, with capacities and prices drawn from pools.
fn build_network(nodes: usize, caps: &[u8], prices: &[u8]) -> Network {
    let egress = nodes - 1;
    let mut links = Vec::new();
    let mut k = 0usize;
    for v in 0..egress {
        links.push(Link {
            from: v,
            to: egress,
            capacity: caps[k % caps.len()] as f64,
            carbon_per_unit: prices[k % prices.len()] as f64,
        });
        k += 1;
        if v + 1 < egress {
            links.push(Link {
                from: v,
                to: v + 1,
                capacity: caps[k % caps.len()] as f64,
                carbon_per_unit: prices[k % prices.len()] as f64,
            });
            k += 1;
        }
    }
    Network::new(nodes, egress, links)
}

fn build_demands(players: usize, nodes: usize, pool: &[u8]) -> Vec<Vec<f64>> {
    (0..players)
        .map(|t| {
            (0..nodes)
                .map(|v| {
                    if v == nodes - 1 {
                        0.0
                    } else {
                        pool[(t * nodes + v) % pool.len()] as f64
                    }
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn v_is_monotone_under_coalition_growth(
        nodes in 3usize..=5,
        players in 1usize..=5,
        caps in prop::collection::vec(0u8..=8, 4..16),
        prices in prop::collection::vec(0u8..=4, 4..16),
        demand_pool in prop::collection::vec(0u8..=3, 4..16),
    ) {
        let game = NetworkCarbonGame::new(
            build_network(nodes, &caps, &prices),
            build_demands(players, nodes, &demand_pool),
        );
        let (values, _) = game.fill_lattice_cold();
        for mask in 0..(1usize << players) {
            for b in 0..players {
                if mask & (1 << b) != 0 {
                    continue;
                }
                let grown = mask | (1 << b);
                prop_assert!(
                    values[grown] + 1e-9 >= values[mask],
                    "v({grown:#b}) = {} < v({mask:#b}) = {}",
                    values[grown],
                    values[mask]
                );
            }
        }
    }

    #[test]
    fn exact_shapley_is_efficient_to_1e9(
        nodes in 3usize..=5,
        players in 1usize..=5,
        caps in prop::collection::vec(1u8..=8, 4..16),
        prices in prop::collection::vec(0u8..=4, 4..16),
        demand_pool in prop::collection::vec(0u8..=3, 4..16),
    ) {
        let game = NetworkCarbonGame::new(
            build_network(nodes, &caps, &prices),
            build_demands(players, nodes, &demand_pool),
        );
        let phi = exact_shapley(&game).unwrap();
        let total: f64 = phi.iter().sum();
        let grand = game.value(&Coalition::grand(players));
        prop_assert!(
            (total - grand).abs() <= 1e-9,
            "Σφ = {total} vs v(N) = {grand}"
        );
    }

    #[test]
    fn zero_traffic_tenant_has_zero_share(
        nodes in 3usize..=5,
        players in 1usize..=4,
        caps in prop::collection::vec(1u8..=8, 4..16),
        prices in prop::collection::vec(0u8..=4, 4..16),
        demand_pool in prop::collection::vec(0u8..=3, 4..16),
    ) {
        let mut demands = build_demands(players, nodes, &demand_pool);
        demands.push(vec![0.0; nodes]); // the null player
        let game = NetworkCarbonGame::new(build_network(nodes, &caps, &prices), demands);
        let total = players + 1;
        // Game-level exactness: adding zero demand leaves every rhs —
        // hence every solve — bit-identical, so each marginal is exactly
        // zero at the bit level.
        for mask in 0..(1u64 << players) {
            let without = Coalition::from_mask(total, mask);
            let with = Coalition::from_mask(total, mask | (1 << players));
            prop_assert_eq!(
                game.value(&without).to_bits(),
                game.value(&with).to_bits()
            );
        }
        // Solver-level share: the table scatter accumulates ±w·v(S) terms
        // separately, so the zero arrives by cancellation — exact up to
        // accumulation epsilon, not bitwise.
        let phi = exact_shapley(&game).unwrap();
        let scale = 1.0 + game.value(&Coalition::grand(total)).abs();
        prop_assert!(
            phi[players].abs() <= 1e-12 * scale,
            "null player got {}",
            phi[players]
        );
    }
}
