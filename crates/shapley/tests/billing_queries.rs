//! Property tests for the billing-query path: `IntensityIndex::carbon`
//! against a naive linear scan over the sample grid, across random
//! grids and windows — including inverted, empty, and extreme-endpoint
//! windows (the `i64` overflow regression of the release billing path).

use fairco2_shapley::cascade::first_sample_at_or_after;
use fairco2_shapley::{BillingQuery, IntensityIndex};
use proptest::prelude::*;

/// Expands an endpoint "class" drawn by the strategy into a concrete
/// query endpoint: most windows land near the grid, but every case also
/// exercises the hostile extremes where the old arithmetic wrapped.
fn endpoint(class: u8, offset: i64) -> i64 {
    match class % 4 {
        0 => offset,                                // near the grid
        1 => i64::MIN.saturating_add(offset.abs()), // hostile low extreme
        2 => i64::MAX.saturating_sub(offset.abs()), // hostile high extreme
        _ => offset.saturating_mul(1 << 40),        // far out of range
    }
}

/// The reference: a linear scan over the sample grid, charging every
/// sample whose timestamp falls in `[t0, t1)`.
fn naive_carbon(start: i64, step: u32, intensity: &[f64], q: BillingQuery) -> f64 {
    let (t0, t1, alloc) = q;
    let stepf = f64::from(step);
    let mut total = 0.0;
    for (k, v) in intensity.iter().enumerate() {
        // `start + k·step` cannot overflow: the strategy bounds the
        // grid so the whole span stays far from the i64 extremes.
        let t = start + k as i64 * i64::from(step);
        if t >= t0 && t < t1 {
            total += v * stepf;
        }
    }
    alloc * total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn carbon_matches_naive_linear_scan(
        start in -1_000_000_000i64..1_000_000_000,
        step in 1u32..100_000,
        intensity in prop::collection::vec(0.0f64..50.0, 1..48),
        windows in prop::collection::vec(
            (0u8..4, -2_000_000_000i64..2_000_000_000, 0u8..4, -2_000_000_000i64..2_000_000_000, 0.0f64..8.0),
            1..24,
        ),
    ) {
        let stepf = f64::from(step);
        let mut prefix = Vec::with_capacity(intensity.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for v in &intensity {
            acc += v * stepf;
            prefix.push(acc);
        }
        let idx = IntensityIndex::new(start, step, &prefix);
        let queries: Vec<BillingQuery> = windows
            .iter()
            .map(|&(c0, o0, c1, o1, alloc)| (endpoint(c0, o0), endpoint(c1, o1), alloc))
            .collect();
        let mut batched = Vec::new();
        idx.carbon_batch_into(&queries, &mut batched);
        for (&query, &fast) in queries.iter().zip(&batched) {
            let slow = naive_carbon(start, step, &intensity, query);
            // The index subtracts prefix sums while the scan adds term
            // by term, so compare up to accumulation roundoff.
            let tol = 1e-9 * slow.abs().max(1.0);
            prop_assert!(
                (fast - slow).abs() <= tol,
                "query {query:?}: index {fast} vs scan {slow}"
            );
            prop_assert_eq!(fast.to_bits(), idx.carbon(query.0, query.1, query.2).to_bits());
        }
    }

    #[test]
    fn empty_and_inverted_windows_charge_nothing(
        start in -1_000_000i64..1_000_000,
        step in 1u32..10_000,
        intensity in prop::collection::vec(0.0f64..50.0, 1..32),
        pivot in -2_000_000i64..2_000_000,
        span in 0i64..1_000_000,
    ) {
        let stepf = f64::from(step);
        let mut prefix = vec![0.0];
        let mut acc = 0.0;
        for v in &intensity {
            acc += v * stepf;
            prefix.push(acc);
        }
        let idx = IntensityIndex::new(start, step, &prefix);
        prop_assert_eq!(idx.carbon(pivot, pivot, 3.0), 0.0);
        prop_assert_eq!(idx.carbon(pivot + span, pivot, 3.0), 0.0);
        prop_assert_eq!(idx.carbon(i64::MAX, i64::MIN, 3.0), 0.0);
    }
}

#[test]
fn shared_index_conversion_is_clamped_at_the_extremes() {
    // The helper behind both `IntensityIndex` and the serve epoch
    // snapshots: extremes land on the clamp bounds, never wrap.
    assert_eq!(first_sample_at_or_after(0, 300, 10, i64::MIN), 0);
    assert_eq!(first_sample_at_or_after(0, 300, 10, i64::MAX), 10);
    assert_eq!(first_sample_at_or_after(i64::MIN, 300, 10, i64::MIN), 0);
    assert_eq!(first_sample_at_or_after(i64::MAX - 10, 1, 10, i64::MAX), 10);
    assert_eq!(first_sample_at_or_after(0, 300, 10, 1), 1);
    assert_eq!(first_sample_at_or_after(0, 300, 10, 300), 1);
    assert_eq!(first_sample_at_or_after(0, 300, 10, 301), 2);
}
