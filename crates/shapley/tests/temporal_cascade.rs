//! Equality pins for the flat Temporal Shapley cascade:
//!
//! * the scalar flat engine ([`TemporalShapley::attribute_scalar`]) is
//!   **bit-identical** to the retained per-period reference
//!   ([`TemporalShapley::attribute_per_period`]) on random series and
//!   hierarchies — including zero-demand stranding and the
//!   φ·q → q → duration weight fallbacks;
//! * the default lane-parallel engine ([`TemporalShapley::attribute`])
//!   matches the scalar one to a documented ulp-accumulation bound
//!   (its sums are *reassociated*, not reordered per element; zero/sign
//!   decisions — stranding, weight fallbacks — and the work counters
//!   stay exact);
//! * [`TemporalShapley::attribute_parallel`] is bit-identical to the
//!   serial lane path at 1, 2, and 8 threads;
//! * a reused [`CascadeScratch`] reproduces fresh results exactly;
//! * [`TemporalAttribution::workload_carbon_batch`] matches per-call
//!   [`TemporalAttribution::workload_carbon`] bit-for-bit.

use fairco2_shapley::cascade::{BillingQuery, CascadeScratch};
use fairco2_shapley::temporal::{TemporalAttribution, TemporalShapley};
use fairco2_trace::TimeSeries;
use proptest::prelude::*;

/// Asserts two attributions are bit-identical in every observable:
/// per-level intensity signals, stranded carbon, the billing prefix, and
/// the work counters.
fn assert_bits_eq(label: &str, a: &TemporalAttribution, b: &TemporalAttribution) {
    assert_eq!(
        a.level_intensity().len(),
        b.level_intensity().len(),
        "{label}: level count"
    );
    for (level, (la, lb)) in a
        .level_intensity()
        .iter()
        .zip(b.level_intensity())
        .enumerate()
    {
        assert_eq!(la.start(), lb.start(), "{label}: level {level} start");
        assert_eq!(la.step(), lb.step(), "{label}: level {level} step");
        assert_eq!(la.len(), lb.len(), "{label}: level {level} len");
        for (k, (va, vb)) in la.values().iter().zip(lb.values()).enumerate() {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "{label}: level {level} sample {k}: {va} vs {vb}"
            );
        }
    }
    for (k, (va, vb)) in a.carbon_prefix().iter().zip(b.carbon_prefix()).enumerate() {
        assert_eq!(va.to_bits(), vb.to_bits(), "{label}: prefix entry {k}");
    }
    assert_eq!(
        a.stranded_carbon().to_bits(),
        b.stranded_carbon().to_bits(),
        "{label}: stranded"
    );
    assert_eq!(
        a.naive_subset_evaluations().to_bits(),
        b.naive_subset_evaluations().to_bits(),
        "{label}: naive counter"
    );
    assert_eq!(
        a.closed_form_operations(),
        b.closed_form_operations(),
        "{label}: ops counter"
    );
}

/// Asserts two attributions agree to a relative tolerance per element,
/// with the *discrete* observables (shapes, counters, and exact-zero
/// stranding decisions) still exact. Used to pin the lane engine
/// against the scalar one: each lane sum differs from the scalar fold
/// only by reassociation, so the per-element error is bounded by
/// `O(n · ε)` relative — `n ≤ 8641` samples and `ε = 2⁻⁵²` put the true
/// bound near `2e-12`; `1e-9` leaves three orders of slack without
/// masking real bugs.
fn assert_close(label: &str, a: &TemporalAttribution, b: &TemporalAttribution, tol: f64) {
    let close = |x: f64, y: f64| (x - y).abs() <= tol * x.abs().max(y.abs()).max(f64::MIN_POSITIVE);
    assert_eq!(
        a.level_intensity().len(),
        b.level_intensity().len(),
        "{label}: level count"
    );
    for (level, (la, lb)) in a
        .level_intensity()
        .iter()
        .zip(b.level_intensity())
        .enumerate()
    {
        assert_eq!(la.len(), lb.len(), "{label}: level {level} len");
        for (k, (va, vb)) in la.values().iter().zip(lb.values()).enumerate() {
            assert!(
                close(*va, *vb),
                "{label}: level {level} sample {k}: {va} vs {vb}"
            );
            // Zero-demand decisions are exact in both kernels: a period
            // sum is zero iff every sample is zero, regardless of
            // association order over non-negative demand.
            assert_eq!(*va == 0.0, *vb == 0.0, "{label}: level {level} zero {k}");
        }
    }
    for (k, (va, vb)) in a.carbon_prefix().iter().zip(b.carbon_prefix()).enumerate() {
        assert!(close(*va, *vb), "{label}: prefix entry {k}: {va} vs {vb}");
    }
    assert!(
        close(a.stranded_carbon(), b.stranded_carbon()),
        "{label}: stranded {} vs {}",
        a.stranded_carbon(),
        b.stranded_carbon()
    );
    assert_eq!(
        a.naive_subset_evaluations().to_bits(),
        b.naive_subset_evaluations().to_bits(),
        "{label}: naive counter"
    );
    assert_eq!(
        a.closed_form_operations(),
        b.closed_form_operations(),
        "{label}: ops counter"
    );
}

/// Builds a demand series from raw values and a zero mask (mask value 0
/// forces the sample to zero so stranding paths get exercised).
fn masked_series(values: &[f64], mask: &[u8], start: i64, step: u32) -> TimeSeries {
    let samples: Vec<f64> = values
        .iter()
        .zip(mask)
        .map(|(&v, &m)| if m == 0 { 0.0 } else { v })
        .collect();
    TimeSeries::from_values(start, step, samples).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flat_cascade_matches_the_per_period_reference(
        splits in prop::collection::vec(2usize..=4, 0..=3),
        chunk in 1usize..=6,
        slack in 0usize..=17,
        raw in prop::collection::vec(0.0f64..50.0, 512),
        mask in prop::collection::vec(0u8..=3, 512),
        start in -86_400i64..86_400,
        carbon in 0.0f64..5_000.0,
    ) {
        // len >= product(splits) keeps every level splittable (each
        // child is at least the product of the remaining ratios long).
        let product: usize = splits.iter().product();
        let len = product * chunk + slack;
        prop_assume!(len >= product.max(1) && len <= raw.len());
        let series = masked_series(&raw[..len], &mask[..len], start, 300);
        let h = TemporalShapley::new(splits);
        let reference = h.attribute_per_period(&series, carbon).unwrap();
        let scalar = h.attribute_scalar(&series, carbon).unwrap();
        assert_bits_eq("scalar flat vs reference", &reference, &scalar);
        let lane = h.attribute(&series, carbon).unwrap();
        assert_close("lane vs scalar", &scalar, &lane, 1e-9);
        for threads in [2usize, 8] {
            let parallel = h.attribute_parallel(&series, carbon, threads).unwrap();
            assert_bits_eq("parallel vs serial lane", &lane, &parallel);
        }
    }

    #[test]
    fn reused_scratch_reproduces_fresh_results(
        first_len in 24usize..=96,
        second_len in 24usize..=96,
        raw in prop::collection::vec(0.0f64..50.0, 96),
        mask in prop::collection::vec(0u8..=3, 96),
        carbon in 0.0f64..5_000.0,
    ) {
        // Two differently-shaped attributions through one scratch: the
        // second must match a fresh run bit-for-bit (no state leaks).
        let h = TemporalShapley::new(vec![3, 2]);
        let a = masked_series(&raw[..first_len], &mask[..first_len], 0, 300);
        let b = masked_series(&raw[..second_len], &mask[..second_len], 900, 60);
        let mut scratch = CascadeScratch::new();
        h.attribute_with_scratch(&a, carbon, 1, &mut scratch).unwrap();
        assert_bits_eq(
            "scratch first run",
            &h.attribute(&a, carbon).unwrap(),
            &scratch.to_attribution(),
        );
        h.attribute_with_scratch(&b, carbon * 0.5, 1, &mut scratch).unwrap();
        assert_bits_eq(
            "scratch after reuse",
            &h.attribute(&b, carbon * 0.5).unwrap(),
            &scratch.to_attribution(),
        );
    }

    #[test]
    fn batched_billing_queries_match_per_call_lookups(
        raw in prop::collection::vec(0.0f64..50.0, 96),
        mask in prop::collection::vec(0u8..=3, 96),
        carbon in 0.0f64..5_000.0,
        queries in prop::collection::vec(
            (-40_000i64..40_000, -40_000i64..40_000, 0.0f64..8.0),
            1..=64,
        ),
    ) {
        let series = masked_series(&raw, &mask, -7_200, 300);
        let att = TemporalShapley::new(vec![4, 3])
            .attribute(&series, carbon)
            .unwrap();
        let batch: Vec<BillingQuery> = queries.clone();
        let answers = att.workload_carbon_batch(&batch);
        prop_assert_eq!(answers.len(), batch.len());
        for (answer, (t0, t1, alloc)) in answers.iter().zip(queries) {
            prop_assert_eq!(
                answer.to_bits(),
                att.workload_carbon(t0, t1, alloc).to_bits()
            );
        }
    }
}

/// The q-proportional fallback requires Σ φ·q ≤ 0 with Σ q > 0 — only
/// reachable with mixed-sign demand. This exact-arithmetic vector
/// (children [1, 3] and [9, −10]: φ = [1.5, 7.5], q = [1200, −300],
/// denom = −450, q_total = 900) pins the fallback on both paths.
#[test]
fn q_fallback_is_bit_identical_and_strands_negative_carbon() {
    let series = TimeSeries::from_values(0, 300, vec![1.0, 3.0, 9.0, -10.0]).unwrap();
    let h = TemporalShapley::new(vec![2]);
    let reference = h.attribute_per_period(&series, 90.0).unwrap();
    let flat = h.attribute(&series, 90.0).unwrap();
    assert_bits_eq("q fallback", &reference, &flat);
    // q weights are [4/3, −1/3]; the second child's q ≤ 0 strands its
    // (negative) share: 90 · (−1/3) = −30 exactly.
    assert_eq!(flat.stranded_carbon(), -30.0);
    assert_eq!(flat.leaf_intensity().value_at(0), Some(0.1));
}

/// All-zero demand exercises the duration-proportional fallback at every
/// level and strands the full carbon budget.
#[test]
fn duration_fallback_is_bit_identical_on_idle_series() {
    let series = TimeSeries::constant(0, 300, 36, 0.0).unwrap();
    let h = TemporalShapley::new(vec![3, 2]);
    let reference = h.attribute_per_period(&series, 64.0).unwrap();
    let flat = h.attribute(&series, 64.0).unwrap();
    assert_bits_eq("duration fallback", &reference, &flat);
    assert!((flat.stranded_carbon() - 64.0).abs() < 1e-12);
    assert!(flat.leaf_intensity().values().iter().all(|&v| v == 0.0));
}

/// Uneven splits (remainder-bearing periods) on the paper hierarchy:
/// the scalar flat path matches the reference bit for bit, the lane
/// path matches the scalar one to the ulp bound, and 1/2/8-thread lane
/// runs agree with the serial lane path bit for bit.
#[test]
fn paper_hierarchy_is_thread_invariant() {
    let series = TimeSeries::from_fn(0, 300, 8641, |t| {
        let x = t as f64 / 300.0;
        40.0 + 25.0 * (x / 288.0 * std::f64::consts::PI).sin().abs() + (x % 13.0)
    })
    .unwrap();
    let h = TemporalShapley::paper_hierarchy();
    let reference = h.attribute_per_period(&series, 12_000.0).unwrap();
    let scalar = h.attribute_scalar(&series, 12_000.0).unwrap();
    assert_bits_eq("paper hierarchy scalar", &reference, &scalar);
    let lane = h.attribute(&series, 12_000.0).unwrap();
    assert_close("paper hierarchy lane", &scalar, &lane, 1e-9);
    for threads in [1usize, 2, 8] {
        let parallel = h.attribute_parallel(&series, 12_000.0, threads).unwrap();
        assert_bits_eq("paper hierarchy threads", &lane, &parallel);
    }
}

/// The flat path reports the same error as the reference when a level
/// would split a period below one sample.
#[test]
fn oversplit_errors_match_the_reference() {
    let series = TimeSeries::constant(0, 300, 6, 1.0).unwrap();
    let h = TemporalShapley::new(vec![4, 3]);
    let reference = h.attribute_per_period(&series, 10.0);
    let flat = h.attribute(&series, 10.0);
    assert!(reference.is_err());
    assert_eq!(reference.unwrap_err(), flat.unwrap_err());
}
