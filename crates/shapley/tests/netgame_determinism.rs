//! Determinism pins for the LP-valued network game:
//!
//! * warm-started coalition solves **bit-identical** to cold solves
//!   across the full coalition lattice up to n = 10 tenants;
//! * [`parallel_exact_shapley`] over the LP game bit-identical to the
//!   serial solver at 1, 2, and 8 threads;
//! * [`sampled_shapley_cached`] bit-identical run-to-run at a fixed seed
//!   and bit-identical to the uncached estimator (the cache may only skip
//!   work, never change a value — which holds because warm incremental
//!   replay reproduces cold values exactly on dyadic instances);
//! * [`parallel_sampled_shapley`] with batch-local coalition caches
//!   bit-identical at 1, 2, and 8 threads.
//!
//! All instances here use integer capacities/demands and integer link
//! prices, the exact-arithmetic regime documented in `fairco2-solver`.

use fairco2_shapley::exact::{exact_shapley, parallel_exact_shapley};
use fairco2_shapley::netgame::{Link, Network, NetworkCarbonGame};
use fairco2_shapley::parallel::{parallel_sampled_shapley, ParallelConfig};
use fairco2_shapley::sampled::{sampled_shapley, sampled_shapley_cached, SampleConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 5-node network (egress = 4) with shared bottleneck links, built so
/// larger coalitions actually contend for capacity.
fn bottleneck_network() -> Network {
    Network::new(
        5,
        4,
        vec![
            Link {
                from: 0,
                to: 2,
                capacity: 9.0,
                carbon_per_unit: 1.0,
            },
            Link {
                from: 1,
                to: 2,
                capacity: 7.0,
                carbon_per_unit: 2.0,
            },
            Link {
                from: 0,
                to: 3,
                capacity: 5.0,
                carbon_per_unit: 3.0,
            },
            Link {
                from: 1,
                to: 3,
                capacity: 6.0,
                carbon_per_unit: 1.0,
            },
            Link {
                from: 2,
                to: 4,
                capacity: 11.0,
                carbon_per_unit: 2.0,
            },
            Link {
                from: 3,
                to: 4,
                capacity: 8.0,
                carbon_per_unit: 1.0,
            },
            Link {
                from: 2,
                to: 3,
                capacity: 4.0,
                carbon_per_unit: 1.0,
            },
        ],
    )
}

/// `n` tenants with deterministic small integer demands at nodes 0/1.
fn tenants(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|t| {
            let at0 = ((t * 7 + 3) % 4) as f64;
            let at1 = ((t * 5 + 1) % 3) as f64;
            vec![at0, at1, 0.0, 0.0, 0.0]
        })
        .collect()
}

fn game(n: usize) -> NetworkCarbonGame {
    NetworkCarbonGame::new(bottleneck_network(), tenants(n))
}

#[test]
fn warm_lattice_is_bit_identical_to_cold_up_to_ten_tenants() {
    for n in [2usize, 5, 10] {
        let g = game(n);
        let (cold, _) = g.fill_lattice_cold();
        let (warm, stats) = g.fill_lattice_warm();
        assert_eq!(cold.len(), 1 << n);
        for (mask, (c, w)) in cold.iter().zip(&warm).enumerate() {
            assert_eq!(
                c.to_bits(),
                w.to_bits(),
                "n={n} mask={mask:#b}: cold {c} vs warm {w}"
            );
        }
        // The warm fill must actually warm-start (not silently cold-solve
        // everything): every non-empty coalition whose parent was routed
        // gets an offer, and most offers must be served.
        assert!(stats.warm_attempts > 0, "n={n}: no warm starts attempted");
        assert!(
            stats.warm_hits * 2 > stats.warm_attempts,
            "n={n}: warm hits {} of {} attempts",
            stats.warm_hits,
            stats.warm_attempts
        );
    }
}

#[test]
fn parallel_exact_shapley_is_bit_identical_at_1_2_8_threads() {
    let g = game(8);
    let serial = exact_shapley(&g).unwrap();
    for threads in [1usize, 2, 8] {
        let parallel = parallel_exact_shapley(&g, threads).unwrap();
        for (p, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "player {p} at {threads} threads: serial {a} vs parallel {b}"
            );
        }
    }
}

#[test]
fn sampled_shapley_cached_is_reproducible_and_cache_transparent() {
    let g = game(9);
    let config = SampleConfig {
        max_permutations: 200,
        target_stderr: 0.0,
        min_permutations: 200,
        antithetic: true,
    };
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        sampled_shapley_cached(&g, &config, &mut rng)
    };
    // Same seed ⇒ bit-identical estimate.
    let a = run(42);
    let b = run(42);
    assert_eq!(a.values.len(), 9);
    for (x, y) in a.values.iter().zip(&b.values) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    // The cache may only skip work, never change a value: the cached
    // estimate matches the uncached one bit-for-bit (warm incremental
    // replay reproduces cold values exactly on this dyadic instance).
    let mut rng = StdRng::seed_from_u64(42);
    let uncached = sampled_shapley(&g, &config, &mut rng);
    for (x, y) in a.values.iter().zip(&uncached.values) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert!(a.counters.cache_hits > 0, "cache never hit");
}

#[test]
fn parallel_sampled_shapley_is_bit_identical_at_1_2_8_threads() {
    let g = game(9);
    let mut reference: Option<Vec<f64>> = None;
    for threads in [1usize, 2, 8] {
        let config = ParallelConfig {
            sample: SampleConfig {
                max_permutations: 192,
                target_stderr: 0.0,
                min_permutations: 192,
                antithetic: true,
            },
            batch_permutations: 16,
            round_batches: 8,
            threads,
            coalition_cache: true,
        };
        let est = parallel_sampled_shapley(&g, &config, 0xFA1C_0002);
        match &reference {
            None => reference = Some(est.estimate.values.clone()),
            Some(want) => {
                for (p, (a, b)) in want.iter().zip(&est.estimate.values).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "player {p} at {threads} threads: {a} vs {b}"
                    );
                }
            }
        }
    }
}
