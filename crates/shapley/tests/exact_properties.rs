//! Property tests pinning the exact solvers against each other:
//!
//! * the Gray-code solver ([`exact_shapley_fast`]) agrees with plain
//!   enumeration ([`exact_shapley`]) within 1e-9 on random table games
//!   and random peak-demand games (n ≤ 10);
//! * the parallel solver ([`parallel_exact_shapley`]) is **bit-identical**
//!   to the serial one at 1, 2, and 8 threads.

use fairco2_shapley::exact::{exact_shapley, exact_shapley_fast, parallel_exact_shapley};
use fairco2_shapley::game::{PeakDemandGame, ScanPeak, TableGame};
use proptest::prelude::*;

/// Builds a table game over `n` players from a pool of integer values
/// (`values[0]` is forced to 0 to satisfy the `v(∅) = 0` contract).
fn table_game(n: usize, pool: &[i32]) -> TableGame {
    let size = 1usize << n;
    let values: Vec<f64> = (0..size)
        .map(|mask| {
            if mask == 0 {
                0.0
            } else {
                pool[mask % pool.len()] as f64
            }
        })
        .collect();
    TableGame::new(n, values)
}

/// Builds an `n`-player, `steps`-step peak-demand game from a pool of
/// small non-negative integer demands.
fn peak_game(n: usize, steps: usize, pool: &[u8]) -> PeakDemandGame {
    let demand: Vec<Vec<f64>> = (0..n)
        .map(|p| {
            (0..steps)
                .map(|t| pool[(p * steps + t) % pool.len()] as f64)
                .collect()
        })
        .collect();
    PeakDemandGame::new(demand)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gray_code_matches_plain_on_random_table_games(
        n in 1usize..=10,
        pool in prop::collection::vec(-1000i32..1000, 8..64),
    ) {
        let g = table_game(n, &pool);
        let plain = exact_shapley(&g).unwrap();
        let fast = exact_shapley_fast(&g).unwrap();
        for (a, b) in plain.iter().zip(&fast) {
            prop_assert!((a - b).abs() <= 1e-9, "plain {a} vs gray {b}");
        }
    }

    #[test]
    fn gray_code_matches_plain_on_random_peak_games(
        n in 1usize..=10,
        steps in 1usize..=6,
        pool in prop::collection::vec(0u8..20, 4..32),
    ) {
        let g = peak_game(n, steps, &pool);
        let plain = exact_shapley(&g).unwrap();
        let fast = exact_shapley_fast(&g).unwrap();
        for (a, b) in plain.iter().zip(&fast) {
            prop_assert!((a - b).abs() <= 1e-9, "plain {a} vs gray {b}");
        }
        // The segment-tree toggle path must agree with the original dense
        // re-scan path on the same game.
        let scan = exact_shapley_fast(&ScanPeak(g)).unwrap();
        for (a, b) in fast.iter().zip(&scan) {
            prop_assert!((a - b).abs() <= 1e-9, "tree {a} vs scan {b}");
        }
    }

    #[test]
    fn parallel_exact_is_bit_identical_to_serial(
        n in 1usize..=10,
        steps in 1usize..=5,
        pool in prop::collection::vec(0u8..20, 4..32),
    ) {
        let g = peak_game(n, steps, &pool);
        let serial = exact_shapley(&g).unwrap();
        for threads in [1usize, 2, 8] {
            let parallel = parallel_exact_shapley(&g, threads).unwrap();
            prop_assert_eq!(parallel.len(), serial.len());
            for (a, b) in parallel.iter().zip(&serial) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "threads = {}", threads);
            }
        }
    }

    #[test]
    fn parallel_exact_is_bit_identical_on_table_games(
        n in 1usize..=10,
        pool in prop::collection::vec(-1000i32..1000, 8..64),
    ) {
        let g = table_game(n, &pool);
        let serial = exact_shapley(&g).unwrap();
        for threads in [1usize, 2, 8] {
            let parallel = parallel_exact_shapley(&g, threads).unwrap();
            for (a, b) in parallel.iter().zip(&serial) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "threads = {}", threads);
            }
        }
    }
}

/// A single larger case where the table spans several per-worker fill
/// ranges and accumulation blocks, exercising the seams that the small
/// proptest cases cannot reach (2¹⁷ masks > one 2¹⁶-mask accumulation
/// block, and four workers each own a 2¹⁵-mask fill range).
#[test]
fn parallel_exact_crosses_chunk_boundaries() {
    let n = 17;
    let demand: Vec<Vec<f64>> = (0..n)
        .map(|p: usize| {
            (0..4)
                .map(|t: usize| ((p * 5 + t * 3) % 7) as f64)
                .collect()
        })
        .collect();
    let g = PeakDemandGame::new(demand);
    let serial = exact_shapley(&g).unwrap();
    let parallel = parallel_exact_shapley(&g, 4).unwrap();
    for (a, b) in parallel.iter().zip(&serial) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
