//! Live embodied-carbon-intensity signals (paper Section 5.3).
//!
//! Existing dashboards attribute retroactively; Fair-CO₂ instead splices a
//! demand *forecast* onto observed history, runs Temporal Shapley over the
//! combined window, and publishes the resulting intensity signal so
//! workloads can optimize **now** against projected future demand. The
//! paper's Figure 11 quantifies how little forecast error perturbs the
//! signal (MAPE ≈ 2.3 %).

use std::fmt;

use fairco2_forecast::{ForecastError, SeasonalForecaster};
use fairco2_shapley::temporal::{TemporalAttribution, TemporalShapley};
use fairco2_trace::series::{SeriesError, TimeSeries};

/// Error building a live signal.
#[derive(Debug)]
pub enum SignalError {
    /// Forecaster fitting failed.
    Forecast(ForecastError),
    /// The demand series could not be spliced or split.
    Series(SeriesError),
}

impl fmt::Display for SignalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalError::Forecast(e) => write!(f, "forecast: {e}"),
            SignalError::Series(e) => write!(f, "series: {e}"),
        }
    }
}

impl std::error::Error for SignalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SignalError::Forecast(e) => Some(e),
            SignalError::Series(e) => Some(e),
        }
    }
}

impl From<ForecastError> for SignalError {
    fn from(e: ForecastError) -> Self {
        SignalError::Forecast(e)
    }
}

impl From<SeriesError> for SignalError {
    fn from(e: SeriesError) -> Self {
        SignalError::Series(e)
    }
}

/// Generator of live embodied-carbon-intensity signals.
#[derive(Debug, Clone)]
pub struct LiveSignal {
    forecaster: SeasonalForecaster,
    hierarchy: TemporalShapley,
}

impl LiveSignal {
    /// Creates a generator from a forecaster configuration and a Temporal
    /// Shapley hierarchy.
    pub fn new(forecaster: SeasonalForecaster, hierarchy: TemporalShapley) -> Self {
        Self {
            forecaster,
            hierarchy,
        }
    }

    /// The paper's configuration: daily+weekly seasonal forecaster and the
    /// Figure 4 hierarchy.
    pub fn paper_default() -> Self {
        Self::new(
            SeasonalForecaster::default_daily_weekly(),
            TemporalShapley::paper_hierarchy(),
        )
    }

    /// Builds the live signal: fits the forecaster on `history`, forecasts
    /// `horizon_samples` ahead, splices history + forecast, and runs
    /// Temporal Shapley to distribute `window_carbon` (gCO₂e, e.g. the
    /// amortized embodied carbon for the combined window).
    ///
    /// Returns the attribution over the combined window; intensities for
    /// timestamps past the history end are the *projected* live signal.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError`] when the forecaster cannot be fitted or the
    /// hierarchy does not divide the combined series.
    pub fn generate(
        &self,
        history: &TimeSeries,
        horizon_samples: usize,
        window_carbon: f64,
    ) -> Result<TemporalAttribution, SignalError> {
        let combined = self.splice(history, horizon_samples)?;
        Ok(self.hierarchy.attribute(&combined, window_carbon)?)
    }

    /// History + forecast, as one series.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::Forecast`] when fitting fails.
    pub fn splice(
        &self,
        history: &TimeSeries,
        horizon_samples: usize,
    ) -> Result<TimeSeries, SignalError> {
        let fitted = self.forecaster.fit(history)?;
        let forecast = fitted.predict(horizon_samples);
        let mut values = history.values().to_vec();
        values.extend_from_slice(forecast.values());
        Ok(
            TimeSeries::from_values(history.start(), history.step(), values)
                .expect("history is non-empty"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairco2_trace::stats::{mape, worst_ape};
    use fairco2_trace::AzureLikeTrace;

    #[test]
    fn live_signal_matches_oracle_signal_closely() {
        // The paper's Figure 11 experiment: signal from 21 d history + 9 d
        // forecast vs signal from the true 30 d trace.
        let trace = AzureLikeTrace::builder().days(30).seed(23).build();
        let full = trace.series();
        let (history, holdout) = fairco2_forecast::split_at_day(full, 21).unwrap();

        let live = LiveSignal::paper_default();
        let with_forecast = live.generate(&history, holdout.len(), 1.0e6).unwrap();
        let oracle = TemporalShapley::paper_hierarchy()
            .attribute(full, 1.0e6)
            .unwrap();

        // Compare intensity only over the forecast window.
        let start = history.end();
        let actual: Vec<f64> = oracle
            .leaf_intensity()
            .iter()
            .filter(|(t, _)| *t >= start)
            .map(|(_, v)| v)
            .collect();
        let predicted: Vec<f64> = with_forecast
            .leaf_intensity()
            .iter()
            .filter(|(t, _)| *t >= start)
            .map(|(_, v)| v)
            .collect();
        let m = mape(&actual, &predicted).unwrap();
        let w = worst_ape(&actual, &predicted).unwrap();
        // The synthetic trace carries ~3.4 % unforecastable AR noise that
        // Shapley peak-pricing amplifies; the paper's real-trace numbers
        // (2.3 % / 15.7 %) are reproduced shape-wise, not absolutely.
        assert!(m < 20.0, "signal MAPE {m}%");
        assert!(w < 80.0, "worst signal error {w}%");
    }

    #[test]
    fn low_noise_trace_approaches_the_paper_error_regime() {
        let trace = AzureLikeTrace::builder()
            .days(30)
            .noise_sigma(0.005)
            .seed(31)
            .build();
        let full = trace.series();
        let (history, holdout) = fairco2_forecast::split_at_day(full, 21).unwrap();
        let live = LiveSignal::paper_default();
        let with_forecast = live.generate(&history, holdout.len(), 1.0e6).unwrap();
        let oracle = TemporalShapley::paper_hierarchy()
            .attribute(full, 1.0e6)
            .unwrap();
        let start = history.end();
        let pick = |att: &TemporalAttribution| -> Vec<f64> {
            att.leaf_intensity()
                .iter()
                .filter(|(t, _)| *t >= start)
                .map(|(_, v)| v)
                .collect()
        };
        let m = mape(&pick(&oracle), &pick(&with_forecast)).unwrap();
        assert!(m < 8.0, "low-noise signal MAPE {m}%");
    }

    #[test]
    fn splice_preserves_history_and_extends_grid() {
        let trace = AzureLikeTrace::builder().days(22).seed(5).build();
        let live = LiveSignal::paper_default();
        let combined = live.splice(trace.series(), 288).unwrap();
        assert_eq!(combined.len(), trace.series().len() + 288);
        assert_eq!(
            &combined.values()[..trace.series().len()],
            trace.series().values()
        );
    }

    #[test]
    fn too_short_history_errors() {
        let short = TimeSeries::constant(0, 300, 4, 1.0).unwrap();
        let live = LiveSignal::paper_default();
        assert!(matches!(
            live.generate(&short, 10, 1.0),
            Err(SignalError::Forecast(_))
        ));
    }
}
