//! Fairness metrics: deviation from the ground-truth attribution
//! (Section 6.3's evaluation measure).

use serde::{Deserialize, Serialize};

/// Per-scenario deviation summary: the two statistics the paper's Monte
/// Carlo figures plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviationSummary {
    /// Mean absolute percentage deviation across the scenario's workloads.
    pub average_pct: f64,
    /// Largest single-workload percentage deviation ("least fair"
    /// attribution in the scenario).
    pub worst_case_pct: f64,
}

/// Per-workload absolute percentage deviations of `method` from `truth`.
///
/// Workloads whose ground-truth share is zero are skipped (a percentage
/// deviation from zero is undefined); the paper's generators never produce
/// them because every workload contributes demand.
///
/// # Panics
///
/// Panics if the slices differ in length — that indicates corrupted
/// experiment plumbing, not a recoverable condition.
pub fn deviations_pct(method: &[f64], truth: &[f64]) -> Vec<f64> {
    assert_eq!(
        method.len(),
        truth.len(),
        "method and truth must cover the same workloads"
    );
    method
        .iter()
        .zip(truth)
        .filter(|(_, &t)| t != 0.0)
        .map(|(&m, &t)| 100.0 * ((m - t) / t).abs())
        .collect()
}

/// Summarizes a scenario's deviations into the paper's two statistics.
///
/// Returns `None` when no workload had a non-zero ground-truth share.
///
/// Single pass, no allocation: accumulates the sum and running max in the
/// same left-to-right order as folding over [`deviations_pct`], so results
/// are bit-identical to the collect-then-reduce formulation.
pub fn summarize(method: &[f64], truth: &[f64]) -> Option<DeviationSummary> {
    assert_eq!(
        method.len(),
        truth.len(),
        "method and truth must cover the same workloads"
    );
    let mut count = 0usize;
    let mut sum = 0.0f64;
    let mut worst_case_pct = 0.0f64;
    for (&m, &t) in method.iter().zip(truth) {
        if t == 0.0 {
            continue;
        }
        let dev = 100.0 * ((m - t) / t).abs();
        count += 1;
        sum += dev;
        worst_case_pct = worst_case_pct.max(dev);
    }
    if count == 0 {
        return None;
    }
    Some(DeviationSummary {
        average_pct: sum / count as f64,
        worst_case_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviations_are_absolute_percentages() {
        let d = deviations_pct(&[110.0, 90.0, 50.0], &[100.0, 100.0, 50.0]);
        assert_eq!(d, vec![10.0, 10.0, 0.0]);
    }

    #[test]
    fn summary_tracks_mean_and_worst() {
        let s = summarize(&[110.0, 80.0], &[100.0, 100.0]).unwrap();
        assert!((s.average_pct - 15.0).abs() < 1e-12);
        assert!((s.worst_case_pct - 20.0).abs() < 1e-12);
    }

    #[test]
    fn zero_truth_shares_are_skipped() {
        let d = deviations_pct(&[10.0, 5.0], &[0.0, 10.0]);
        assert_eq!(d, vec![50.0]);
        assert!(summarize(&[10.0], &[0.0]).is_none());
    }

    #[test]
    fn perfect_attribution_has_zero_deviation() {
        let s = summarize(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.average_pct, 0.0);
        assert_eq!(s.worst_case_pct, 0.0);
    }

    #[test]
    #[should_panic(expected = "same workloads")]
    fn length_mismatch_panics() {
        let _ = deviations_pct(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn single_pass_summary_matches_collected_deviations_bitwise() {
        // Irrational-ish shares so any reassociation would show up.
        let truth: Vec<f64> = (1..=9).map(|i| (i as f64).sqrt() * 10.0).collect();
        let method: Vec<f64> = truth
            .iter()
            .enumerate()
            .map(|(i, t)| t * (1.0 + 0.01 * (i as f64 + 0.3).sin()))
            .collect();
        let devs = deviations_pct(&method, &truth);
        let avg = devs.iter().sum::<f64>() / devs.len() as f64;
        let worst = devs.iter().copied().fold(0.0, f64::max);
        let s = summarize(&method, &truth).unwrap();
        assert_eq!(s.average_pct.to_bits(), avg.to_bits());
        assert_eq!(s.worst_case_pct.to_bits(), worst.to_bits());
    }
}
