//! Multi-resource demand attribution.
//!
//! The paper's framework prices *each hardware resource pool separately*
//! (CPU cores, DRAM GB, …, per the RUP definition and Table 1's
//! per-component embodied carbon) and relies on the Shapley value's
//! **linearity** axiom to recombine: the fair attribution of a sum of
//! games is the sum of the fair attributions. This module packages that:
//! a [`MultiResourceSchedule`] carries one demand schedule per resource,
//! and any single-resource [`DemandAttributor`] is lifted to the
//! multi-resource setting by attributing each pool independently and
//! summing.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::demand::{DemandAttributor, DemandError};
use crate::schedule::{Schedule, ScheduleError, ScheduledWorkload};

/// One workload's multi-resource reservation over a step window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiResourceWorkload {
    /// CPU cores reserved.
    pub cpu_cores: f64,
    /// Memory reserved in GB.
    pub memory_gb: f64,
    /// First active step.
    pub start: usize,
    /// One past the last active step.
    pub end: usize,
}

/// Carbon pools to divide, one per resource (gCO₂e) — e.g. the amortized
/// embodied carbon of the CPU and DRAM pools from
/// [`ServerSpec::embodied_by_resource`](fairco2_carbon::server::ServerSpec::embodied_by_resource).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourcePools {
    /// CPU pool carbon.
    pub cpu: f64,
    /// Memory pool carbon.
    pub memory: f64,
}

impl ResourcePools {
    /// Total carbon across pools.
    pub fn total(&self) -> f64 {
        self.cpu + self.memory
    }
}

/// Error building or attributing a multi-resource schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum MultiError {
    /// The underlying schedule was invalid.
    Schedule(ScheduleError),
    /// A per-resource attribution failed.
    Attribution(DemandError),
}

impl fmt::Display for MultiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiError::Schedule(e) => write!(f, "schedule: {e}"),
            MultiError::Attribution(e) => write!(f, "attribution: {e}"),
        }
    }
}

impl std::error::Error for MultiError {}

impl From<ScheduleError> for MultiError {
    fn from(e: ScheduleError) -> Self {
        MultiError::Schedule(e)
    }
}

impl From<DemandError> for MultiError {
    fn from(e: DemandError) -> Self {
        MultiError::Attribution(e)
    }
}

/// A schedule of multi-resource workloads: internally one
/// [`Schedule`] per resource, guaranteed structurally identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiResourceSchedule {
    cpu: Schedule,
    memory: Schedule,
}

impl MultiResourceSchedule {
    /// Builds the schedule.
    ///
    /// # Errors
    ///
    /// Returns [`MultiError::Schedule`] for invalid grids or windows.
    pub fn new(
        step_seconds: u32,
        steps: usize,
        workloads: Vec<MultiResourceWorkload>,
    ) -> Result<Self, MultiError> {
        let cpu = Schedule::new(
            step_seconds,
            steps,
            workloads
                .iter()
                .map(|w| ScheduledWorkload::new(w.cpu_cores, w.start, w.end))
                .collect::<Result<_, _>>()?,
        )?;
        let memory = Schedule::new(
            step_seconds,
            steps,
            workloads
                .iter()
                .map(|w| ScheduledWorkload::new(w.memory_gb, w.start, w.end))
                .collect::<Result<_, _>>()?,
        )?;
        Ok(Self { cpu, memory })
    }

    /// The CPU-demand view.
    pub fn cpu(&self) -> &Schedule {
        &self.cpu
    }

    /// The memory-demand view.
    pub fn memory(&self) -> &Schedule {
        &self.memory
    }

    /// Number of workloads.
    pub fn workload_count(&self) -> usize {
        self.cpu.workloads().len()
    }

    /// Attributes the per-resource pools with `method` and recombines by
    /// linearity: each workload's total share is its CPU-pool share plus
    /// its memory-pool share.
    ///
    /// # Errors
    ///
    /// Returns [`MultiError::Attribution`] if either pool cannot be
    /// attributed (e.g. zero demand in one resource dimension).
    pub fn attribute<M: DemandAttributor + ?Sized>(
        &self,
        method: &M,
        pools: ResourcePools,
    ) -> Result<Vec<f64>, MultiError> {
        let cpu_shares = method.attribute(&self.cpu, pools.cpu)?;
        let mem_shares = method.attribute(&self.memory, pools.memory)?;
        Ok(cpu_shares
            .iter()
            .zip(&mem_shares)
            .map(|(c, m)| c + m)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{GroundTruthShapley, RupBaseline, TemporalFairCo2};

    fn schedule() -> MultiResourceSchedule {
        MultiResourceSchedule::new(
            3600,
            4,
            vec![
                // CPU-heavy compute job.
                MultiResourceWorkload {
                    cpu_cores: 64.0,
                    memory_gb: 16.0,
                    start: 1,
                    end: 3,
                },
                // Memory-heavy cache, always on.
                MultiResourceWorkload {
                    cpu_cores: 8.0,
                    memory_gb: 160.0,
                    start: 0,
                    end: 4,
                },
                // Balanced batch job, off-peak.
                MultiResourceWorkload {
                    cpu_cores: 32.0,
                    memory_gb: 64.0,
                    start: 3,
                    end: 4,
                },
            ],
        )
        .unwrap()
    }

    fn pools() -> ResourcePools {
        // CPU pool ≈ 332 kg, DRAM pool ≈ 170 kg for the reference server;
        // scaled to grams for one month here.
        ResourcePools {
            cpu: 600.0,
            memory: 400.0,
        }
    }

    #[test]
    fn multi_resource_attribution_is_efficient() {
        let s = schedule();
        for method in [
            &GroundTruthShapley as &dyn DemandAttributor,
            &RupBaseline,
            &TemporalFairCo2::per_step(),
        ] {
            let shares = s.attribute(method, pools()).unwrap();
            let total: f64 = shares.iter().sum();
            assert!(
                (total - pools().total()).abs() < 1e-6,
                "{}: {total}",
                method.name()
            );
        }
    }

    #[test]
    fn resource_dominance_shows_in_the_split() {
        // The memory-heavy cache must carry most of the memory pool; the
        // CPU-heavy job most of the CPU pool.
        let s = schedule();
        let truth = GroundTruthShapley;
        let cpu_only = s
            .attribute(
                &truth,
                ResourcePools {
                    cpu: 1000.0,
                    memory: 0.0,
                },
            )
            .unwrap();
        let mem_only = s
            .attribute(
                &truth,
                ResourcePools {
                    cpu: 0.0,
                    memory: 1000.0,
                },
            )
            .unwrap();
        assert!(cpu_only[0] > cpu_only[1], "compute job dominates CPU pool");
        assert!(mem_only[1] > mem_only[0], "cache dominates memory pool");
    }

    #[test]
    fn linearity_recombination_matches_manual_sum() {
        let s = schedule();
        let method = TemporalFairCo2::per_step();
        let combined = s.attribute(&method, pools()).unwrap();
        let cpu = method.attribute(s.cpu(), pools().cpu).unwrap();
        let mem = method.attribute(s.memory(), pools().memory).unwrap();
        for ((c, m), tot) in cpu.iter().zip(&mem).zip(&combined) {
            assert!((c + m - tot).abs() < 1e-12);
        }
    }

    #[test]
    fn mismatched_windows_are_rejected() {
        let err = MultiResourceSchedule::new(
            3600,
            2,
            vec![MultiResourceWorkload {
                cpu_cores: 8.0,
                memory_gb: 8.0,
                start: 0,
                end: 5,
            }],
        );
        assert!(matches!(err, Err(MultiError::Schedule(_))));
    }
}
