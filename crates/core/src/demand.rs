//! Embodied-carbon attribution methods for demand schedules.
//!
//! All methods fully attribute the same carbon pool (efficiency), so their
//! fairness can be compared purely on how they *split* it:
//!
//! * [`RupBaseline`] — the Resource Utilization Proportional baseline of
//!   Section 3 (Google operational accounting + GSF SCI): a workload's
//!   share is its allocation × time, blind to *when* it ran.
//! * [`DemandProportional`] — the demand-aware strawman of Section 7.1:
//!   carbon intensity at each instant is proportional to aggregate demand.
//! * [`TemporalFairCo2`] — Fair-CO₂'s Temporal Shapley (Section 5.1):
//!   periods are players in the peak game; intensity follows Eq. 5.
//! * [`GroundTruthShapley`] — workloads are players in the peak-demand
//!   game, solved exactly (Section 4); exponential cost, ≤ 24 workloads.

use std::fmt;

use fairco2_shapley::exact::{exact_shapley_fast_with_scratch, ExactError, ExactScratch};
use fairco2_shapley::game::PeakDemandGame;
use fairco2_shapley::sampled::{sampled_shapley, SampleConfig, ShapleyEstimate};
use fairco2_shapley::temporal::TemporalShapley;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::schedule::Schedule;

/// Error from a demand attribution method.
#[derive(Debug, Clone, PartialEq)]
pub enum DemandError {
    /// The exact ground-truth solver refused the game.
    Exact(ExactError),
    /// The schedule cannot be split into the configured hierarchy.
    Hierarchy(String),
    /// The schedule has zero total demand, so proportional methods are
    /// undefined.
    ZeroDemand,
}

impl fmt::Display for DemandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemandError::Exact(e) => write!(f, "ground-truth solver: {e}"),
            DemandError::Hierarchy(m) => write!(f, "temporal hierarchy: {m}"),
            DemandError::ZeroDemand => write!(f, "schedule has zero demand"),
        }
    }
}

impl std::error::Error for DemandError {}

impl From<ExactError> for DemandError {
    fn from(e: ExactError) -> Self {
        DemandError::Exact(e)
    }
}

/// An embodied-carbon attribution method over demand schedules.
///
/// Implementations return one gCO₂e share per workload, in schedule
/// order, summing to `total_carbon` (up to floating-point error).
pub trait DemandAttributor {
    /// Human-readable method name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Attributes `total_carbon` among the schedule's workloads.
    ///
    /// # Errors
    ///
    /// Returns a [`DemandError`] if the method cannot handle the schedule
    /// (see each implementation).
    fn attribute(&self, schedule: &Schedule, total_carbon: f64) -> Result<Vec<f64>, DemandError>;

    /// [`attribute`](Self::attribute) writing into a caller-owned,
    /// reusable share vector (cleared first), so trial loops can amortize
    /// the output allocation. Implementations override this to skip the
    /// intermediate `Vec` entirely; results are bit-identical to
    /// [`attribute`](Self::attribute) either way.
    ///
    /// On error `out` is left cleared or partially written — callers must
    /// not read it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`attribute`](Self::attribute).
    fn attribute_into(
        &self,
        schedule: &Schedule,
        total_carbon: f64,
        out: &mut Vec<f64>,
    ) -> Result<(), DemandError> {
        out.clear();
        out.extend(self.attribute(schedule, total_carbon)?);
        Ok(())
    }
}

/// Scales the weights accumulated in `out` so they sum to `total_carbon`,
/// rejecting non-positive weight totals — the shared tail of every
/// proportional method, kept in one place so `attribute` and
/// `attribute_into` stay bit-identical.
fn normalize_shares(out: &mut [f64], total_carbon: f64) -> Result<(), DemandError> {
    let total: f64 = out.iter().sum();
    if total <= 0.0 {
        return Err(DemandError::ZeroDemand);
    }
    for w in out {
        *w = total_carbon * *w / total;
    }
    Ok(())
}

/// Ground truth: each workload is a player in the peak-demand game
/// (Section 4); shares are exact Shapley values of the peak, scaled to the
/// carbon pool.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroundTruthShapley;

impl GroundTruthShapley {
    /// [`attribute`](DemandAttributor::attribute) through a reusable
    /// [`ExactScratch`] and share vector — the per-worker arena path of
    /// the Monte Carlo engine. Bit-identical to the allocating path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`attribute`](DemandAttributor::attribute).
    pub fn attribute_with_scratch(
        &self,
        schedule: &Schedule,
        total_carbon: f64,
        scratch: &mut ExactScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), DemandError> {
        let game = PeakDemandGame::new(schedule.demand_matrix());
        let phi = exact_shapley_fast_with_scratch(&game, scratch)?;
        out.clear();
        out.extend_from_slice(phi);
        normalize_shares(out, total_carbon)
    }
}

impl DemandAttributor for GroundTruthShapley {
    fn name(&self) -> &'static str {
        "ground-truth-shapley"
    }

    fn attribute(&self, schedule: &Schedule, total_carbon: f64) -> Result<Vec<f64>, DemandError> {
        let mut out = Vec::new();
        self.attribute_into(schedule, total_carbon, &mut out)?;
        Ok(out)
    }

    fn attribute_into(
        &self,
        schedule: &Schedule,
        total_carbon: f64,
        out: &mut Vec<f64>,
    ) -> Result<(), DemandError> {
        self.attribute_with_scratch(schedule, total_carbon, &mut ExactScratch::new(), out)
    }
}

/// Monte Carlo ground truth: the same workload-level peak game as
/// [`GroundTruthShapley`], estimated by permutation sampling — usable
/// beyond the exact solver's 24-player cap (e.g. to audit Fair-CO₂ on
/// thousand-workload schedules). Deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct SampledGroundTruth {
    config: SampleConfig,
    seed: u64,
}

impl SampledGroundTruth {
    /// Creates the estimator with an explicit sampling configuration.
    pub fn new(config: SampleConfig, seed: u64) -> Self {
        Self { config, seed }
    }

    /// A sensible default: 4000 antithetic permutations with a 0.5 %
    /// relative standard-error stopping rule.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(
            SampleConfig {
                max_permutations: 4000,
                target_stderr: 0.0,
                min_permutations: 128,
                antithetic: true,
            },
            seed,
        )
    }

    /// Runs the estimator on `schedule`'s peak game and returns the full
    /// instrumented estimate: values, pair-aware standard errors, and
    /// work counters — the raw material for
    /// [`SamplingMetrics`](crate::report::SamplingMetrics) provenance on
    /// carbon statements.
    pub fn estimate(&self, schedule: &Schedule) -> ShapleyEstimate {
        let game = PeakDemandGame::new(schedule.demand_matrix());
        let mut rng = StdRng::seed_from_u64(self.seed);
        sampled_shapley(&game, &self.config, &mut rng)
    }
}

impl DemandAttributor for SampledGroundTruth {
    fn name(&self) -> &'static str {
        "sampled-ground-truth"
    }

    fn attribute(&self, schedule: &Schedule, total_carbon: f64) -> Result<Vec<f64>, DemandError> {
        let estimate = self.estimate(schedule);
        let total: f64 = estimate.values.iter().sum();
        if total <= 0.0 {
            return Err(DemandError::ZeroDemand);
        }
        Ok(estimate
            .values
            .iter()
            .map(|p| total_carbon * p / total)
            .collect())
    }
}

/// The RUP-Baseline: share ∝ allocation × time (SCI-style embodied
/// attribution), independent of demand dynamics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RupBaseline;

impl DemandAttributor for RupBaseline {
    fn name(&self) -> &'static str {
        "rup-baseline"
    }

    fn attribute(&self, schedule: &Schedule, total_carbon: f64) -> Result<Vec<f64>, DemandError> {
        let mut out = Vec::new();
        self.attribute_into(schedule, total_carbon, &mut out)?;
        Ok(out)
    }

    fn attribute_into(
        &self,
        schedule: &Schedule,
        total_carbon: f64,
        out: &mut Vec<f64>,
    ) -> Result<(), DemandError> {
        out.clear();
        out.extend(
            schedule
                .workloads()
                .iter()
                .map(|w| w.cores() * w.duration_steps() as f64),
        );
        normalize_shares(out, total_carbon)
    }
}

/// Demand-proportional baseline: instantaneous carbon intensity is
/// proportional to aggregate demand, so a workload's share is
/// `Σ_t cores·D(t)` normalized by `Σ_t D(t)²`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DemandProportional;

impl DemandAttributor for DemandProportional {
    fn name(&self) -> &'static str {
        "demand-proportional"
    }

    fn attribute(&self, schedule: &Schedule, total_carbon: f64) -> Result<Vec<f64>, DemandError> {
        let mut out = Vec::new();
        self.attribute_into(schedule, total_carbon, &mut out)?;
        Ok(out)
    }

    fn attribute_into(
        &self,
        schedule: &Schedule,
        total_carbon: f64,
        out: &mut Vec<f64>,
    ) -> Result<(), DemandError> {
        let demand: Vec<f64> = (0..schedule.steps())
            .map(|t| schedule.demand_at(t))
            .collect();
        out.clear();
        out.extend(schedule.workloads().iter().map(|w| {
            (w.start()..w.end())
                .map(|t| w.cores() * demand[t])
                .sum::<f64>()
        }));
        normalize_shares(out, total_carbon)
    }
}

/// Fair-CO₂'s Temporal Shapley attribution: time periods are players in
/// the peak game; the per-period carbon intensity of Eq. 5 prices each
/// workload's resource-time.
#[derive(Debug, Clone)]
pub struct TemporalFairCo2 {
    hierarchy: Hierarchy,
}

#[derive(Debug, Clone)]
enum Hierarchy {
    /// One Temporal Shapley level with one player per schedule step.
    PerStep,
    /// Explicit split ratios (for hierarchical experiments).
    Splits(Vec<usize>),
}

impl TemporalFairCo2 {
    /// One player per schedule time step — the configuration used against
    /// the paper's Monte Carlo schedules (4–9 steps).
    pub fn per_step() -> Self {
        Self {
            hierarchy: Hierarchy::PerStep,
        }
    }

    /// A custom hierarchical split (e.g. the paper's `[10, 9, 8, 12]`).
    pub fn with_splits(splits: Vec<usize>) -> Self {
        Self {
            hierarchy: Hierarchy::Splits(splits),
        }
    }
}

impl DemandAttributor for TemporalFairCo2 {
    fn name(&self) -> &'static str {
        "fair-co2-temporal"
    }

    fn attribute(&self, schedule: &Schedule, total_carbon: f64) -> Result<Vec<f64>, DemandError> {
        let mut out = Vec::new();
        self.attribute_into(schedule, total_carbon, &mut out)?;
        Ok(out)
    }

    fn attribute_into(
        &self,
        schedule: &Schedule,
        total_carbon: f64,
        out: &mut Vec<f64>,
    ) -> Result<(), DemandError> {
        let series = schedule.demand_series();
        if series.integral() <= 0.0 {
            return Err(DemandError::ZeroDemand);
        }
        let splits = match &self.hierarchy {
            Hierarchy::PerStep => {
                if schedule.steps() < 2 {
                    // One period: intensity is flat, equal to RUP.
                    return RupBaseline.attribute_into(schedule, total_carbon, out);
                }
                vec![schedule.steps()]
            }
            Hierarchy::Splits(s) => s.clone(),
        };
        let attribution = TemporalShapley::new(splits)
            .attribute(&series, total_carbon)
            .map_err(|e| DemandError::Hierarchy(e.to_string()))?;
        let step = i64::from(schedule.step_seconds());
        out.clear();
        out.extend(schedule.workloads().iter().map(|w| {
            attribution.workload_carbon(w.start() as i64 * step, w.end() as i64 * step, w.cores())
        }));
        // Stranded carbon (zero-demand leaf periods) cannot occur here
        // because every workload window has positive demand, but guard by
        // renormalizing to keep efficiency exact.
        normalize_shares(out, total_carbon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduledWorkload;

    fn demo() -> Schedule {
        Schedule::new(
            3600,
            4,
            vec![
                ScheduledWorkload::new(32.0, 0, 4).unwrap(),
                ScheduledWorkload::new(64.0, 1, 3).unwrap(),
                ScheduledWorkload::new(16.0, 3, 4).unwrap(),
            ],
        )
        .unwrap()
    }

    fn assert_efficient(shares: &[f64], pool: f64) {
        let total: f64 = shares.iter().sum();
        assert!((total - pool).abs() < 1e-6, "Σ = {total}");
    }

    #[test]
    fn all_methods_fully_attribute_the_pool() {
        let s = demo();
        for method in methods() {
            let shares = method.attribute(&s, 500.0).unwrap();
            assert_eq!(shares.len(), 3);
            assert_efficient(&shares, 500.0);
            assert!(shares.iter().all(|&v| v >= 0.0), "{}", method.name());
        }
    }

    fn methods() -> Vec<Box<dyn DemandAttributor>> {
        vec![
            Box::new(GroundTruthShapley),
            Box::new(RupBaseline),
            Box::new(DemandProportional),
            Box::new(TemporalFairCo2::per_step()),
        ]
    }

    #[test]
    fn peak_maker_pays_more_under_fair_methods() {
        let s = demo();
        let truth = GroundTruthShapley.attribute(&s, 1000.0).unwrap();
        let rup = RupBaseline.attribute(&s, 1000.0).unwrap();
        let fair = TemporalFairCo2::per_step().attribute(&s, 1000.0).unwrap();
        // Workload 1 (64 cores at the peak) is undercharged by RUP.
        assert!(truth[1] > rup[1]);
        assert!(fair[1] > rup[1]);
    }

    #[test]
    fn temporal_tracks_ground_truth_better_than_rup() {
        let s = demo();
        let truth = GroundTruthShapley.attribute(&s, 1000.0).unwrap();
        let rup = RupBaseline.attribute(&s, 1000.0).unwrap();
        let fair = TemporalFairCo2::per_step().attribute(&s, 1000.0).unwrap();
        let dev = |m: &[f64]| -> f64 {
            m.iter()
                .zip(&truth)
                .map(|(a, b)| ((a - b) / b).abs())
                .sum::<f64>()
        };
        assert!(
            dev(&fair) < dev(&rup),
            "fair {} rup {}",
            dev(&fair),
            dev(&rup)
        );
    }

    #[test]
    fn flat_demand_makes_all_methods_agree() {
        // Two identical always-on workloads: everything splits 50/50.
        let s = Schedule::new(
            3600,
            4,
            vec![
                ScheduledWorkload::new(48.0, 0, 4).unwrap(),
                ScheduledWorkload::new(48.0, 0, 4).unwrap(),
            ],
        )
        .unwrap();
        for method in methods() {
            let shares = method.attribute(&s, 100.0).unwrap();
            assert!(
                (shares[0] - 50.0).abs() < 1e-9,
                "{}: {shares:?}",
                method.name()
            );
        }
    }

    #[test]
    fn single_step_schedule_degrades_gracefully() {
        let s = Schedule::new(
            3600,
            1,
            vec![
                ScheduledWorkload::new(10.0, 0, 1).unwrap(),
                ScheduledWorkload::new(30.0, 0, 1).unwrap(),
            ],
        )
        .unwrap();
        let fair = TemporalFairCo2::per_step().attribute(&s, 100.0).unwrap();
        assert!((fair[0] - 25.0).abs() < 1e-9);
        assert!((fair[1] - 75.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_ground_truth_converges_to_exact() {
        let s = demo();
        let exact = GroundTruthShapley.attribute(&s, 1000.0).unwrap();
        let sampled = SampledGroundTruth::with_seed(9)
            .attribute(&s, 1000.0)
            .unwrap();
        for (e, g) in exact.iter().zip(&sampled) {
            assert!((e - g).abs() < 0.02 * 1000.0, "exact {e} sampled {g}");
        }
        let total: f64 = sampled.iter().sum();
        assert!((total - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn sampled_ground_truth_handles_large_schedules() {
        // 60 workloads: far beyond the exact solver's 24-player cap.
        let workloads: Vec<ScheduledWorkload> = (0..60)
            .map(|i| {
                ScheduledWorkload::new(8.0 + (i % 7) as f64 * 8.0, i % 6, i % 6 + 1 + i % 3)
                    .unwrap()
            })
            .collect();
        let s = Schedule::new(3600, 9, workloads).unwrap();
        assert!(GroundTruthShapley.attribute(&s, 100.0).is_err());
        let shares = SampledGroundTruth::with_seed(4)
            .attribute(&s, 100.0)
            .unwrap();
        assert_eq!(shares.len(), 60);
        assert!((shares.iter().sum::<f64>() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn sampled_estimate_exposes_work_counters() {
        let s = demo();
        let sgt = SampledGroundTruth::with_seed(9);
        let estimate = sgt.estimate(&s);
        // Every permutation replays all three players.
        assert_eq!(
            estimate.counters.coalition_evals,
            estimate.permutations as u64 * 3
        );
        assert!(estimate.counters.wall_time_secs >= 0.0);
        assert!(estimate.max_std_error().is_finite());
        // attribute() is the same run: shares are the normalized values.
        let shares = sgt.attribute(&s, 1000.0).unwrap();
        let total: f64 = estimate.values.iter().sum();
        for (share, v) in shares.iter().zip(&estimate.values) {
            assert!((share - 1000.0 * v / total).abs() < 1e-9);
        }
    }

    #[test]
    fn attribute_into_is_bit_identical_to_attribute() {
        let s = demo();
        let mut out = vec![999.0; 7]; // stale contents must be cleared
        for method in methods() {
            let fresh = method.attribute(&s, 500.0).unwrap();
            method.attribute_into(&s, 500.0, &mut out).unwrap();
            assert_eq!(out.len(), fresh.len(), "{}", method.name());
            for (a, b) in fresh.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}", method.name());
            }
        }
    }

    #[test]
    fn ground_truth_scratch_path_is_bit_identical() {
        let s = demo();
        let fresh = GroundTruthShapley.attribute(&s, 1000.0).unwrap();
        let mut scratch = ExactScratch::for_players(8);
        let mut out = Vec::new();
        for _ in 0..3 {
            GroundTruthShapley
                .attribute_with_scratch(&s, 1000.0, &mut scratch, &mut out)
                .unwrap();
            for (a, b) in fresh.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert_eq!(scratch.reuses(), 3);
    }

    #[test]
    fn zero_demand_is_rejected() {
        let s = Schedule::new(3600, 2, vec![ScheduledWorkload::new(0.0, 0, 2).unwrap()]).unwrap();
        for method in methods() {
            assert!(
                method.attribute(&s, 100.0).is_err(),
                "{} accepted zero demand",
                method.name()
            );
        }
    }

    #[test]
    fn ground_truth_matches_hand_computed_shapley() {
        // Demand per step: [32, 96, 96, 48]; peak 96. Averaging marginal
        // contributions over all 6 orderings gives φ = (32, 56, 8).
        let s = demo();
        let truth = GroundTruthShapley.attribute(&s, 96.0).unwrap();
        assert!((truth[0] - 32.0).abs() < 1e-9, "{truth:?}");
        assert!((truth[1] - 56.0).abs() < 1e-9, "{truth:?}");
        assert!((truth[2] - 8.0).abs() < 1e-9, "{truth:?}");
    }

    #[test]
    fn temporal_prices_peak_core_seconds_above_off_peak() {
        // Under Temporal Shapley the intensity signal is higher in the
        // peak steps, so the peak-riding workload pays a higher price per
        // core-step than the off-peak straggler; RUP prices them equally.
        let s = demo();
        let fair = TemporalFairCo2::per_step().attribute(&s, 1000.0).unwrap();
        let rup = RupBaseline.attribute(&s, 1000.0).unwrap();
        let price = |shares: &[f64], i: usize| {
            let w = s.workloads()[i];
            shares[i] / (w.cores() * w.duration_steps() as f64)
        };
        assert!(price(&fair, 1) > price(&fair, 2));
        assert!((price(&rup, 1) - price(&rup, 2)).abs() < 1e-12);
    }
}
