//! Workload schedules with dynamic demand (the Section 6.3 generator's
//! underlying data model).

use std::fmt;

use serde::{Deserialize, Serialize};

use fairco2_trace::vms::VmPopulation;
use fairco2_trace::TimeSeries;

/// Error constructing a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A workload's `[start, end)` window is empty or reversed.
    EmptyWindow,
    /// A workload runs past the schedule horizon.
    BeyondHorizon {
        /// End step of the offending workload.
        end: usize,
        /// Number of steps in the schedule.
        steps: usize,
    },
    /// The schedule has no time steps or a zero-second step.
    DegenerateGrid,
    /// The schedule has no workloads.
    NoWorkloads,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::EmptyWindow => write!(f, "workload window is empty"),
            ScheduleError::BeyondHorizon { end, steps } => {
                write!(
                    f,
                    "workload ends at step {end} beyond the {steps}-step horizon"
                )
            }
            ScheduleError::DegenerateGrid => write!(f, "schedule needs ≥1 step of ≥1 second"),
            ScheduleError::NoWorkloads => write!(f, "schedule has no workloads"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// One workload in a schedule: a core allocation held over a contiguous
/// window of time steps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledWorkload {
    cores: f64,
    start: usize,
    end: usize,
}

impl ScheduledWorkload {
    /// Creates a workload holding `cores` over steps `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::EmptyWindow`] when `start >= end`.
    pub fn new(cores: f64, start: usize, end: usize) -> Result<Self, ScheduleError> {
        if start >= end {
            return Err(ScheduleError::EmptyWindow);
        }
        Ok(Self { cores, start, end })
    }

    /// Core allocation.
    pub fn cores(&self) -> f64 {
        self.cores
    }

    /// First active step.
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the last active step.
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of active steps.
    pub fn duration_steps(&self) -> usize {
        self.end - self.start
    }

    /// Whether the workload is active at `step`.
    pub fn active_at(&self, step: usize) -> bool {
        (self.start..self.end).contains(&step)
    }
}

/// A fixed-horizon schedule of workloads over uniform time steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    step_seconds: u32,
    steps: usize,
    workloads: Vec<ScheduledWorkload>,
}

impl Schedule {
    /// Creates a schedule with `steps` steps of `step_seconds` each.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::DegenerateGrid`] for an empty grid,
    /// [`ScheduleError::NoWorkloads`] for an empty workload list, and
    /// [`ScheduleError::BeyondHorizon`] if any workload overruns.
    pub fn new(
        step_seconds: u32,
        steps: usize,
        workloads: Vec<ScheduledWorkload>,
    ) -> Result<Self, ScheduleError> {
        if steps == 0 || step_seconds == 0 {
            return Err(ScheduleError::DegenerateGrid);
        }
        if workloads.is_empty() {
            return Err(ScheduleError::NoWorkloads);
        }
        if let Some(w) = workloads.iter().find(|w| w.end > steps) {
            return Err(ScheduleError::BeyondHorizon { end: w.end, steps });
        }
        Ok(Self {
            step_seconds,
            steps,
            workloads,
        })
    }

    /// Step length in seconds.
    pub fn step_seconds(&self) -> u32 {
        self.step_seconds
    }

    /// Number of time steps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The scheduled workloads.
    pub fn workloads(&self) -> &[ScheduledWorkload] {
        &self.workloads
    }

    /// Aggregate core demand at `step`.
    pub fn demand_at(&self, step: usize) -> f64 {
        self.workloads
            .iter()
            .filter(|w| w.active_at(step))
            .map(|w| w.cores)
            .sum()
    }

    /// Aggregate demand as a time series (start epoch 0).
    pub fn demand_series(&self) -> TimeSeries {
        TimeSeries::from_fn(0, self.step_seconds, self.steps, |t| {
            self.demand_at((t / i64::from(self.step_seconds)) as usize)
        })
        .expect("steps ≥ 1 by construction")
    }

    /// Per-workload demand matrix (`matrix[w][t]`), the input of the
    /// ground-truth [`PeakDemandGame`](fairco2_shapley::game::PeakDemandGame).
    pub fn demand_matrix(&self) -> Vec<Vec<f64>> {
        self.workloads
            .iter()
            .map(|w| {
                (0..self.steps)
                    .map(|t| if w.active_at(t) { w.cores } else { 0.0 })
                    .collect()
            })
            .collect()
    }

    /// Peak aggregate demand — the minimum capacity that must be
    /// provisioned (Figure 1's dashed line).
    pub fn peak_demand(&self) -> f64 {
        (0..self.steps)
            .map(|t| self.demand_at(t))
            .fold(0.0, f64::max)
    }

    /// Builds a schedule from a VM population: each VM becomes one
    /// workload holding its cores over the steps it overlaps (rounded
    /// outward to step boundaries).
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::DegenerateGrid`] for a zero step and
    /// [`ScheduleError::NoWorkloads`] for an empty population.
    pub fn from_vm_population(
        population: &VmPopulation,
        step_seconds: u32,
    ) -> Result<Self, ScheduleError> {
        if step_seconds == 0 {
            return Err(ScheduleError::DegenerateGrid);
        }
        let steps = (population.horizon_s() as u64).div_ceil(u64::from(step_seconds)) as usize;
        let workloads: Vec<ScheduledWorkload> = population
            .vms()
            .iter()
            .map(|vm| {
                let start = (vm.start / i64::from(step_seconds)) as usize;
                let end = ((vm.end as u64).div_ceil(u64::from(step_seconds)) as usize)
                    .clamp(start + 1, steps.max(start + 1));
                ScheduledWorkload::new(vm.cores, start, end.min(steps).max(start + 1))
                    .expect("end > start by construction")
            })
            .collect();
        Self::new(step_seconds, steps, workloads)
    }

    /// Total core-seconds over the schedule.
    pub fn total_core_seconds(&self) -> f64 {
        self.workloads
            .iter()
            .map(|w| w.cores * w.duration_steps() as f64 * f64::from(self.step_seconds))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Schedule {
        Schedule::new(
            3600,
            4,
            vec![
                ScheduledWorkload::new(32.0, 0, 4).unwrap(),
                ScheduledWorkload::new(64.0, 1, 3).unwrap(),
                ScheduledWorkload::new(16.0, 3, 4).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn demand_profile_and_peak() {
        let s = demo();
        assert_eq!(s.demand_at(0), 32.0);
        assert_eq!(s.demand_at(1), 96.0);
        assert_eq!(s.demand_at(2), 96.0);
        assert_eq!(s.demand_at(3), 48.0);
        assert_eq!(s.peak_demand(), 96.0);
    }

    #[test]
    fn demand_series_matches_steps() {
        let s = demo();
        let series = s.demand_series();
        assert_eq!(series.len(), 4);
        assert_eq!(series.values(), &[32.0, 96.0, 96.0, 48.0]);
        assert_eq!(series.step(), 3600);
    }

    #[test]
    fn demand_matrix_rows_are_workloads() {
        let s = demo();
        let m = s.demand_matrix();
        assert_eq!(m[0], vec![32.0, 32.0, 32.0, 32.0]);
        assert_eq!(m[1], vec![0.0, 64.0, 64.0, 0.0]);
        assert_eq!(m[2], vec![0.0, 0.0, 0.0, 16.0]);
    }

    #[test]
    fn total_core_seconds() {
        let s = demo();
        let expected = (32.0 * 4.0 + 64.0 * 2.0 + 16.0) * 3600.0;
        assert_eq!(s.total_core_seconds(), expected);
    }

    #[test]
    fn vm_population_converts_to_a_schedule() {
        let pop = VmPopulation::builder().horizon_days(1).seed(5).build();
        let schedule = Schedule::from_vm_population(&pop, 3600).unwrap();
        assert_eq!(schedule.steps(), 24);
        assert_eq!(schedule.workloads().len(), pop.vms().len());
        // Step-rounded demand brackets the exact 5-minute demand peak.
        let exact_peak = pop.demand_series(300).peak();
        assert!(schedule.peak_demand() >= exact_peak * 0.99);
        // Every VM covers at least one step.
        assert!(schedule.workloads().iter().all(|w| w.duration_steps() >= 1));
        assert!(matches!(
            Schedule::from_vm_population(&pop, 0),
            Err(ScheduleError::DegenerateGrid)
        ));
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            ScheduledWorkload::new(8.0, 2, 2),
            Err(ScheduleError::EmptyWindow)
        );
        let w = ScheduledWorkload::new(8.0, 0, 5).unwrap();
        assert_eq!(
            Schedule::new(3600, 4, vec![w]),
            Err(ScheduleError::BeyondHorizon { end: 5, steps: 4 })
        );
        assert_eq!(
            Schedule::new(0, 4, vec![w]),
            Err(ScheduleError::DegenerateGrid)
        );
        assert_eq!(
            Schedule::new(3600, 4, vec![]),
            Err(ScheduleError::NoWorkloads)
        );
    }
}
