//! Tenant-facing carbon statements.
//!
//! The paper motivates attribution with carbon *dashboards* (AWS, GCP,
//! Azure) that present each customer a periodic carbon statement. This
//! module assembles such statements from attribution results: per-tenant
//! line items (embodied, static-operational, dynamic-operational),
//! method provenance, and the deviation versus the ground truth when one
//! was computed — everything serializable for an API or export.

use serde::{Deserialize, Serialize};

use crate::colocation::{ColocationAttributor, ColocationError, ColocationScenario};
use fairco2_shapley::sampled::ShapleyEstimate;
use fairco2_shapley::EvalCounters;
use fairco2_workloads::NodeAccounting;

/// Provenance of a statement produced by Monte Carlo sampling rather than
/// an exact solver: how much work the estimator did and how tight its
/// result is. Attached to a [`CarbonStatement`] via
/// [`CarbonStatement::with_sampling`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplingMetrics {
    /// Permutations drawn (antithetic pairs count two).
    pub permutations: usize,
    /// Independent samples backing the error bars (antithetic pairs count
    /// once — the pair-aware accounting).
    pub samples: usize,
    /// Largest per-player pair-aware standard error of the estimate.
    pub max_std_error: f64,
    /// Work counters: coalition evaluations, marginal updates, batches,
    /// and busy time.
    pub counters: EvalCounters,
}

impl From<&ShapleyEstimate> for SamplingMetrics {
    fn from(estimate: &ShapleyEstimate) -> Self {
        Self {
            permutations: estimate.permutations,
            samples: estimate.samples,
            max_std_error: estimate.max_std_error(),
            counters: estimate.counters,
        }
    }
}

/// One tenant's line on a statement (all gCO₂e).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatementLine {
    /// Tenant / workload label.
    pub tenant: String,
    /// Attributed embodied carbon.
    pub embodied_g: f64,
    /// Attributed static operational carbon.
    pub static_g: f64,
    /// Attributed dynamic operational carbon.
    pub dynamic_g: f64,
    /// Deviation from the ground-truth attribution, percent (signed),
    /// when a ground truth was computed.
    pub deviation_pct: Option<f64>,
}

impl StatementLine {
    /// Total attributed carbon for this tenant.
    pub fn total_g(&self) -> f64 {
        self.embodied_g + self.static_g + self.dynamic_g
    }
}

/// A periodic carbon statement for a set of colocated tenants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CarbonStatement {
    /// Attribution method that produced the statement.
    pub method: String,
    /// Grid carbon intensity used (gCO₂e/kWh).
    pub grid_ci: f64,
    /// Per-tenant lines.
    pub lines: Vec<StatementLine>,
    /// Sampling provenance, when the attribution was estimated by Monte
    /// Carlo rather than solved exactly.
    pub sampling: Option<SamplingMetrics>,
}

impl CarbonStatement {
    /// Builds a statement for a colocation scenario using `method`,
    /// optionally auditing each line against the ground truth computed
    /// by `truth`.
    ///
    /// Pool components (embodied / static / dynamic) are assigned
    /// pro-rata within each tenant's total share, mirroring how the
    /// scenario's actual pools decompose.
    ///
    /// # Errors
    ///
    /// Propagates any [`ColocationError`] from the methods.
    pub fn for_scenario(
        scenario: &ColocationScenario,
        ctx: &NodeAccounting,
        method: &dyn ColocationAttributor,
        truth: Option<&dyn ColocationAttributor>,
    ) -> Result<Self, ColocationError> {
        let shares = method.attribute(scenario, ctx)?;
        let truth_shares = truth.map(|t| t.attribute(scenario, ctx)).transpose()?;
        let pools = scenario.carbon(ctx);
        let total = pools.total();
        let (emb_frac, stat_frac, dyn_frac) = if total > 0.0 {
            (
                pools.embodied / total,
                pools.static_operational / total,
                pools.dynamic_operational / total,
            )
        } else {
            (0.0, 0.0, 0.0)
        };
        let lines = scenario
            .workloads()
            .iter()
            .enumerate()
            .map(|(i, w)| StatementLine {
                tenant: match w.partner {
                    Some(p) => format!("{} (with {})", w.kind.name(), p.name()),
                    None => format!("{} (isolated)", w.kind.name()),
                },
                embodied_g: shares[i] * emb_frac,
                static_g: shares[i] * stat_frac,
                dynamic_g: shares[i] * dyn_frac,
                deviation_pct: truth_shares
                    .as_ref()
                    .map(|t| 100.0 * (shares[i] - t[i]) / t[i]),
            })
            .collect();
        Ok(Self {
            method: method.name().to_owned(),
            grid_ci: ctx.grid().as_g_per_kwh(),
            lines,
            sampling: None,
        })
    }

    /// Attaches Monte Carlo provenance to the statement.
    #[must_use]
    pub fn with_sampling(mut self, metrics: SamplingMetrics) -> Self {
        self.sampling = Some(metrics);
        self
    }

    /// Statement total across tenants.
    pub fn total_g(&self) -> f64 {
        self.lines.iter().map(StatementLine::total_g).sum()
    }

    /// Renders a plain-text statement table.
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "carbon statement — method: {}, grid: {:.0} gCO2e/kWh",
            self.method, self.grid_ci
        );
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>10} {:>10} {:>10} {:>8}",
            "tenant", "embodied", "static", "dynamic", "total", "dev"
        );
        for l in &self.lines {
            let dev = l
                .deviation_pct
                .map_or_else(|| "-".to_owned(), |d| format!("{d:+.1}%"));
            let _ = writeln!(
                out,
                "{:<24} {:>9.1}g {:>9.1}g {:>9.1}g {:>9.1}g {:>8}",
                l.tenant,
                l.embodied_g,
                l.static_g,
                l.dynamic_g,
                l.total_g(),
                dev
            );
        }
        let _ = writeln!(out, "{:<24} {:>42} {:>9.1}g", "TOTAL", "", self.total_g());
        if let Some(s) = &self.sampling {
            let _ = writeln!(
                out,
                "sampled: {} permutations ({} independent samples), max stderr {:.4}, {} coalition evals",
                s.permutations, s.samples, s.max_std_error, s.counters.coalition_evals
            );
            if s.counters.cache_hits + s.counters.cache_misses > 0 {
                let _ = writeln!(
                    out,
                    "coalition cache: {} hits / {} misses ({:.1}% hit rate)",
                    s.counters.cache_hits,
                    s.counters.cache_misses,
                    100.0 * s.counters.cache_hit_rate()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colocation::{FairCo2Colocation, GroundTruthMatching, RupColocation};
    use fairco2_carbon::units::CarbonIntensity;
    use fairco2_workloads::WorkloadKind::*;

    fn setup() -> (ColocationScenario, NodeAccounting) {
        (
            ColocationScenario::pair_in_order(&[Nbody, Ch, Spark, Pg10, Llama]).unwrap(),
            NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(250.0)),
        )
    }

    #[test]
    fn statement_totals_match_scenario_carbon() {
        let (scenario, ctx) = setup();
        let statement = CarbonStatement::for_scenario(
            &scenario,
            &ctx,
            &FairCo2Colocation::with_full_history(),
            Some(&GroundTruthMatching),
        )
        .unwrap();
        let actual = scenario.carbon(&ctx).total();
        assert!((statement.total_g() - actual).abs() < 1e-6 * actual);
        assert_eq!(statement.lines.len(), 5);
        assert!(statement.lines.iter().all(|l| l.deviation_pct.is_some()));
    }

    #[test]
    fn components_sum_to_line_totals() {
        let (scenario, ctx) = setup();
        let statement =
            CarbonStatement::for_scenario(&scenario, &ctx, &RupColocation, None).unwrap();
        for l in &statement.lines {
            assert!((l.embodied_g + l.static_g + l.dynamic_g - l.total_g()).abs() < 1e-12);
            assert!(l.deviation_pct.is_none());
        }
    }

    #[test]
    fn labels_carry_placement_information() {
        let (scenario, ctx) = setup();
        let statement =
            CarbonStatement::for_scenario(&scenario, &ctx, &RupColocation, None).unwrap();
        assert!(statement.lines[0].tenant.contains("with CH"));
        assert!(statement.lines[4].tenant.contains("isolated"));
    }

    #[test]
    fn table_rendering_contains_every_tenant() {
        let (scenario, ctx) = setup();
        let statement = CarbonStatement::for_scenario(
            &scenario,
            &ctx,
            &GroundTruthMatching,
            Some(&GroundTruthMatching),
        )
        .unwrap();
        let table = statement.to_table();
        for w in ["NBODY", "CH", "SPARK", "PG-10", "LLAMA", "TOTAL"] {
            assert!(table.contains(w), "missing {w} in\n{table}");
        }
        // Ground truth audited against itself shows zero deviation.
        for l in &statement.lines {
            assert!(l.deviation_pct.unwrap().abs() < 1e-9);
        }
    }

    #[test]
    fn serialization_round_trips() {
        let (scenario, ctx) = setup();
        let statement =
            CarbonStatement::for_scenario(&scenario, &ctx, &RupColocation, None).unwrap();
        assert!(statement.sampling.is_none());
        let json = serde_json::to_string(&statement).unwrap();
        let back: CarbonStatement = serde_json::from_str(&json).unwrap();
        assert_eq!(back.method, statement.method);
        assert_eq!(back.lines.len(), statement.lines.len());
        assert!(back.sampling.is_none());
        for (a, b) in back.lines.iter().zip(&statement.lines) {
            assert_eq!(a.tenant, b.tenant);
            assert!((a.total_g() - b.total_g()).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_provenance_round_trips_and_renders() {
        let (scenario, ctx) = setup();
        let metrics = SamplingMetrics {
            permutations: 4000,
            samples: 2000,
            max_std_error: 0.0125,
            counters: EvalCounters {
                coalition_evals: 20_000,
                marginal_updates: 20_000,
                batches: 63,
                wall_time_secs: 0.5,
                cache_hits: 15_000,
                cache_misses: 5_000,
            },
        };
        let statement = CarbonStatement::for_scenario(&scenario, &ctx, &RupColocation, None)
            .unwrap()
            .with_sampling(metrics.clone());
        let json = serde_json::to_string(&statement).unwrap();
        let back: CarbonStatement = serde_json::from_str(&json).unwrap();
        assert_eq!(back.sampling, Some(metrics));
        let table = statement.to_table();
        assert!(table.contains("4000 permutations"), "{table}");
        assert!(table.contains("20000 coalition evals"), "{table}");
        assert!(table.contains("75.0% hit rate"), "{table}");
    }
}
