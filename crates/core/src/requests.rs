//! Request-level attribution (the paper's Section 10 future work).
//!
//! Once a *service* has a fair carbon share, per-request attribution
//! follows the same demand-aware logic one level down: a request's share
//! of the service's carbon is its resource-time priced at the intensity
//! signal in effect while it executed. Requests arriving at the daily
//! peak therefore carry more embodied carbon than identical requests at
//! the trough — the signal the paper wants to expose to
//! microservice/serverless platforms.

use serde::{Deserialize, Serialize};

use fairco2_shapley::temporal::TemporalAttribution;

/// One served request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival timestamp (UNIX seconds).
    pub arrival: i64,
    /// Busy time consumed on the service's cores, in core-seconds.
    pub cpu_core_seconds: f64,
}

/// A request's attributed carbon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestCarbon {
    /// The request.
    pub request: Request,
    /// Attributed carbon in gCO₂e.
    pub carbon_g: f64,
}

/// Attributes `service_carbon` (gCO₂e — the service's fair share for the
/// window, e.g. from
/// [`TemporalAttribution::workload_carbon`]) across its requests,
/// weighting each request by its core-seconds *times* the embodied
/// intensity signal at its arrival.
///
/// Requests outside the signal's window are priced at the signal's mean
/// intensity (they still consumed resources; the window boundary must not
/// create free riders). Returns one record per request plus any carbon
/// left unattributed because total weight was zero.
///
/// # Panics
///
/// Panics if `requests` is empty or any request has negative
/// core-seconds.
pub fn attribute_requests(
    requests: &[Request],
    signal: &TemporalAttribution,
    service_carbon: f64,
) -> (Vec<RequestCarbon>, f64) {
    assert!(!requests.is_empty(), "at least one request is required");
    assert!(
        requests.iter().all(|r| r.cpu_core_seconds >= 0.0),
        "core-seconds must be non-negative"
    );
    let intensity = signal.leaf_intensity();
    let mean = intensity.mean();
    let weights: Vec<f64> = requests
        .iter()
        .map(|r| r.cpu_core_seconds * intensity.value_at(r.arrival).unwrap_or(mean))
        .collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return (
            requests
                .iter()
                .map(|&request| RequestCarbon {
                    request,
                    carbon_g: 0.0,
                })
                .collect(),
            service_carbon,
        );
    }
    let records = requests
        .iter()
        .zip(&weights)
        .map(|(&request, w)| RequestCarbon {
            request,
            carbon_g: service_carbon * w / total,
        })
        .collect();
    (records, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairco2_shapley::temporal::TemporalShapley;
    use fairco2_trace::TimeSeries;

    fn signal() -> TemporalAttribution {
        // 24 hourly samples: low demand at night, high in the evening.
        let series = TimeSeries::from_fn(0, 3600, 24, |t| {
            let h = t / 3600;
            if (17..22).contains(&h) {
                100.0
            } else {
                30.0
            }
        })
        .unwrap();
        TemporalShapley::new(vec![24])
            .attribute(&series, 1000.0)
            .unwrap()
    }

    #[test]
    fn peak_requests_pay_more_than_trough_requests() {
        let sig = signal();
        let requests = vec![
            Request {
                arrival: 3 * 3600, // night
                cpu_core_seconds: 2.0,
            },
            Request {
                arrival: 18 * 3600, // evening peak
                cpu_core_seconds: 2.0,
            },
        ];
        let (records, stranded) = attribute_requests(&requests, &sig, 10.0);
        assert_eq!(stranded, 0.0);
        assert!(records[1].carbon_g > records[0].carbon_g);
        let total: f64 = records.iter().map(|r| r.carbon_g).sum();
        assert!((total - 10.0).abs() < 1e-9);
    }

    #[test]
    fn attribution_scales_with_resource_use() {
        let sig = signal();
        let requests = vec![
            Request {
                arrival: 18 * 3600,
                cpu_core_seconds: 1.0,
            },
            Request {
                arrival: 18 * 3600,
                cpu_core_seconds: 3.0,
            },
        ];
        let (records, _) = attribute_requests(&requests, &sig, 8.0);
        assert!((records[1].carbon_g - 3.0 * records[0].carbon_g).abs() < 1e-9);
    }

    #[test]
    fn out_of_window_requests_use_the_mean_intensity() {
        let sig = signal();
        let requests = vec![
            Request {
                arrival: 999_999_999, // far outside the window
                cpu_core_seconds: 1.0,
            },
            Request {
                arrival: 3 * 3600,
                cpu_core_seconds: 1.0,
            },
        ];
        let (records, stranded) = attribute_requests(&requests, &sig, 5.0);
        assert_eq!(stranded, 0.0);
        assert!(records[0].carbon_g > 0.0);
        let total: f64 = records.iter().map(|r| r.carbon_g).sum();
        assert!((total - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_requests_strand_the_carbon() {
        let sig = signal();
        let requests = vec![Request {
            arrival: 0,
            cpu_core_seconds: 0.0,
        }];
        let (records, stranded) = attribute_requests(&requests, &sig, 7.0);
        assert_eq!(records[0].carbon_g, 0.0);
        assert_eq!(stranded, 7.0);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn empty_request_set_panics() {
        let sig = signal();
        let _ = attribute_requests(&[], &sig, 1.0);
    }
}
