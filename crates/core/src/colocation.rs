//! Interference-aware attribution for colocation scenarios.
//!
//! A scenario places workloads on nodes — pairs sharing a node, plus at
//! most one isolated straggler per node — and the scenario's *actual*
//! carbon (embodied occupancy + static + dynamic energy) must be divided
//! among the workloads. Three methods are implemented:
//!
//! * [`GroundTruthMatching`] — the paper's ground truth: the Shapley value
//!   of the matching game (every counterfactual colocation considered),
//!   computed exactly in `O(n²)` by
//!   [`MatchingGame::shapley`](fairco2_shapley::MatchingGame::shapley)
//!   and normalized to the scenario's actual total.
//! * [`RupColocation`] — the RUP-Baseline: embodied and static carbon
//!   proportional to allocation × *observed* (interference-stretched)
//!   occupancy; dynamic energy proportional to CPU-utilization × time.
//!   Victims of aggressive neighbours occupy longer and get overcharged.
//! * [`FairCo2Colocation`] — Fair-CO₂'s adjustment (Eqs. 8–11): shares are
//!   scaled by each workload's *historical* sensitivity (α) and pressure
//!   (β), so a workload pays for the interference it tends to cause and is
//!   refunded the interference it tends to suffer.

use std::fmt;

use fairco2_shapley::{shapley_from_moments, MatchingGame};
use fairco2_workloads::history::{full_profile, InterferenceProfile};
use fairco2_workloads::node::OccupancyModel;
use fairco2_workloads::{NodeAccounting, WorkloadKind};

/// Error from a colocation attribution method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColocationError {
    /// The scenario has no placements.
    EmptyScenario,
    /// A per-workload profile list does not match the scenario size.
    ProfileMismatch {
        /// Profiles supplied.
        profiles: usize,
        /// Workloads in the scenario.
        workloads: usize,
    },
}

impl fmt::Display for ColocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColocationError::EmptyScenario => write!(f, "scenario has no placements"),
            ColocationError::ProfileMismatch {
                profiles,
                workloads,
            } => write!(f, "{profiles} profiles supplied for {workloads} workloads"),
        }
    }
}

impl std::error::Error for ColocationError {}

/// One node's placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodePlacement {
    /// A workload running alone on its node.
    Isolated(WorkloadKind),
    /// Two workloads colocated on one node.
    Pair(WorkloadKind, WorkloadKind),
}

/// A colocation scenario: the node placements of a set of workloads.
///
/// # Example
///
/// ```
/// use fairco2::colocation::{ColocationAttributor, ColocationScenario, GroundTruthMatching};
/// use fairco2_carbon::units::CarbonIntensity;
/// use fairco2_workloads::{NodeAccounting, WorkloadKind};
///
/// let scenario = ColocationScenario::pair_in_order(&[
///     WorkloadKind::Nbody,
///     WorkloadKind::Ch,
///     WorkloadKind::Pg10, // odd tail runs isolated
/// ])?;
/// let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(250.0));
/// let shares = GroundTruthMatching.attribute(&scenario, &ctx)?;
/// let total: f64 = shares.iter().sum();
/// assert!((total - scenario.carbon(&ctx).total()).abs() < 1e-6);
/// # Ok::<(), fairco2::colocation::ColocationError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColocationScenario {
    placements: Vec<NodePlacement>,
}

/// A workload instance within a scenario, with its actual partner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedWorkload {
    /// The workload.
    pub kind: WorkloadKind,
    /// Its colocation partner, if any.
    pub partner: Option<WorkloadKind>,
}

/// The scenario's actual carbon, split into the three pools the methods
/// divide (all gCO₂e).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioCarbon {
    /// Amortized embodied carbon over node occupancies.
    pub embodied: f64,
    /// Static (idle-power) operational carbon over node occupancies.
    pub static_operational: f64,
    /// Dynamic operational carbon of the workloads.
    pub dynamic_operational: f64,
}

impl ScenarioCarbon {
    /// Total scenario carbon.
    pub fn total(&self) -> f64 {
        self.embodied + self.static_operational + self.dynamic_operational
    }
}

impl ColocationScenario {
    /// Creates a scenario from explicit placements.
    ///
    /// # Errors
    ///
    /// Returns [`ColocationError::EmptyScenario`] if `placements` is empty.
    pub fn new(placements: Vec<NodePlacement>) -> Result<Self, ColocationError> {
        if placements.is_empty() {
            return Err(ColocationError::EmptyScenario);
        }
        Ok(Self { placements })
    }

    /// Pairs workloads onto nodes in list order (odd tail isolated) — the
    /// canonical placement used by the Monte Carlo generator.
    ///
    /// # Errors
    ///
    /// Returns [`ColocationError::EmptyScenario`] if `workloads` is empty.
    pub fn pair_in_order(workloads: &[WorkloadKind]) -> Result<Self, ColocationError> {
        let mut placements = Vec::with_capacity(workloads.len().div_ceil(2));
        let mut iter = workloads.chunks_exact(2);
        for pair in iter.by_ref() {
            placements.push(NodePlacement::Pair(pair[0], pair[1]));
        }
        if let [last] = iter.remainder() {
            placements.push(NodePlacement::Isolated(*last));
        }
        Self::new(placements)
    }

    /// The node placements.
    pub fn placements(&self) -> &[NodePlacement] {
        &self.placements
    }

    /// Workload instances in canonical order (node by node).
    pub fn workloads(&self) -> Vec<PlacedWorkload> {
        let mut out = Vec::new();
        for p in &self.placements {
            match *p {
                NodePlacement::Isolated(w) => out.push(PlacedWorkload {
                    kind: w,
                    partner: None,
                }),
                NodePlacement::Pair(a, b) => {
                    out.push(PlacedWorkload {
                        kind: a,
                        partner: Some(b),
                    });
                    out.push(PlacedWorkload {
                        kind: b,
                        partner: Some(a),
                    });
                }
            }
        }
        out
    }

    /// The scenario's actual carbon pools under the given accounting.
    pub fn carbon(&self, ctx: &NodeAccounting) -> ScenarioCarbon {
        let mut embodied = 0.0;
        let mut static_operational = 0.0;
        let mut dynamic_operational = 0.0;
        for p in &self.placements {
            let node = match *p {
                NodePlacement::Isolated(w) => ctx.isolated(w),
                NodePlacement::Pair(a, b) => ctx.pair(a, b),
            };
            embodied += node.embodied;
            static_operational += node.static_operational;
            dynamic_operational += node.dynamic_operational;
        }
        ScenarioCarbon {
            embodied,
            static_operational,
            dynamic_operational,
        }
    }
}

/// An attribution method over colocation scenarios. Returns one gCO₂e
/// share per workload (in [`ColocationScenario::workloads`] order),
/// summing to the scenario's actual total carbon.
pub trait ColocationAttributor {
    /// Human-readable method name.
    fn name(&self) -> &'static str;

    /// Attributes the scenario's actual carbon among its workloads.
    ///
    /// # Errors
    ///
    /// Returns a [`ColocationError`] when inputs are inconsistent.
    fn attribute(
        &self,
        scenario: &ColocationScenario,
        ctx: &NodeAccounting,
    ) -> Result<Vec<f64>, ColocationError>;

    /// [`attribute`](Self::attribute) writing into a caller-owned,
    /// reusable share vector (cleared first), so trial loops can amortize
    /// the output allocation. Bit-identical to
    /// [`attribute`](Self::attribute).
    ///
    /// On error `out` is left cleared or partially written — callers must
    /// not read it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`attribute`](Self::attribute).
    fn attribute_into(
        &self,
        scenario: &ColocationScenario,
        ctx: &NodeAccounting,
        out: &mut Vec<f64>,
    ) -> Result<(), ColocationError> {
        out.clear();
        out.extend(self.attribute(scenario, ctx)?);
        Ok(())
    }
}

/// The ground truth: exact Shapley of the matching game, normalized to the
/// scenario's actual total.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroundTruthMatching;

impl ColocationAttributor for GroundTruthMatching {
    fn name(&self) -> &'static str {
        "ground-truth-shapley"
    }

    fn attribute(
        &self,
        scenario: &ColocationScenario,
        ctx: &NodeAccounting,
    ) -> Result<Vec<f64>, ColocationError> {
        let mut out = Vec::new();
        self.attribute_into(scenario, ctx, &mut out)?;
        Ok(out)
    }

    fn attribute_into(
        &self,
        scenario: &ColocationScenario,
        ctx: &NodeAccounting,
        out: &mut Vec<f64>,
    ) -> Result<(), ColocationError> {
        let workloads = scenario.workloads();
        let kinds: Vec<WorkloadKind> = workloads.iter().map(|w| w.kind).collect();
        let isolated: Vec<f64> = kinds.iter().map(|&k| ctx.isolated(k).total()).collect();
        let n = kinds.len();
        let mut pair = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let cost = ctx.pair(kinds[i], kinds[j]).total();
                pair[i][j] = cost;
                pair[j][i] = cost;
            }
        }
        let phi = MatchingGame::new(isolated, pair).shapley();
        let phi_total: f64 = phi.iter().sum();
        let actual = scenario.carbon(ctx).total();
        out.clear();
        out.extend(phi.iter().map(|p| actual * p / phi_total));
        Ok(())
    }
}

/// The RUP-Baseline under colocation: embodied + static ∝ allocation ×
/// observed occupancy; dynamic ∝ CPU-utilization × observed occupancy.
#[derive(Debug, Clone, Copy, Default)]
pub struct RupColocation;

impl ColocationAttributor for RupColocation {
    fn name(&self) -> &'static str {
        "rup-baseline"
    }

    fn attribute(
        &self,
        scenario: &ColocationScenario,
        ctx: &NodeAccounting,
    ) -> Result<Vec<f64>, ColocationError> {
        let mut out = Vec::new();
        self.attribute_into(scenario, ctx, &mut out)?;
        Ok(out)
    }

    fn attribute_into(
        &self,
        scenario: &ColocationScenario,
        ctx: &NodeAccounting,
        out: &mut Vec<f64>,
    ) -> Result<(), ColocationError> {
        let workloads = scenario.workloads();
        let pools = scenario.carbon(ctx);
        // All workloads have the same half-node allocation, so the
        // allocation-time weight reduces to observed runtime.
        let fixed_w: Vec<f64> = workloads
            .iter()
            .map(|w| ctx.runtime(w.kind, w.partner))
            .collect();
        let dyn_w: Vec<f64> = workloads
            .iter()
            .map(|w| {
                let util = match w.partner {
                    Some(p) => ctx.interference().colocated_utilization(w.kind, p),
                    None => w.kind.profile().cpu_utilization,
                };
                util * ctx.runtime(w.kind, w.partner)
            })
            .collect();
        split_pools_into(&pools, &fixed_w, &dyn_w, out);
        Ok(())
    }
}

/// Weighting scheme used by [`FairCo2Colocation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdjustmentKind {
    /// The *moment* estimator (default): the exact matching-game Shapley
    /// formula (which depends on the pair-cost matrix only through each
    /// workload's mean pair cost) evaluated at **historically estimated**
    /// moments — each workload's expected node cost when colocated (its
    /// suffered α side plus its inflicted β side), shrunk toward the
    /// population mean in proportion to history sparsity. `O(n)` per
    /// workload.
    #[default]
    Marginal,
    /// The literal ratio form of the paper's Eqs. 8 and 10:
    /// `f_Q = (α_T + β_T)·Q·T_iso` and `f_P = (α_P + β_P)·P_iso·T_iso`.
    /// Kept as an ablation: it corrects the direction of RUP's bias but
    /// mixes suffered and inflicted effects on the wrong scale when
    /// partners' runtimes differ widely.
    RatioForm,
}

/// Fair-CO₂'s interference-aware attribution (Section 5.2).
///
/// Both weightings condition only on *historical* colocation profiles
/// (α/β-style statistics), never on the current — lucky or unlucky —
/// pairing; see [`AdjustmentKind`] for the two estimators.
#[derive(Debug, Clone, Default)]
pub struct FairCo2Colocation {
    /// Per-instance historical profiles; `None` = derive full-history
    /// profiles from the accounting context's interference model.
    profiles: Option<Vec<InterferenceProfile>>,
    kind: AdjustmentKind,
}

impl FairCo2Colocation {
    /// Uses the complete pairwise history for every workload (the
    /// 100 %-sampling-rate configuration) with the marginal estimator.
    pub fn with_full_history() -> Self {
        Self {
            profiles: None,
            kind: AdjustmentKind::Marginal,
        }
    }

    /// Uses externally sampled (possibly sparse) historical profiles, one
    /// per workload instance in scenario order, with the marginal
    /// estimator.
    pub fn with_profiles(profiles: Vec<InterferenceProfile>) -> Self {
        Self {
            profiles: Some(profiles),
            kind: AdjustmentKind::Marginal,
        }
    }

    /// Switches the weighting scheme (builder-style).
    pub fn adjustment(mut self, kind: AdjustmentKind) -> Self {
        self.kind = kind;
        self
    }

    /// Attributes with *borrowed* per-instance profiles, writing into a
    /// reusable share vector. This is the hot-loop entry point for Monte
    /// Carlo studies: the caller keeps one profile buffer and one share
    /// buffer per worker and never clones either. Bit-identical to
    /// constructing the attributor via
    /// [`with_profiles`](Self::with_profiles) and calling
    /// [`attribute`](ColocationAttributor::attribute).
    ///
    /// # Errors
    ///
    /// Returns [`ColocationError::ProfileMismatch`] when `profiles` does
    /// not match the scenario's workload count.
    pub fn attribute_profiles_into(
        &self,
        scenario: &ColocationScenario,
        ctx: &NodeAccounting,
        profiles: &[InterferenceProfile],
        out: &mut Vec<f64>,
    ) -> Result<(), ColocationError> {
        let workloads = scenario.workloads();
        if profiles.len() != workloads.len() {
            return Err(ColocationError::ProfileMismatch {
                profiles: profiles.len(),
                workloads: workloads.len(),
            });
        }
        attribute_with_profiles(self.kind, scenario, &workloads, profiles, ctx, out);
        Ok(())
    }
}

/// Shared core of the Fair-CO₂ paths: all inputs validated, profiles
/// borrowed.
fn attribute_with_profiles(
    kind: AdjustmentKind,
    scenario: &ColocationScenario,
    workloads: &[PlacedWorkload],
    profiles: &[InterferenceProfile],
    ctx: &NodeAccounting,
    out: &mut Vec<f64>,
) {
    let pools = scenario.carbon(ctx);
    match kind {
        AdjustmentKind::Marginal => {
            let phi = moment_shapley(workloads, profiles, ctx);
            let total: f64 = phi.iter().sum();
            let actual = pools.total();
            out.clear();
            out.extend(phi.iter().map(|p| actual * p / total));
        }
        AdjustmentKind::RatioForm => {
            let (fixed_w, dyn_w) = ratio_weights(workloads, profiles);
            split_pools_into(&pools, &fixed_w, &dyn_w, out);
        }
    }
}

impl ColocationAttributor for FairCo2Colocation {
    fn name(&self) -> &'static str {
        "fair-co2"
    }

    fn attribute(
        &self,
        scenario: &ColocationScenario,
        ctx: &NodeAccounting,
    ) -> Result<Vec<f64>, ColocationError> {
        let mut out = Vec::new();
        self.attribute_into(scenario, ctx, &mut out)?;
        Ok(out)
    }

    fn attribute_into(
        &self,
        scenario: &ColocationScenario,
        ctx: &NodeAccounting,
        out: &mut Vec<f64>,
    ) -> Result<(), ColocationError> {
        let workloads = scenario.workloads();
        match &self.profiles {
            Some(p) => {
                if p.len() != workloads.len() {
                    return Err(ColocationError::ProfileMismatch {
                        profiles: p.len(),
                        workloads: workloads.len(),
                    });
                }
                attribute_with_profiles(self.kind, scenario, &workloads, p, ctx, out);
            }
            None => {
                let profiles: Vec<InterferenceProfile> = workloads
                    .iter()
                    .map(|w| full_profile(ctx.interference(), w.kind))
                    .collect();
                attribute_with_profiles(self.kind, scenario, &workloads, &profiles, ctx, out);
            }
        }
        Ok(())
    }
}

/// Shrinkage strength of the sparse-history estimator: a profile built
/// from `k` samples is blended with the population mean at weight
/// `k : λ`. Chosen so one historical sample already moves the estimate
/// substantially (the paper's "even one sample is sufficient") while
/// damping its noise.
const HISTORY_SHRINKAGE: f64 = 1.0;

/// The moment estimator: evaluates the exact matching-game Shapley
/// formula ([`shapley_from_moments`]) at historically estimated moments.
///
/// Each workload's isolated node cost `A_i` is known from its own
/// profile; its mean pair cost `D̄_i` is reconstructed from the sampled
/// history — fixed costs from the observed node-seconds statistic of the
/// active [`OccupancyModel`], dynamic costs from the observed own and
/// partner energies — with empirical-Bayes shrinkage toward the
/// population mean for sparse histories. Resulting values are floored at
/// a small positive share before normalization.
fn moment_shapley(
    workloads: &[PlacedWorkload],
    profiles: &[InterferenceProfile],
    ctx: &NodeAccounting,
) -> Vec<f64> {
    let n = profiles.len() as f64;
    let fixed_rate = ctx.server().embodied_rates().node_per_second.as_grams()
        + ctx.server().power.idle.as_watts() * ctx.grid().as_g_per_joule();
    let energy_rate = ctx.grid().as_g_per_joule();
    let shrink = |value: f64, pop: f64, k: usize| {
        (k as f64 * value + HISTORY_SHRINKAGE * pop) / (k as f64 + HISTORY_SHRINKAGE)
    };

    // Population means of the noisy, history-estimated statistics.
    let pop_alpha_rt = profiles.iter().map(|p| p.alpha_runtime).sum::<f64>() / n;
    let pop_alpha_e = profiles.iter().map(|p| p.alpha_energy).sum::<f64>() / n;
    let pop_infl_rt = profiles
        .iter()
        .map(|p| p.mean_inflicted_extra_runtime_s)
        .sum::<f64>()
        / n;
    let pop_infl_e = profiles
        .iter()
        .map(|p| p.mean_inflicted_extra_energy_j)
        .sum::<f64>()
        / n;
    let pop_occ = profiles.iter().map(|p| p.mean_occupancy_s).sum::<f64>() / n;

    // Partner *base* terms need no history at all: the attributor knows
    // the isolated profiles of the tenant population it is attributing.
    let total_rt: f64 = workloads.iter().map(|w| w.kind.profile().runtime_s).sum();
    let total_e: f64 = workloads
        .iter()
        .map(|w| w.kind.profile().dynamic_energy_j())
        .sum();

    let isolated: Vec<f64> = workloads
        .iter()
        .map(|w| {
            let p = w.kind.profile();
            fixed_rate * p.runtime_s + energy_rate * p.dynamic_energy_j()
        })
        .collect();
    let mean_pair: Vec<f64> = workloads
        .iter()
        .zip(profiles)
        .map(|(w, p)| {
            let prof = w.kind.profile();
            let partner_base_rt = (total_rt - prof.runtime_s) / (n - 1.0).max(1.0);
            let partner_base_e = (total_e - prof.dynamic_energy_j()) / (n - 1.0).max(1.0);
            let own_rt = prof.runtime_s * shrink(p.alpha_runtime, pop_alpha_rt, p.samples);
            let partner_rt =
                partner_base_rt + shrink(p.mean_inflicted_extra_runtime_s, pop_infl_rt, p.samples);
            let node_seconds = match ctx.occupancy() {
                OccupancyModel::SlotSeconds => (own_rt + partner_rt) / 2.0,
                // The max-based statistic does not decompose; use the
                // directly observed (noisier) occupancy moment.
                OccupancyModel::WholeNodeMax => shrink(p.mean_occupancy_s, pop_occ, p.samples),
            };
            let own_e = prof.dynamic_energy_j() * shrink(p.alpha_energy, pop_alpha_e, p.samples);
            let partner_e =
                partner_base_e + shrink(p.mean_inflicted_extra_energy_j, pop_infl_e, p.samples);
            fixed_rate * node_seconds + energy_rate * (own_e + partner_e)
        })
        .collect();
    let phi = shapley_from_moments(&isolated, &mean_pair);
    // Degenerate histories could yield non-positive marginals; floor at a
    // sliver of the average share so normalization stays meaningful.
    let mean_phi = phi.iter().sum::<f64>() / n;
    phi.iter().map(|p| p.max(0.01 * mean_phi.abs())).collect()
}

/// The literal Eq. 8 / Eq. 10 ratio weights.
fn ratio_weights(
    workloads: &[PlacedWorkload],
    profiles: &[InterferenceProfile],
) -> (Vec<f64>, Vec<f64>) {
    let fixed = workloads
        .iter()
        .zip(profiles)
        .map(|(w, prof)| (prof.alpha_runtime + prof.beta_runtime) * w.kind.profile().runtime_s)
        .collect();
    let dynamic = workloads
        .iter()
        .zip(profiles)
        .map(|(w, prof)| {
            let p = w.kind.profile();
            (prof.alpha_energy + prof.beta_energy) * p.dynamic_power_w * p.runtime_s
        })
        .collect();
    (fixed, dynamic)
}

/// Splits the fixed pools (embodied + static) by `fixed_w` and the
/// dynamic pool by `dyn_w`, writing one share per workload into `out`
/// (cleared first).
fn split_pools_into(pools: &ScenarioCarbon, fixed_w: &[f64], dyn_w: &[f64], out: &mut Vec<f64>) {
    let fixed_pool = pools.embodied + pools.static_operational;
    let fixed_total: f64 = fixed_w.iter().sum();
    let dyn_total: f64 = dyn_w.iter().sum();
    out.clear();
    out.extend(fixed_w.iter().zip(dyn_w).map(|(&fw, &dw)| {
        let fixed = if fixed_total > 0.0 {
            fixed_pool * fw / fixed_total
        } else {
            0.0
        };
        let dynamic = if dyn_total > 0.0 {
            pools.dynamic_operational * dw / dyn_total
        } else {
            0.0
        };
        fixed + dynamic
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairco2_carbon::units::CarbonIntensity;
    use WorkloadKind::*;

    fn ctx() -> NodeAccounting {
        NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(250.0))
    }

    fn scenario() -> ColocationScenario {
        ColocationScenario::pair_in_order(&[Nbody, Ch, Ddup, Spark, Pg10]).unwrap()
    }

    fn methods() -> Vec<Box<dyn ColocationAttributor>> {
        vec![
            Box::new(GroundTruthMatching),
            Box::new(RupColocation),
            Box::new(FairCo2Colocation::with_full_history()),
        ]
    }

    #[test]
    fn pair_in_order_places_odd_tail_isolated() {
        let s = scenario();
        assert_eq!(s.placements().len(), 3);
        assert_eq!(s.placements()[2], NodePlacement::Isolated(Pg10));
        let w = s.workloads();
        assert_eq!(w.len(), 5);
        assert_eq!(w[0].partner, Some(Ch));
        assert_eq!(w[4].partner, None);
    }

    #[test]
    fn every_method_fully_attributes_actual_carbon() {
        let s = scenario();
        let ctx = ctx();
        let actual = s.carbon(&ctx).total();
        for m in methods() {
            let shares = m.attribute(&s, &ctx).unwrap();
            assert_eq!(shares.len(), 5);
            let total: f64 = shares.iter().sum();
            assert!(
                (total - actual).abs() < 1e-6 * actual,
                "{}: {total} vs {actual}",
                m.name()
            );
            assert!(shares.iter().all(|&v| v > 0.0), "{}", m.name());
        }
    }

    #[test]
    fn rup_overcharges_the_interference_victim() {
        // NBODY paired with CH: RUP charges NBODY for its stretched
        // occupancy; ground truth and Fair-CO₂ both correct for it.
        let s = ColocationScenario::pair_in_order(&[Nbody, Ch]).unwrap();
        let ctx = ctx();
        let truth = GroundTruthMatching.attribute(&s, &ctx).unwrap();
        let rup = RupColocation.attribute(&s, &ctx).unwrap();
        let fair = FairCo2Colocation::with_full_history()
            .attribute(&s, &ctx)
            .unwrap();
        assert!(rup[0] > truth[0], "RUP should overcharge NBODY");
        let rup_err = ((rup[0] - truth[0]) / truth[0]).abs();
        let fair_err = ((fair[0] - truth[0]) / truth[0]).abs();
        assert!(
            fair_err < rup_err,
            "fair {fair_err:.3} should beat RUP {rup_err:.3}"
        );
    }

    #[test]
    fn fair_co2_tracks_ground_truth_closer_on_average() {
        let s = scenario();
        let ctx = ctx();
        let truth = GroundTruthMatching.attribute(&s, &ctx).unwrap();
        let rup = RupColocation.attribute(&s, &ctx).unwrap();
        let fair = FairCo2Colocation::with_full_history()
            .attribute(&s, &ctx)
            .unwrap();
        let mean_dev = |m: &[f64]| {
            m.iter()
                .zip(&truth)
                .map(|(a, b)| ((a - b) / b).abs())
                .sum::<f64>()
                / m.len() as f64
        };
        assert!(
            mean_dev(&fair) < mean_dev(&rup),
            "fair {:.4} rup {:.4}",
            mean_dev(&fair),
            mean_dev(&rup)
        );
    }

    #[test]
    fn isolated_single_workload_gets_everything() {
        let s = ColocationScenario::pair_in_order(&[Llama]).unwrap();
        let ctx = ctx();
        let actual = s.carbon(&ctx).total();
        for m in methods() {
            let shares = m.attribute(&s, &ctx).unwrap();
            assert_eq!(shares.len(), 1);
            assert!((shares[0] - actual).abs() < 1e-9, "{}", m.name());
        }
    }

    #[test]
    fn attribute_into_is_bit_identical_to_attribute() {
        let s = scenario();
        let ctx = ctx();
        let mut out = vec![f64::NAN; 32]; // stale contents must be cleared
        for m in methods() {
            let fresh = m.attribute(&s, &ctx).unwrap();
            m.attribute_into(&s, &ctx, &mut out).unwrap();
            assert_eq!(out.len(), fresh.len(), "{}", m.name());
            for (a, b) in out.iter().zip(&fresh) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}", m.name());
            }
        }
        // The ratio-form ablation goes through split_pools_into too.
        let ratio = FairCo2Colocation::with_full_history().adjustment(AdjustmentKind::RatioForm);
        let fresh = ratio.attribute(&s, &ctx).unwrap();
        ratio.attribute_into(&s, &ctx, &mut out).unwrap();
        assert_eq!(out, fresh);
    }

    #[test]
    fn borrowed_profiles_path_is_bit_identical_to_owned() {
        let s = scenario();
        let ctx = ctx();
        let profiles: Vec<InterferenceProfile> = s
            .workloads()
            .iter()
            .map(|w| full_profile(ctx.interference(), w.kind))
            .collect();
        let owned = FairCo2Colocation::with_profiles(profiles.clone())
            .attribute(&s, &ctx)
            .unwrap();
        let mut out = Vec::new();
        FairCo2Colocation::with_full_history()
            .attribute_profiles_into(&s, &ctx, &profiles, &mut out)
            .unwrap();
        for (a, b) in out.iter().zip(&owned) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Mismatched profile count is rejected, matching with_profiles.
        let err = FairCo2Colocation::with_full_history().attribute_profiles_into(
            &s,
            &ctx,
            &profiles[..2],
            &mut out,
        );
        assert_eq!(
            err,
            Err(ColocationError::ProfileMismatch {
                profiles: 2,
                workloads: 5
            })
        );
    }

    #[test]
    fn profile_mismatch_is_rejected() {
        let s = scenario();
        let err = FairCo2Colocation::with_profiles(vec![]).attribute(&s, &ctx());
        assert_eq!(
            err,
            Err(ColocationError::ProfileMismatch {
                profiles: 0,
                workloads: 5
            })
        );
    }

    #[test]
    fn empty_scenario_is_rejected() {
        assert_eq!(
            ColocationScenario::new(vec![]),
            Err(ColocationError::EmptyScenario)
        );
        assert_eq!(
            ColocationScenario::pair_in_order(&[]),
            Err(ColocationError::EmptyScenario)
        );
    }
}
