//! # Fair-CO₂: fair attribution of cloud carbon emissions
//!
//! This crate is the reproduction's core contribution — the attribution
//! engine of the ISCA '25 paper *"Fair-CO₂: Fair Attribution for Cloud
//! Carbon Emissions"* (Han, Kakadia, Lee, Gupta). It divides the
//! operational and embodied carbon of shared infrastructure among the
//! workloads that share it, under two settings that mirror the paper's
//! evaluation:
//!
//! * **Demand schedules** ([`schedule`], [`demand`]) — workloads with
//!   time-varying aggregate demand share a pool of *embodied* carbon whose
//!   size is driven by peak provisioning. Methods: the RUP-Baseline
//!   (allocation-proportional, per Google/SCI practice), a
//!   demand-proportional baseline, Fair-CO₂'s **Temporal Shapley**
//!   (paper Section 5.1), and the ground-truth workload-level Shapley.
//! * **Colocation scenarios** ([`colocation`]) — pairs of workloads share
//!   nodes and interfere; embodied, static, and dynamic carbon must be
//!   split despite asymmetric slowdowns. Methods: RUP-Baseline,
//!   Fair-CO₂'s **interference-aware adjustment** (Section 5.2, Eqs.
//!   8–11), and the ground-truth matching-game Shapley.
//!
//! [`signal`] produces the *live* embodied-carbon-intensity signal of
//! Section 5.3 by splicing a demand forecast onto history before running
//! Temporal Shapley, and [`metrics`] computes the deviation-from-ground-
//! truth fairness measures of Section 7.
//!
//! # Example
//!
//! ```
//! use fairco2::schedule::{Schedule, ScheduledWorkload};
//! use fairco2::demand::{DemandAttributor, GroundTruthShapley, RupBaseline, TemporalFairCo2};
//!
//! // Three workloads, four hours: one runs at the demand peak.
//! let schedule = Schedule::new(
//!     3600,
//!     4,
//!     vec![
//!         ScheduledWorkload::new(32.0, 0, 4)?, // runs the whole window
//!         ScheduledWorkload::new(64.0, 1, 3)?, // creates the peak
//!         ScheduledWorkload::new(16.0, 3, 4)?, // off-peak straggler
//!     ],
//! )?;
//! let truth = GroundTruthShapley.attribute(&schedule, 1000.0)?;
//! let rup = RupBaseline.attribute(&schedule, 1000.0)?;
//! let fair = TemporalFairCo2::per_step().attribute(&schedule, 1000.0)?;
//! // Every method fully attributes the 1000 g pool...
//! assert!((truth.iter().sum::<f64>() - 1000.0).abs() < 1e-6);
//! assert!((rup.iter().sum::<f64>() - 1000.0).abs() < 1e-6);
//! assert!((fair.iter().sum::<f64>() - 1000.0).abs() < 1e-6);
//! // ...but only the fair methods charge the peak-maker its true share.
//! assert!(fair[1] > rup[1]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod colocation;
pub mod demand;
pub mod metrics;
pub mod multi;
pub mod report;
pub mod requests;
pub mod schedule;
pub mod signal;

pub use colocation::{ColocationAttributor, ColocationScenario, NodePlacement};
pub use demand::DemandAttributor;
pub use metrics::DeviationSummary;
pub use schedule::{Schedule, ScheduledWorkload};
