//! # fair-co2 — facade crate
//!
//! One-stop re-export of the Fair-CO₂ reproduction workspace. Depend on
//! this crate to get the full stack:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`carbon`] | `fairco2-carbon` | operational/embodied carbon models, units, the reference server |
//! | [`trace`] | `fairco2-trace` | time series, synthetic Azure-like demand, grid-CI traces |
//! | [`shapley`] | `fairco2-shapley` | exact / sampled / matching-game / Temporal Shapley solvers |
//! | [`solver`] | `fairco2-solver` | vendored sparse LP substrate: CSC, Markowitz LU, deterministic revised simplex |
//! | [`workloads`] | `fairco2-workloads` | the 15-workload suite, interference model, node accounting |
//! | [`attribution`] | `fairco2` | the attribution engine (RUP, demand-proportional, Fair-CO₂, ground truth) |
//! | [`forecast`] | `fairco2-forecast` | the Prophet-substitute demand forecaster |
//! | [`cluster`] | `fairco2-cluster` | discrete-event cluster/scheduler simulator |
//! | [`montecarlo`] | `fairco2-montecarlo` | the 10k-scenario fairness studies |
//! | [`optimize`] | `fairco2-optimize` | carbon-aware configuration optimization case studies |
//!
//! # Quickstart
//!
//! ```
//! use fair_co2::attribution::schedule::{Schedule, ScheduledWorkload};
//! use fair_co2::attribution::demand::{DemandAttributor, TemporalFairCo2};
//!
//! let schedule = Schedule::new(
//!     3600,
//!     3,
//!     vec![
//!         ScheduledWorkload::new(48.0, 0, 3)?,
//!         ScheduledWorkload::new(96.0, 1, 2)?,
//!     ],
//! )?;
//! let shares = TemporalFairCo2::per_step().attribute(&schedule, 1000.0)?;
//! assert!((shares.iter().sum::<f64>() - 1000.0).abs() < 1e-6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fairco2 as attribution;

/// The most commonly used items, for glob import:
/// `use fair_co2::prelude::*;`.
pub mod prelude {
    pub use fairco2::colocation::{
        ColocationAttributor, ColocationScenario, FairCo2Colocation, GroundTruthMatching,
        NodePlacement, RupColocation,
    };
    pub use fairco2::demand::{
        DemandAttributor, DemandProportional, GroundTruthShapley, RupBaseline, TemporalFairCo2,
    };
    pub use fairco2::metrics::{summarize, DeviationSummary};
    pub use fairco2::schedule::{Schedule, ScheduledWorkload};
    pub use fairco2::signal::LiveSignal;
    pub use fairco2_carbon::units::{Carbon, CarbonIntensity, Energy, Power};
    pub use fairco2_carbon::ServerSpec;
    pub use fairco2_shapley::temporal::{peak_shapley, TemporalShapley};
    pub use fairco2_trace::{AzureLikeTrace, GridIntensityTrace, TimeSeries};
    pub use fairco2_workloads::{NodeAccounting, WorkloadKind, ALL_WORKLOADS};
}
pub use fairco2_carbon as carbon;
pub use fairco2_cluster as cluster;
pub use fairco2_forecast as forecast;
pub use fairco2_montecarlo as montecarlo;
pub use fairco2_optimize as optimize;
pub use fairco2_shapley as shapley;
pub use fairco2_solver as solver;
pub use fairco2_trace as trace;
pub use fairco2_workloads as workloads;
