#!/usr/bin/env python3
"""Print a figure JSON with wall-clock-dependent fields removed.

The kill/resume CI smoke compares a resumed `fig7` run against an
uninterrupted reference. The study outputs are bit-identical, but the
report embeds timings (any key ending in `_secs`) and the engine
counters (`engine` — a resumed run executes fewer batches locally even
though the merged totals agree, and scratch reuse differs by design).
Everything else is kept verbatim, so any numerical drift still fails
the diff.
"""

import json
import sys


def scrub(value):
    if isinstance(value, dict):
        return {
            key: scrub(item)
            for key, item in value.items()
            if key != "engine" and not key.endswith("_secs")
        }
    if isinstance(value, list):
        return [scrub(item) for item in value]
    return value


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} <figure.json>")
    with open(sys.argv[1]) as handle:
        data = json.load(handle)
    json.dump(scrub(data), sys.stdout, sort_keys=True, indent=1)
    print()


if __name__ == "__main__":
    main()
